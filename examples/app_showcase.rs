//! The application showcase (paper Fig. 1 / §4.4 / Listing 5) end to end.
//!
//! A synthetic video streams through object detection + face detection;
//! overlapping boxes gate the anti-spoofing model; real faces flow into
//! emotion detection. Runs the video twice — sequentially and through the
//! §5.2 pipeline — and prints the simulated Fig. 5 schedule.
//!
//! Run with: `cargo run --release --example app_showcase`

use tvm_neuropilot::prelude::*;
use tvm_neuropilot::scheduler::pipeline::{simulate_pipelined, simulate_sequential};

fn main() {
    let cost = CostModel::default();
    let showcase = Showcase::new(1000, ShowcaseAssignment::paper_prototype(), &cost);

    let mut video = SyntheticVideo::new(2000, 64, 64);
    let frames = video.frames(12);

    println!("== per-frame results (sequential) ==");
    let results = showcase.process_video(&frames);
    for r in &results {
        let faces: Vec<String> = r
            .faces
            .iter()
            .map(|f| {
                if f.real {
                    format!("real→{}", f.emotion.unwrap_or("?"))
                } else {
                    "spoof".to_string()
                }
            })
            .collect();
        println!(
            "frame {:>2}: {} object(s), faces: [{}]  ({:.2} ms model time)",
            r.frame_index,
            r.objects.len(),
            faces.join(", "),
            r.times.total_us() / 1000.0
        );
    }

    // Pipelined processing produces identical results.
    let pipelined = showcase.process_video_pipelined(frames);
    assert_eq!(results.len(), pipelined.len());
    for (a, b) in results.iter().zip(&pipelined) {
        assert_eq!(a.faces, b.faces, "pipelining must not change results");
    }
    println!(
        "\npipelined run produced identical results on all {} frames",
        pipelined.len()
    );

    // The Fig. 5 schedule, from measured stage latencies.
    let stages = showcase.stage_profile(2000);
    println!("\n== measured stage profile ==");
    for s in &stages {
        let res: Vec<&str> = s.resources.iter().map(|d| d.name()).collect();
        println!(
            "{:<12} {:>8.2} ms on {}",
            s.name,
            s.duration_us / 1000.0,
            res.join("+")
        );
    }

    let n = 8;
    let seq = simulate_sequential(&stages, n);
    let pipe = simulate_pipelined(&stages, n);
    println!("\n== Fig. 5: pipeline schedule over {n} frames ==");
    println!("sequential makespan : {:9.2} ms", seq.makespan_us / 1000.0);
    println!("pipelined  makespan : {:9.2} ms", pipe.makespan_us / 1000.0);
    println!(
        "throughput gain     : {:9.2}x",
        seq.makespan_us / pipe.makespan_us
    );
    println!("\nGantt (o = obj-det CPU, a = anti-spoof CPU+APU, e = emotion APU):");
    print!("{}", pipe.timeline.ascii_gantt(72));
    assert!(pipe.makespan_us <= seq.makespan_us);
}
