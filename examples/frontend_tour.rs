//! Frontend tour: one model per framework, all meeting at Relay.
//!
//! The paper's motivation (§1): "the solution could accept a variety of
//! machine learning frameworks, including Tensorflow, Pytorch, ONNX, and
//! MxNet and utilize the AI accelerator from MediaTek." This example
//! imports a model from each implemented frontend, partitions it for
//! NeuroPilot, and reports the offload fraction.
//!
//! Run with: `cargo run --release --example frontend_tour`

use std::collections::HashMap;
use tvm_neuropilot::frontends::onnx::{AttrValue, OnnxModel, OnnxNode, ValueInfo};
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection};
use tvm_neuropilot::nir;
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::tensor::rng::TensorRng;

fn onnx_classifier() -> Module {
    // A small ONNX classifier (ONNX needs no model-zoo entry in the paper,
    // but the frontend exists; MXNet exports via ONNX).
    let mut rng = TensorRng::new(77);
    let mut initializers = HashMap::new();
    initializers.insert("w1".to_string(), rng.uniform_f32([8, 3, 3, 3], -0.4, 0.4));
    initializers.insert("b1".to_string(), rng.uniform_f32([8], -0.1, 0.1));
    initializers.insert("fc".to_string(), rng.uniform_f32([10, 8], -0.3, 0.3));
    let model = OnnxModel {
        nodes: vec![
            OnnxNode::new("Conv", &["x", "w1", "b1"], &["c"])
                .with_attr("pads", AttrValue::Ints(vec![1, 1, 1, 1])),
            OnnxNode::new("Relu", &["c"], &["r"]),
            OnnxNode::new("GlobalAveragePool", &["r"], &["g"]),
            OnnxNode::new("Flatten", &["g"], &["f"]),
            OnnxNode::new("Gemm", &["f", "fc"], &["l"]),
            OnnxNode::new("Softmax", &["l"], &["p"]),
        ],
        inputs: vec![ValueInfo {
            name: "x".into(),
            shape: vec![1, 3, 16, 16],
        }],
        outputs: vec!["p".into()],
        initializers,
    };
    tvm_neuropilot::frontends::onnx::from_onnx(&model).unwrap()
}

fn main() {
    let entries: Vec<(&str, &str, Module)> = vec![
        (
            "PyTorch",
            "DeePixBiS anti-spoofing",
            anti_spoofing::anti_spoofing_model(1).module,
        ),
        (
            "Keras",
            "emotion detection",
            emotion::emotion_model(2).module,
        ),
        (
            "TFLite",
            "MobileNet-SSD (quant)",
            object_detection::mobilenet_ssd_model(3).module,
        ),
        (
            "Darknet",
            "YOLOv3-tiny",
            object_detection::yolo_model(4).module,
        ),
        ("ONNX", "small classifier", onnx_classifier()),
    ];

    println!(
        "{:<10} {:<26} {:>5} {:>10} {:>9}",
        "framework", "model", "ops", "subgraphs", "offload"
    );
    for (fw, name, module) in entries {
        let calls = module.main().num_calls();
        let (_p, report) = nir::partition_for_nir(&module).unwrap();
        println!(
            "{:<10} {:<26} {:>5} {:>10} {:>8.0}%",
            fw,
            name,
            calls,
            report.num_subgraphs,
            report.offload_fraction() * 100.0
        );
    }
    println!("\nEvery frontend reaches the same Relay IR and the same BYOC flow —");
    println!("the heterogeneity the application showcase exists to demonstrate.");
}
