//! Quickstart: the paper's core flow in ~40 lines.
//!
//! Import a Keras model (the emotion-detection CNN of Listing 4),
//! partition it for NeuroPilot through the BYOC flow, build it for a
//! target permutation, and run inference on the simulated Dimensity 800 —
//! comparing against TVM-only to see why the paper calls BYOC a win-win.
//!
//! Run with: `cargo run --release --example quickstart`

use tvm_neuropilot::models::emotion::{emotion_model, EMOTIONS};
use tvm_neuropilot::nir;
use tvm_neuropilot::prelude::*;

fn main() {
    // 1. A model from a "foreign" framework lands in Relay.
    let model = emotion_model(7);
    println!("model: {} (from {})", model.name, model.framework.name());

    // 2. BYOC partitioning: which parts can NeuroPilot take?
    let (_partitioned, report) = nir::partition_for_nir(&model.module).unwrap();
    println!(
        "partition: {} subgraph(s), {}/{} calls offloaded",
        report.num_subgraphs,
        report.offloaded_calls,
        report.offloaded_calls + report.host_calls
    );

    // 3. Build under two target modes and run the same input.
    let cost = CostModel::default();
    let input = model.sample_inputs(42);

    let mut tvm_only = relay_build(&model.module, TargetMode::TvmOnly, cost.clone()).unwrap();
    let (out_tvm, t_tvm) = tvm_only.run(&input).unwrap();

    let mut byoc = relay_build(
        &model.module,
        TargetMode::Byoc(TargetPolicy::ApuPrefer),
        cost,
    )
    .unwrap();
    let (out_byoc, t_byoc) = byoc.run(&input).unwrap();

    // 4. Same numerics, different simulated time.
    assert!(
        out_tvm[0].bit_eq(&out_byoc[0]),
        "BYOC must not change results"
    );
    let label = EMOTIONS[out_byoc[0].argmax()];
    println!("predicted emotion: {label}");
    println!("TVM-only    : {:8.2} ms (simulated)", t_tvm / 1000.0);
    println!("BYOC + APU  : {:8.2} ms (simulated)", t_byoc / 1000.0);
    println!("speedup     : {:.1}x", t_tvm / t_byoc);
    assert!(t_byoc < t_tvm, "the paper's headline: BYOC beats TVM-only");
}
