//! Cross-compile & deploy to Android (paper §4.5, Listing 6).
//!
//! The TVM stack splits into compiler and runtime: the model is compiled
//! and `export_library`'d on the "server", then a phone that owns only the
//! runtime loads the artifact and runs inference. This example walks that
//! path with the quantized MobileNet-SSD.
//!
//! Run with: `cargo run --release --example deploy_android`

use tvm_neuropilot::byoc::build::relay_build_with_artifact;
use tvm_neuropilot::byoc::NeuronModule;
use tvm_neuropilot::models::object_detection::mobilenet_ssd_model;
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::runtime::artifact::LoaderRegistry;
use tvm_neuropilot::runtime::{AndroidDevice, Artifact};

fn main() {
    let cost = CostModel::default();
    let model = mobilenet_ssd_model(9);
    println!("server: compiling {} for BYOC CPU+APU ...", model.name);

    // relay.build(...) with opt passes + partitioning + external codegen.
    let (mut compiled, artifact) = relay_build_with_artifact(
        &model.module,
        TargetMode::Byoc(TargetPolicy::CpuApu),
        cost.clone(),
    )
    .unwrap();
    let artifact = artifact.expect("TVM-side builds export artifacts");

    // lib.export_library(dylib_path, ndk.create_shared)
    let dir = std::env::temp_dir().join("tvmnp_deploy");
    std::fs::create_dir_all(&dir).unwrap();
    let dylib_path = dir.join("mobilenet_ssd_quant.so.json");
    artifact.export_library(&dylib_path).unwrap();
    println!(
        "server: exported {} ({} KiB, {} external module(s))",
        dylib_path.display(),
        artifact.size_bytes() / 1024,
        artifact.externals.len()
    );

    // Reference output computed on the server side.
    let inputs = model.sample_inputs(77);
    let (server_out, _) = compiled.run(&inputs).unwrap();

    // The phone owns only the runtime: loaders + cost model, no compiler.
    let mut loaders = LoaderRegistry::new();
    loaders.register("neuropilot", NeuronModule::loader(cost.clone()));
    let phone = AndroidDevice::new("OPPO Reno4 Z 5G", loaders, cost);
    let loaded = Artifact::load_library(&dylib_path).unwrap();
    let mut executor = phone.load(&loaded).unwrap();

    // set_input / run / get_output on the device.
    executor
        .set_input(&model.input_name, inputs[&model.input_name].clone())
        .unwrap();
    let t = executor.run().unwrap();
    println!(
        "phone : inference in {:.2} ms (simulated on {})",
        t / 1000.0,
        phone.name
    );

    assert_eq!(executor.num_outputs(), server_out.len());
    for (i, server) in server_out.iter().enumerate() {
        let out = executor.get_output(i).unwrap();
        assert!(
            out.bit_eq(server),
            "device output {i} must match the server"
        );
        println!("phone : output {i} = {} {}", out.shape(), out.dtype());
    }
    println!("deployment round-trip verified: server and device outputs are bit-identical");
}
