//! The paper's future work, working: operation-level scheduling with I/O
//! awareness (§5.1), compared against the fixed model-level policies.
//!
//! Run with: `cargo run --release --example op_level_scheduling`

use tvm_neuropilot::models::emotion::emotion_model;
use tvm_neuropilot::neuropilot::{convert_function, plan_op_level, CompiledNetwork};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::relay::passes::simplify;

fn main() {
    let cost = CostModel::default();
    let model = emotion_model(7);
    let prepared = simplify(&model.module);
    let graph = convert_function(prepared.main()).expect("emotion model converts");

    println!("model: {} ({} Neuron ops)\n", model.name, graph.num_ops());
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "planner", "time (ms)", "segments", "crossings"
    );

    for policy in [
        TargetPolicy::CpuOnly,
        TargetPolicy::ApuPrefer,
        TargetPolicy::CpuApu,
    ] {
        let net = CompiledNetwork::compile(graph.clone(), policy, cost.clone()).unwrap();
        println!(
            "{:<18} {:>10.3} {:>10} {:>10}",
            policy.label(),
            net.estimate_time_us() / 1000.0,
            net.plan().segments.len(),
            net.plan().crossings.len()
        );
    }

    let plan = plan_op_level(&graph, &cost).expect("op-level plan");
    let net = CompiledNetwork::from_plan(graph.clone(), plan, cost.clone());
    println!(
        "{:<18} {:>10.3} {:>10} {:>10}",
        "op-level DP",
        net.estimate_time_us() / 1000.0,
        net.plan().segments.len(),
        net.plan().crossings.len()
    );

    println!("\nper-op placement chosen by the DP:");
    for (op, p) in graph.ops.iter().zip(&net.plan().placements) {
        println!("  {:<24} -> {}", op.kind.name(), p.device.name());
    }

    // The plan changes time only, never numerics.
    let input = model.sample_input(42);
    let (a, t) = net.execute(std::slice::from_ref(&input)).unwrap();
    let cpu = CompiledNetwork::compile(graph, TargetPolicy::CpuOnly, cost).unwrap();
    let (b, _) = cpu.execute(&[input]).unwrap();
    assert!(a[0].bit_eq(&b[0]), "placement must not change results");
    println!(
        "\nverified: op-level plan is bit-identical to CPU-only, {:.3} ms simulated",
        t / 1000.0
    );
}
