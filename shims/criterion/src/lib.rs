//! Minimal criterion shim (see `shims/README.md`).
//!
//! Benches compile unchanged and, when run, execute a short warmup plus a
//! fixed number of timed iterations, printing the mean per-iteration time.
//! There is no statistical analysis, HTML report, or baseline comparison —
//! the simulated-time figures in this repo come from the `tvmnp-bench`
//! binaries, not from these wall-clock benches.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` groups setup outputs (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `f` over the configured iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn run_one(name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // One warmup pass, then the timed pass.
    let mut warmup = Bencher {
        iters: 1,
        total: Duration::ZERO,
    };
    f(&mut warmup);
    let mut b = Bencher {
        iters: sample_size,
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.total.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "bench {name:<48} {:>12.3} µs/iter ({} iters)",
        mean * 1e6,
        b.iters
    );
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
