//! Minimal rayon shim (see `shims/README.md`).
//!
//! Implements the one pattern the kernel crates use —
//! `slice.par_chunks_mut(n).enumerate().for_each(|(i, chunk)| ...)` —
//! with real parallelism: chunks are distributed round-robin over
//! `std::thread::scope` workers sized to the host's parallelism. Small
//! inputs (fewer chunks than would amortize a thread spawn) run inline.

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Chunked parallel iteration over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel mutable-chunk iterator.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate {
            chunks: self.chunks,
        }
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel mutable-chunk iterator.
pub struct ParEnumerate<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let items: Vec<(usize, &'a mut [T])> = self.chunks.into_iter().enumerate().collect();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = workers.min(items.len()).max(1);
        if workers <= 1 || items.len() <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        // Round-robin buckets: consecutive chunks land on different
        // workers, which balances the typical uniform-cost kernels.
        let mut buckets: Vec<Vec<(usize, &'a mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (k, item) in items.into_iter().enumerate() {
            buckets[k % workers].push(item);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for item in bucket {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_matches_sequential() {
        let mut data = vec![0u64; 1024];
        data.par_chunks_mut(16).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 16 + j) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn uneven_tail_chunk() {
        let mut data = vec![1u8; 10];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u8;
            }
        });
        assert_eq!(data, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }
}
