//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Dependency-free: the item is parsed directly from the
//! `proc_macro::TokenStream` (no `syn`/`quote`) and the impls are emitted
//! as source text. Supports concrete (non-generic) structs — named,
//! tuple, and unit — and enums with unit/tuple/struct variants, plus the
//! `#[serde(default)]` field attribute. Representations follow serde's
//! defaults: structs → objects, one-element tuple structs are transparent
//! newtypes, enums are externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the shim `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derive the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("compile_error parses")
}

// ---- parsing ---------------------------------------------------------------

/// Skip attributes (`#[...]`), returning whether any was `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    if args.stream().to_string().contains("default") {
                                        has_default = true;
                                    }
                                }
                            }
                        }
                        i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (i, has_default)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or any token run) until a top-level comma.
/// Returns the index of the comma (or `toks.len()`).
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, default) = skip_attrs(&toks, i);
        let j = skip_vis(&toks, j);
        let name = match toks.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match toks.get(j + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected ':' after field '{name}', found {other:?}"
                ))
            }
        }
        fields.push(Field { name, default });
        i = skip_to_comma(&toks, j + 2) + 1;
    }
    Ok(fields)
}

fn tuple_arity(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        arity += 1;
        i = skip_to_comma(&toks, i) + 1;
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _) = skip_attrs(&toks, i);
        let name = match toks.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let (shape, next) = match toks.get(j + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (VariantShape::Tuple(tuple_arity(g)), j + 2)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (VariantShape::Struct(parse_named_fields(g)?), j + 2)
            }
            _ => (VariantShape::Unit, j + 1),
        };
        variants.push(Variant { name, shape });
        // Skip optional discriminant and trailing comma.
        i = skip_to_comma(&toks, next) + 1;
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected 'struct' or 'enum', found {other:?}")),
    };
    let name = match toks.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.get(i + 2) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type '{name}'"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match toks.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: tuple_arity(g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body for '{name}': {other:?}")),
        },
        "enum" => match toks.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unsupported enum body for '{name}': {other:?}")),
        },
        other => Err(format!("cannot derive for item kind '{other}'")),
    }
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0}));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            impl_serialize(name, &body)
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut payload = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            payload.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{payload}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_fields_from_map(ty: &str, map_expr: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.default {
            inits.push_str(&format!(
                "{0}: match {map_expr}.get(\"{0}\") {{\n\
                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                 None => ::std::default::Default::default(),\n}},\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{0}: ::serde::Deserialize::from_value({map_expr}.get(\"{0}\")\
                 .ok_or_else(|| ::serde::Error::missing_field(\"{0}\", \"{ty}\"))?)?,\n",
                f.name
            ));
        }
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = named_fields_from_map(name, "m", fields);
            let body = format!(
                "let m = v.as_object()\
                 .ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::from_value(a.get({k})\
                             .ok_or_else(|| ::serde::Error::expected(\"element {k}\", \"{name}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let a = v.as_array()\
                     .ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let build = if *arity == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(payload)?)")
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(a.get({k})\
                                         .ok_or_else(|| ::serde::Error::expected(\
                                         \"element {k}\", \"{name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let a = payload.as_array()\
                                 .ok_or_else(|| ::serde::Error::expected(\
                                 \"array\", \"{name}::{vn}\"))?;\n\
                                 {name}::{vn}({}) }}",
                                items.join(", ")
                            )
                        };
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({build}),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits =
                            named_fields_from_map(&format!("{name}::{vn}"), "inner", fields);
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let inner = payload.as_object()\
                             .ok_or_else(|| ::serde::Error::expected(\
                             \"object\", \"{name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(other, \"{name}\")),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, payload) = m.iter().next().expect(\"len checked\");\n\
                 match k.as_str() {{\n{keyed_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(other, \"{name}\")),\n}}\n}}\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"enum representation\", \"{name}\")),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
