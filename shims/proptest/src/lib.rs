//! Minimal proptest shim (see `shims/README.md`).
//!
//! Runs each property as `cases` deterministic random trials seeded from
//! the test's name, so failures reproduce exactly across runs. Failing
//! inputs are printed in full; there is no shrinking — with seeded,
//! moderately sized strategies the raw counterexample is already small.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` trials.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single test case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator for one named test.
pub fn test_rng(test_name: &str) -> SmallRng {
    // FNV-1a over the name — stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A value generator (shrinking-free analogue of `proptest::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`] (proptest's `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` resolves, as with real
    /// proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Property-test entry point; see the crate docs for the differences from
/// real proptest (fixed seed, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let mut desc = ::std::string::String::new();
                $(
                    desc.push_str(&format!("\n  {} = {:?}", stringify!($arg), &$arg));
                )*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        desc
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Ranges stay in bounds; vec lengths respect the size range.
        fn generated_values_in_bounds(
            xs in prop::collection::vec(0u8..=255, 1..16),
            n in 0u64..10_000,
            f in (-1000i32..1000).prop_map(|v| v as f32 / 10.0),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 16);
            prop_assert!(n < 10_000);
            prop_assert!((-100.0..100.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_rng("alpha");
        let mut b = crate::test_rng("alpha");
        let s = 0u64..100;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
