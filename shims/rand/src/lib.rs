//! Minimal rand shim (see `shims/README.md`).
//!
//! Provides a deterministic `SmallRng` (xoshiro256++ seeded via
//! splitmix64 — the same generator family real rand 0.8 uses on 64-bit
//! targets) plus the `Rng`/`SeedableRng` trait surface the workspace
//! uses: `gen_range` over half-open and inclusive integer/float ranges
//! and `gen::<u64>()`. Sampling is deliberately simple (modulo reduction)
//! — determinism and uniform-enough spread matter here, not statistical
//! perfection; seeded tensors must stay stable across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Sample a value of `T` from all its bit patterns (the `Standard`
    /// distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Sample a bool with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Types samplable from raw bits (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> f32 {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, small-state, deterministic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The default "strong" generator — same core as [`SmallRng`] here;
    /// cryptographic strength is irrelevant for seeded test tensors.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-4i32..=9);
            assert!((-4..=9).contains(&i));
            let u = rng.gen_range(0u8..=255);
            let _ = u;
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn full_u64_range_samples() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = rng.gen_range(0u64..=u64::MAX);
        let _ = v;
    }
}
