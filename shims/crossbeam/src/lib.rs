//! Minimal crossbeam shim (see `shims/README.md`).

/// `crossbeam::channel` — bounded MPSC channels over `std::sync::mpsc`.
///
/// The scheduler uses one producer per stage and a single consumer, so
/// std's `sync_channel` semantics (blocking bounded send, `Clone`-able
/// sender) cover the crossbeam surface exercised here.
pub mod channel {
    use std::sync::mpsc;

    /// Error from sending on a disconnected channel; returns the value.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error from receiving on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; fails only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive; fails only when all senders are gone and the
        /// buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_pipeline() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
