//! The JSON-style value tree shared by the `serde` and `serde_json` shims.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. A `BTreeMap` keeps key order deterministic,
/// which the telemetry golden tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: signed, unsigned, or float — mirroring
/// `serde_json::Number`'s three internal arms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (only needed above `i64::MAX`).
    U(u64),
    /// Float.
    F(f64),
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (deterministically ordered).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n as f64),
            Value::Number(Number::U(n)) => Some(*n as f64),
            Value::Number(Number::F(n)) => Some(*n),
            _ => None,
        }
    }

    /// Integer value as `i64` (floats only when exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n),
            Value::Number(Number::U(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F(n)) if n.fract() == 0.0 && n.abs() < 2f64.powi(63) => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Integer value as `u64` (floats only when exactly integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::F(n)) if n.fract() == 0.0 && *n >= 0.0 && *n < 2f64.powi(64) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_json(self, f)
    }
}

fn write_json(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(Number::I(n)) => write!(f, "{n}"),
        Value::Number(Number::U(n)) => write!(f, "{n}"),
        Value::Number(Number::F(n)) => {
            if n.is_finite() {
                // `{:?}` keeps a decimal point / exponent so the value
                // re-parses as a float, and round-trips exactly.
                write!(f, "{n:?}")
            } else {
                // Like serde_json's default behavior for non-finite floats.
                f.write_str("null")
            }
        }
        Value::String(s) => write_escaped(s, f),
        Value::Array(a) => {
            f.write_str("[")?;
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_json(item, f)?;
            }
            f.write_str("]")
        }
        Value::Object(m) => {
            f.write_str("{")?;
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(k, f)?;
                f.write_str(":")?;
                write_json(val, f)?;
            }
            f.write_str("}")
        }
    }
}

fn write_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::F(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(Number::I(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::U(n))
    }
}
