//! Minimal serde shim (see `shims/README.md`).
//!
//! Real serde serializes through a visitor/`Serializer` pair; this shim
//! collapses that to a JSON-style value tree: `Serialize` renders `self`
//! into a [`Value`], `Deserialize` reads one back. `serde_json` (also a
//! shim) is the only consumer, so the value tree *is* the data model.
//! Derive macros come from the dependency-free `serde_derive` shim and
//! follow serde's default representations (structs → objects, newtype
//! structs transparent, enums externally tagged) so artifacts round-trip
//! the way real serde would shape them.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Type-mismatch error: wanted `expected` while handling `ctx`.
    pub fn expected(expected: &str, ctx: &str) -> Error {
        Error(format!("expected {expected} for {ctx}"))
    }

    /// Missing object field.
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error(format!("missing field '{field}' for {ty}"))
    }

    /// Unknown enum variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error(format!("unknown variant '{variant}' for {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`] tree (shim analogue of `serde::Serialize`).
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree (shim analogue of
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Convert from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), "number"))
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), "number"))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", "number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // f32 → f64 widening is exact, so the narrowing cast round-trips.
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::expected("f32", "number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "value"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "value"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| Error::expected("char", "string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error(format!("expected {N} elements, got {}", items.len())))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                Ok(($($t::from_value(
                    a.get($n).ok_or_else(|| Error::expected("tuple element", "tuple"))?,
                )?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
