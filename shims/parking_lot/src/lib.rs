//! Minimal parking_lot shim (see `shims/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's no-poison API: `lock()`
//! returns a guard directly, recovering the data if a previous holder
//! panicked (parking_lot has no poisoning at all, so recovery matches its
//! semantics).

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking; panics in other holders are ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
