//! Minimal serde_json shim (see `shims/README.md`).
//!
//! Emission is deterministic: objects serialize with sorted keys (the
//! value tree stores them in a `BTreeMap`), floats print via `{:?}` (exact
//! round-trip, always re-parse as floats). The parser is a plain
//! recursive-descent JSON reader supporting the full escape set.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serialize any `Serialize` type to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize to the value tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize from the value tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Build [`Value`]s with JSON-ish syntax.
///
/// Supports the forms this workspace uses: object literals with string
/// keys, array literals, `null`, and interpolated `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__to_value_helper(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($key), $crate::__to_value_helper(&$val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::__to_value_helper(&$other) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
pub fn __to_value_helper<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs: read a second escape.
                            if (0xd800..0xdc00).contains(&code) {
                                let lo_start = self.pos + 5;
                                if self.bytes.get(lo_start..lo_start + 2) != Some(b"\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(lo_start + 2..lo_start + 6)
                                    .ok_or_else(|| Error("truncated surrogate".into()))?;
                                let lo = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error("bad surrogate".into()))?,
                                    16,
                                )
                                .map_err(|_| Error("bad surrogate".into()))?;
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("bad surrogate pair".into()))?,
                                );
                                // 'u' + 4 hex + '\' + 'u' + 4 hex.
                                self.pos += 11;
                                continue;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(n)));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F(n)))
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in [
            "null",
            "true",
            "false",
            "1",
            "-7",
            "2.5",
            "\"hi\"",
            "[1,2]",
            "{\"a\":1}",
        ] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(v.to_string(), json);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}f\u{1F600}".into());
        let s = v.to_string();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pair_parses() {
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn float_distinct_from_int() {
        let v: Value = from_str("1.0").unwrap();
        assert_eq!(v.to_string(), "1.0");
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }

    #[test]
    fn object_keys_sorted() {
        let v: Value = from_str("{\"b\":1,\"a\":2}").unwrap();
        assert_eq!(v.to_string(), "{\"a\":2,\"b\":1}");
    }

    #[test]
    fn json_macro_forms() {
        let sym = String::from("nir_0");
        let v =
            json!({ "symbol": sym, "time_us": 4.5, "tags": json!([1, 2]), "none": Value::Null });
        assert_eq!(v["symbol"].as_str(), Some("nir_0"));
        assert_eq!(v["time_us"].as_f64(), Some(4.5));
        assert_eq!(v["tags"][1].as_u64(), Some(2));
        assert!(v["none"].is_null());
    }
}
