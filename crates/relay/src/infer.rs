//! Type (shape + dtype) inference over modules.
//!
//! Every node of every function gets a checked [`Type`]. Global calls are
//! typed against the callee's parameters and body, so a partitioned module
//! type-checks exactly like the unpartitioned one — the invariant the BYOC
//! flow rests on.

use crate::expr::{CallTarget, ExprKind, Module};
use crate::op::OpKind;
use crate::ty::{TensorType, Type};
use crate::visit::topo_order;
use std::collections::HashMap;
use std::fmt;
use tvmnp_tensor::kernels::{Conv2dParams, Pool2dParams};
use tvmnp_tensor::{DType, Shape};

/// A type-checking failure with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

fn terr(msg: impl Into<String>) -> TypeError {
    TypeError(msg.into())
}

/// Checked types for every node id in a module.
pub type TypeMap = HashMap<usize, Type>;

/// Infer types for all functions of `module`.
///
/// Functions are processed so callees are typed before callers (externals
/// before `main`).
pub fn infer_types(module: &Module) -> Result<TypeMap, TypeError> {
    let mut types: TypeMap = HashMap::new();
    let mut fn_result: HashMap<String, Type> = HashMap::new();
    let mut fn_params: HashMap<String, Vec<TensorType>> = HashMap::new();

    // Externals (and any non-main function) carry no cross-calls in this
    // reproduction, so typing them first resolves every Global target.
    let mut names: Vec<&String> = module.functions.keys().collect();
    names.sort_by_key(|n| (n.as_str() == "main") as u8);

    for name in names {
        let func = &module.functions[name];
        let mut params = Vec::new();
        for p in &func.params {
            match &p.kind {
                ExprKind::Var(v) => {
                    types.insert(p.id, Type::Tensor(v.ty.clone()));
                    params.push(v.ty.clone());
                }
                _ => return Err(terr(format!("function @{name} parameter is not a Var"))),
            }
        }
        fn_params.insert(name.clone(), params);

        for e in topo_order(&func.body) {
            if types.contains_key(&e.id) {
                continue;
            }
            let ty = match &e.kind {
                ExprKind::Var(v) => Type::Tensor(v.ty.clone()),
                ExprKind::Constant(c) => {
                    Type::Tensor(TensorType::new(c.value.shape().clone(), c.value.dtype()))
                }
                ExprKind::Tuple(fs) => {
                    Type::Tuple(fs.iter().map(|f| types[&f.id].clone()).collect())
                }
                ExprKind::TupleGetItem(t, i) => match &types[&t.id] {
                    Type::Tuple(ts) => ts
                        .get(*i)
                        .cloned()
                        .ok_or_else(|| terr(format!("tuple index {i} out of range")))?,
                    Type::Tensor(_) => return Err(terr("TupleGetItem on non-tuple".to_string())),
                },
                ExprKind::Call(c) => {
                    let arg_tys: Vec<&Type> = c.args.iter().map(|a| &types[&a.id]).collect();
                    match &c.target {
                        CallTarget::Op(op) => infer_op(op, &arg_tys)?,
                        CallTarget::Global(g) => {
                            let params = fn_params
                                .get(g)
                                .ok_or_else(|| terr(format!("unknown global @{g}")))?;
                            if params.len() != arg_tys.len() {
                                return Err(terr(format!(
                                    "@{g} expects {} args, got {}",
                                    params.len(),
                                    arg_tys.len()
                                )));
                            }
                            for (i, (p, a)) in params.iter().zip(&arg_tys).enumerate() {
                                let at = a
                                    .tensor()
                                    .ok_or_else(|| terr(format!("@{g} arg {i} is a tuple")))?;
                                if at != p {
                                    return Err(terr(format!(
                                        "@{g} arg {i}: expected {p}, got {at}"
                                    )));
                                }
                            }
                            fn_result
                                .get(g)
                                .cloned()
                                .ok_or_else(|| terr(format!("global @{g} not yet typed")))?
                        }
                    }
                }
            };
            types.insert(e.id, ty);
        }
        fn_result.insert(name.clone(), types[&func.body.id].clone());
    }
    Ok(types)
}

fn tensor_arg<'a>(args: &'a [&Type], i: usize, op: &str) -> Result<&'a TensorType, TypeError> {
    args.get(i)
        .ok_or_else(|| terr(format!("{op}: missing argument {i}")))?
        .tensor()
        .ok_or_else(|| terr(format!("{op}: argument {i} is a tuple")))
}

/// Infer the result type of one primitive op application.
pub fn infer_op(op: &OpKind, args: &[&Type]) -> Result<Type, TypeError> {
    let name = op.name();
    let expect_args = |n: usize| -> Result<(), TypeError> {
        if args.len() != n {
            Err(terr(format!(
                "{name}: expected {n} args, got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };

    match op {
        OpKind::Conv2d(a) => {
            expect_args(2).or_else(|_| expect_args(3))?;
            let x = tensor_arg(args, 0, name)?;
            let w = tensor_arg(args, 1, name)?;
            conv_out(x, w, &a.to_kernel(), x.dtype, name)
        }
        OpKind::QnnConv2d(a) => {
            expect_args(2).or_else(|_| expect_args(3))?;
            let x = tensor_arg(args, 0, name)?;
            let w = tensor_arg(args, 1, name)?;
            if !x.dtype.is_quantized() || !w.dtype.is_quantized() {
                return Err(terr(format!("{name}: operands must be quantized")));
            }
            conv_out(x, w, &a.conv.to_kernel(), a.out_dtype, name)
        }
        OpKind::Dense => {
            expect_args(2).or_else(|_| expect_args(3))?;
            let x = tensor_arg(args, 0, name)?;
            let w = tensor_arg(args, 1, name)?;
            dense_out(x, w, x.dtype, name)
        }
        OpKind::QnnDense(a) => {
            expect_args(2).or_else(|_| expect_args(3))?;
            let x = tensor_arg(args, 0, name)?;
            let w = tensor_arg(args, 1, name)?;
            dense_out(x, w, a.out_dtype, name)
        }
        OpKind::BiasAdd => {
            expect_args(2)?;
            let x = tensor_arg(args, 0, name)?;
            let b = tensor_arg(args, 1, name)?;
            if x.shape.rank() < 2 || b.shape.rank() != 1 || b.shape.dims()[0] != x.shape.dims()[1] {
                return Err(terr(format!(
                    "{name}: bias {} incompatible with input {}",
                    b.shape, x.shape
                )));
            }
            Ok(Type::Tensor(x.clone()))
        }
        OpKind::BatchNorm(_) => {
            expect_args(5)?;
            let x = tensor_arg(args, 0, name)?;
            if x.shape.rank() != 4 {
                return Err(terr(format!("{name}: expects NCHW input, got {}", x.shape)));
            }
            let c = x.shape.dims()[1];
            for i in 1..5 {
                let p = tensor_arg(args, i, name)?;
                if p.shape.dims() != [c] {
                    return Err(terr(format!(
                        "{name}: param {i} shape {} != [{c}]",
                        p.shape
                    )));
                }
            }
            Ok(Type::Tensor(x.clone()))
        }
        // Shape-preserving unaries.
        OpKind::Relu
        | OpKind::LeakyRelu(_)
        | OpKind::Clip(_)
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Exp
        | OpKind::Sqrt
        | OpKind::Negative
        | OpKind::Softmax
        | OpKind::LogSoftmax
        | OpKind::Dropout => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            Ok(Type::Tensor(x.clone()))
        }
        OpKind::MaxPool2d(a) | OpKind::AvgPool2d(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            pool_out(x, &a.to_kernel(), name)
        }
        OpKind::GlobalAvgPool2d => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            if d.len() != 4 {
                return Err(terr(format!("{name}: expects rank-4 input")));
            }
            Ok(Type::Tensor(TensorType::new([d[0], d[1], 1, 1], x.dtype)))
        }
        OpKind::Add
        | OpKind::Subtract
        | OpKind::Multiply
        | OpKind::Divide
        | OpKind::Maximum
        | OpKind::Minimum => {
            expect_args(2)?;
            let a = tensor_arg(args, 0, name)?;
            let b = tensor_arg(args, 1, name)?;
            if a.dtype != b.dtype {
                return Err(terr(format!(
                    "{name}: dtype mismatch {} vs {}",
                    a.dtype, b.dtype
                )));
            }
            let shape = a.shape.broadcast(&b.shape).ok_or_else(|| {
                terr(format!(
                    "{name}: cannot broadcast {} with {}",
                    a.shape, b.shape
                ))
            })?;
            Ok(Type::Tensor(TensorType::new(shape, a.dtype)))
        }
        OpKind::QnnAdd(a) => {
            expect_args(2)?;
            let l = tensor_arg(args, 0, name)?;
            let r = tensor_arg(args, 1, name)?;
            let shape = l.shape.broadcast(&r.shape).ok_or_else(|| {
                terr(format!(
                    "{name}: cannot broadcast {} with {}",
                    l.shape, r.shape
                ))
            })?;
            Ok(Type::Tensor(TensorType::new(shape, a.out_dtype)))
        }
        OpKind::Reshape(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let new = Shape::new(a.new_shape.clone());
            if !x.shape.reshape_compatible(&new) {
                return Err(terr(format!("{name}: {} cannot reshape to {new}", x.shape)));
            }
            Ok(Type::Tensor(TensorType::new(new, x.dtype)))
        }
        OpKind::Transpose(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            if a.axes.len() != d.len() {
                return Err(terr(format!("{name}: axes rank mismatch")));
            }
            let mut seen = vec![false; d.len()];
            let mut out = Vec::with_capacity(d.len());
            for &ax in &a.axes {
                if ax >= d.len() || seen[ax] {
                    return Err(terr(format!("{name}: axes not a permutation")));
                }
                seen[ax] = true;
                out.push(d[ax]);
            }
            Ok(Type::Tensor(TensorType::new(out, x.dtype)))
        }
        OpKind::Concatenate(a) => concat_out(args, a.axis, None, name),
        OpKind::QnnConcatenate(a) => {
            if a.input_qs.len() != args.len() {
                return Err(terr(format!(
                    "{name}: {} input quant params for {} inputs",
                    a.input_qs.len(),
                    args.len()
                )));
            }
            concat_out(args, a.axis, None, name)
        }
        OpKind::Pad(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            if a.pads.len() != d.len() {
                return Err(terr(format!("{name}: pad spec rank mismatch")));
            }
            let out: Vec<usize> = d
                .iter()
                .zip(&a.pads)
                .map(|(&s, &(b, e))| s + b + e)
                .collect();
            Ok(Type::Tensor(TensorType::new(out, x.dtype)))
        }
        OpKind::StridedSlice(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            if a.begin.len() != d.len() || a.end.len() != d.len() {
                return Err(terr(format!("{name}: begin/end rank mismatch")));
            }
            let mut out = Vec::with_capacity(d.len());
            for (i, &dim) in d.iter().enumerate() {
                if a.begin[i] >= a.end[i] || a.end[i] > dim {
                    return Err(terr(format!("{name}: invalid range on dim {i}")));
                }
                out.push(a.end[i] - a.begin[i]);
            }
            Ok(Type::Tensor(TensorType::new(out, x.dtype)))
        }
        OpKind::BatchFlatten => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            if d.is_empty() {
                return Err(terr(format!("{name}: rank must be >= 1")));
            }
            Ok(Type::Tensor(TensorType::new(
                [d[0], d[1..].iter().product()],
                x.dtype,
            )))
        }
        OpKind::Resize2d(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            if d.len() != 4 {
                return Err(terr(format!("{name}: expects rank-4 input")));
            }
            Ok(Type::Tensor(TensorType::new(
                [d[0], d[1], a.out_h, a.out_w],
                x.dtype,
            )))
        }
        OpKind::Mean(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            let d = x.shape.dims();
            for &ax in &a.axes {
                if ax >= d.len() {
                    return Err(terr(format!("{name}: axis {ax} out of range")));
                }
            }
            let out: Vec<usize> = d
                .iter()
                .enumerate()
                .filter(|(i, _)| !a.axes.contains(i))
                .map(|(_, &s)| s)
                .collect();
            Ok(Type::Tensor(TensorType::new(out, x.dtype)))
        }
        OpKind::QnnQuantize(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            if !x.dtype.is_float() {
                return Err(terr(format!("{name}: input must be float")));
            }
            Ok(Type::Tensor(TensorType::new(x.shape.clone(), a.out_dtype)))
        }
        OpKind::QnnDequantize(_) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            if !x.dtype.is_quantized() {
                return Err(terr(format!("{name}: input must be quantized")));
            }
            Ok(Type::Tensor(TensorType::new(x.shape.clone(), DType::F32)))
        }
        OpKind::QnnRequantize(a) => {
            expect_args(1)?;
            let x = tensor_arg(args, 0, name)?;
            if x.dtype.is_float() {
                return Err(terr(format!("{name}: input must be integer")));
            }
            Ok(Type::Tensor(TensorType::new(x.shape.clone(), a.out_dtype)))
        }
    }
}

fn conv_out(
    x: &TensorType,
    w: &TensorType,
    p: &Conv2dParams,
    out_dtype: DType,
    name: &str,
) -> Result<Type, TypeError> {
    let xd = x.shape.dims();
    let wd = w.shape.dims();
    if xd.len() != 4 || wd.len() != 4 {
        return Err(terr(format!("{name}: expects rank-4 input/weight")));
    }
    if p.groups == 0
        || !xd[1].is_multiple_of(p.groups)
        || !wd[0].is_multiple_of(p.groups)
        || wd[1] != xd[1] / p.groups
    {
        return Err(terr(format!(
            "{name}: channel/group mismatch C={}, O={}, groups={}, w_ic={}",
            xd[1], wd[0], p.groups, wd[1]
        )));
    }
    let (oh, ow) = p
        .out_hw(xd[2], xd[3], wd[2], wd[3])
        .map_err(|e| terr(format!("{name}: {e}")))?;
    Ok(Type::Tensor(TensorType::new(
        [xd[0], wd[0], oh, ow],
        out_dtype,
    )))
}

fn dense_out(
    x: &TensorType,
    w: &TensorType,
    out_dtype: DType,
    name: &str,
) -> Result<Type, TypeError> {
    let xd = x.shape.dims();
    let wd = w.shape.dims();
    if xd.len() != 2 || wd.len() != 2 {
        return Err(terr(format!("{name}: expects rank-2 operands")));
    }
    if xd[1] != wd[1] {
        return Err(terr(format!(
            "{name}: reduction mismatch {} vs {}",
            xd[1], wd[1]
        )));
    }
    Ok(Type::Tensor(TensorType::new([xd[0], wd[0]], out_dtype)))
}

fn pool_out(x: &TensorType, p: &Pool2dParams, name: &str) -> Result<Type, TypeError> {
    let d = x.shape.dims();
    if d.len() != 4 {
        return Err(terr(format!("{name}: expects rank-4 input")));
    }
    let (pt, pl, pb, pr) = p.padding;
    let ih = d[2] + pt + pb;
    let iw = d[3] + pl + pr;
    if ih < p.kernel.0 || iw < p.kernel.1 {
        return Err(terr(format!("{name}: window larger than padded input")));
    }
    let oh = (ih - p.kernel.0) / p.strides.0 + 1;
    let ow = (iw - p.kernel.1) / p.strides.1 + 1;
    Ok(Type::Tensor(TensorType::new([d[0], d[1], oh, ow], x.dtype)))
}

fn concat_out(args: &[&Type], axis: usize, _qs: Option<()>, name: &str) -> Result<Type, TypeError> {
    if args.is_empty() {
        return Err(terr(format!("{name}: no inputs")));
    }
    let first = tensor_arg(args, 0, name)?;
    let rank = first.shape.rank();
    if axis >= rank {
        return Err(terr(format!("{name}: axis {axis} out of range")));
    }
    let mut out = first.shape.dims().to_vec();
    let mut total = 0usize;
    for i in 0..args.len() {
        let t = tensor_arg(args, i, name)?;
        if t.dtype != first.dtype || t.shape.rank() != rank {
            return Err(terr(format!("{name}: input {i} dtype/rank mismatch")));
        }
        for d in 0..rank {
            if d != axis && t.shape.dims()[d] != first.shape.dims()[d] {
                return Err(terr(format!("{name}: input {i} dim {d} mismatch")));
            }
        }
        total += t.shape.dims()[axis];
    }
    out[axis] = total;
    Ok(Type::Tensor(TensorType::new(out, first.dtype)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::*;
    use crate::expr::{call, call_global, constant, var, Function, Module};
    use tvmnp_tensor::Tensor;

    fn f32_var(name: &str, shape: &[usize]) -> crate::expr::Expr {
        var(name, TensorType::f32(shape))
    }

    #[test]
    fn conv_shape() {
        let x = f32_var("x", &[1, 3, 32, 32]);
        let w = constant(Tensor::zeros_f32([16, 3, 3, 3]));
        let y = call(OpKind::Conv2d(Conv2dAttrs::same(1)), vec![x.clone(), w]);
        let m = Module::from_main(Function::new(vec![x], y.clone()));
        let tys = infer_types(&m).unwrap();
        assert_eq!(tys[&y.id].as_tensor().shape.dims(), &[1, 16, 32, 32]);
    }

    #[test]
    fn dense_mismatch_rejected() {
        let x = f32_var("x", &[1, 10]);
        let w = constant(Tensor::zeros_f32([4, 12]));
        let y = call(OpKind::Dense, vec![x.clone(), w]);
        let m = Module::from_main(Function::new(vec![x], y));
        assert!(infer_types(&m).is_err());
    }

    #[test]
    fn broadcast_add() {
        let a = f32_var("a", &[1, 4, 8, 8]);
        let b = f32_var("b", &[1, 4, 1, 1]);
        let y = call(OpKind::Add, vec![a.clone(), b.clone()]);
        let m = Module::from_main(Function::new(vec![a, b], y.clone()));
        let tys = infer_types(&m).unwrap();
        assert_eq!(tys[&y.id].as_tensor().shape.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn global_call_typed_from_callee() {
        // external: relu(x) over [1, 4]
        let px = f32_var("p", &[1, 4]);
        let ext = Function::new(vec![px.clone()], call(OpKind::Relu, vec![px]))
            .with_attr("Compiler", "neuropilot");
        let x = f32_var("x", &[1, 4]);
        let y = call_global("nir_0", vec![x.clone()]);
        let mut m = Module::from_main(Function::new(vec![x], y.clone()));
        m.functions.insert("nir_0".into(), ext);
        let tys = infer_types(&m).unwrap();
        assert_eq!(tys[&y.id].as_tensor().shape.dims(), &[1, 4]);
    }

    #[test]
    fn global_call_arg_mismatch() {
        let px = f32_var("p", &[1, 4]);
        let ext = Function::new(vec![px.clone()], call(OpKind::Relu, vec![px]));
        let x = f32_var("x", &[1, 5]);
        let y = call_global("nir_0", vec![x.clone()]);
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        assert!(infer_types(&m).is_err());
    }

    #[test]
    fn qnn_conv_out_dtype() {
        let x = var("x", TensorType::new([1, 3, 8, 8], DType::U8));
        let w = constant(
            Tensor::from_int_values(
                [8, 3, 3, 3],
                &vec![0; 8 * 27],
                DType::I8,
                Some(tvmnp_tensor::QuantParams::identity()),
            )
            .unwrap(),
        );
        let attrs = QnnConv2dAttrs {
            conv: Conv2dAttrs::same(1),
            input_q: tvmnp_tensor::QuantParams::identity(),
            weight_q: tvmnp_tensor::QuantParams::identity(),
            output_q: tvmnp_tensor::QuantParams::identity(),
            out_dtype: DType::U8,
        };
        let y = call(OpKind::QnnConv2d(attrs), vec![x.clone(), w]);
        let m = Module::from_main(Function::new(vec![x], y.clone()));
        let tys = infer_types(&m).unwrap();
        let t = tys[&y.id].as_tensor();
        assert_eq!(t.dtype, DType::U8);
        assert_eq!(t.shape.dims(), &[1, 8, 8, 8]);
    }

    #[test]
    fn tuple_roundtrip() {
        let x = f32_var("x", &[2, 2]);
        let t = crate::expr::tuple(vec![x.clone(), x.clone()]);
        let g = crate::expr::tuple_get(t, 1);
        let m = Module::from_main(Function::new(vec![x], g.clone()));
        let tys = infer_types(&m).unwrap();
        assert_eq!(tys[&g.id].as_tensor().shape.dims(), &[2, 2]);
    }

    #[test]
    fn softmax_preserves_shape() {
        let x = f32_var("x", &[1, 7]);
        let y = call(OpKind::Softmax, vec![x.clone()]);
        let m = Module::from_main(Function::new(vec![x], y.clone()));
        let tys = infer_types(&m).unwrap();
        assert_eq!(tys[&y.id].as_tensor().shape.dims(), &[1, 7]);
    }
}
