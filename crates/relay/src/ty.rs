//! Types checked onto Relay expressions.

use serde::{Deserialize, Serialize};
use std::fmt;
use tvmnp_tensor::{DType, Shape};

/// The type of one tensor value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorType {
    /// Static shape (the reproduction, like the paper's mobile deployments,
    /// compiles fixed-shape graphs).
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
}

impl TensorType {
    /// Convenience constructor.
    pub fn new(shape: impl Into<Shape>, dtype: DType) -> Self {
        TensorType {
            shape: shape.into(),
            dtype,
        }
    }

    /// Float32 tensor type.
    pub fn f32(shape: impl Into<Shape>) -> Self {
        TensorType::new(shape, DType::F32)
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.shape.num_elements() * self.dtype.size_bytes()
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}, {}]", self.shape, self.dtype)
    }
}

/// The checked type of an expression: a tensor or a tuple of tensors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// Single tensor.
    Tensor(TensorType),
    /// Tuple of component types.
    Tuple(Vec<Type>),
}

impl Type {
    /// Unwrap a tensor type, panicking on tuples (used where the op
    /// signature guarantees a tensor).
    pub fn as_tensor(&self) -> &TensorType {
        match self {
            Type::Tensor(t) => t,
            Type::Tuple(_) => panic!("expected tensor type, found tuple"),
        }
    }

    /// Tensor type, or `None` for tuples.
    pub fn tensor(&self) -> Option<&TensorType> {
        match self {
            Type::Tensor(t) => Some(t),
            Type::Tuple(_) => None,
        }
    }

    /// Total payload bytes (summed over tuple components).
    pub fn size_bytes(&self) -> usize {
        match self {
            Type::Tensor(t) => t.size_bytes(),
            Type::Tuple(ts) => ts.iter().map(Type::size_bytes).sum(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Tensor(t) => write!(f, "{t}"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<TensorType> for Type {
    fn from(t: TensorType) -> Self {
        Type::Tensor(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let t = TensorType::f32([1, 3, 8, 8]);
        assert_eq!(t.size_bytes(), 3 * 64 * 4);
        let tup = Type::Tuple(vec![
            t.clone().into(),
            TensorType::new([2], DType::I8).into(),
        ]);
        assert_eq!(tup.size_bytes(), 3 * 64 * 4 + 2);
    }

    #[test]
    fn display() {
        let t = TensorType::new([2, 2], DType::U8);
        assert_eq!(t.to_string(), "Tensor[(2, 2), uint8]");
    }

    #[test]
    #[should_panic(expected = "expected tensor type")]
    fn as_tensor_panics_on_tuple() {
        Type::Tuple(vec![]).as_tensor();
    }
}
