//! The operator vocabulary of the IR.
//!
//! Each [`OpKind`] variant carries its attributes inline, so a `Call` node is
//! self-describing. [`OpKind::name`] yields TVM's canonical operator string —
//! the key used by the NeuroPilot converter's `op_handler_dict` (Listing 1)
//! and by the per-backend support matrices.

use crate::attrs::*;
use serde::{Deserialize, Serialize};

/// A primitive Relay operator with attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    // ---- convolution / dense -------------------------------------------
    /// 2-D convolution.
    Conv2d(Conv2dAttrs),
    /// Fully connected.
    Dense,
    /// Per-channel bias add.
    BiasAdd,
    /// Inference batch normalization.
    BatchNorm(BatchNormAttrs),
    // ---- activations ----------------------------------------------------
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU.
    LeakyRelu(LeakyReluAttrs),
    /// Value clipping.
    Clip(ClipAttrs),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential.
    Exp,
    /// Square root.
    Sqrt,
    /// Negation.
    Negative,
    // ---- pooling ----------------------------------------------------------
    /// Max pooling.
    MaxPool2d(Pool2dAttrs),
    /// Average pooling.
    AvgPool2d(Pool2dAttrs),
    /// Global average pooling to 1x1.
    GlobalAvgPool2d,
    // ---- classification heads ---------------------------------------------
    /// Softmax over the last axis.
    Softmax,
    /// Log-softmax over the last axis.
    LogSoftmax,
    // ---- broadcast binary --------------------------------------------------
    /// Element-wise add.
    Add,
    /// Element-wise subtract.
    Subtract,
    /// Element-wise multiply.
    Multiply,
    /// Element-wise divide.
    Divide,
    /// Element-wise maximum.
    Maximum,
    /// Element-wise minimum.
    Minimum,
    // ---- data movement -----------------------------------------------------
    /// Static reshape.
    Reshape(ReshapeAttrs),
    /// Axis permutation.
    Transpose(TransposeAttrs),
    /// Concatenation (single-tensor args form).
    Concatenate(ConcatAttrs),
    /// Constant padding.
    Pad(PadAttrs),
    /// Unit-stride slice.
    StridedSlice(SliceAttrs),
    /// Collapse all but the batch dimension.
    BatchFlatten,
    /// Spatial resize.
    Resize2d(Resize2dAttrs),
    /// Mean reduction.
    Mean(MeanAttrs),
    /// Inference dropout (identity).
    Dropout,
    // ---- QNN dialect ---------------------------------------------------------
    /// Float → quantized.
    QnnQuantize(QuantizeAttrs),
    /// Quantized → float.
    QnnDequantize(DequantizeAttrs),
    /// Quantized rescale.
    QnnRequantize(RequantizeAttrs),
    /// Quantized convolution.
    QnnConv2d(QnnConv2dAttrs),
    /// Quantized dense.
    QnnDense(QnnDenseAttrs),
    /// Quantized add.
    QnnAdd(QnnAddAttrs),
    /// Quantized concatenate.
    QnnConcatenate(QnnConcatAttrs),
}

impl OpKind {
    /// TVM-style canonical operator name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Conv2d(_) => "nn.conv2d",
            OpKind::Dense => "nn.dense",
            OpKind::BiasAdd => "nn.bias_add",
            OpKind::BatchNorm(_) => "nn.batch_norm",
            OpKind::Relu => "nn.relu",
            OpKind::LeakyRelu(_) => "nn.leaky_relu",
            OpKind::Clip(_) => "clip",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Tanh => "tanh",
            OpKind::Exp => "exp",
            OpKind::Sqrt => "sqrt",
            OpKind::Negative => "negative",
            OpKind::MaxPool2d(_) => "nn.max_pool2d",
            OpKind::AvgPool2d(_) => "nn.avg_pool2d",
            OpKind::GlobalAvgPool2d => "nn.global_avg_pool2d",
            OpKind::Softmax => "nn.softmax",
            OpKind::LogSoftmax => "nn.log_softmax",
            OpKind::Add => "add",
            OpKind::Subtract => "subtract",
            OpKind::Multiply => "multiply",
            OpKind::Divide => "divide",
            OpKind::Maximum => "maximum",
            OpKind::Minimum => "minimum",
            OpKind::Reshape(_) => "reshape",
            OpKind::Transpose(_) => "transpose",
            OpKind::Concatenate(_) => "concatenate",
            OpKind::Pad(_) => "nn.pad",
            OpKind::StridedSlice(_) => "strided_slice",
            OpKind::BatchFlatten => "nn.batch_flatten",
            OpKind::Resize2d(_) => "image.resize2d",
            OpKind::Mean(_) => "mean",
            OpKind::Dropout => "nn.dropout",
            OpKind::QnnQuantize(_) => "qnn.quantize",
            OpKind::QnnDequantize(_) => "qnn.dequantize",
            OpKind::QnnRequantize(_) => "qnn.requantize",
            OpKind::QnnConv2d(_) => "qnn.conv2d",
            OpKind::QnnDense(_) => "qnn.dense",
            OpKind::QnnAdd(_) => "qnn.add",
            OpKind::QnnConcatenate(_) => "qnn.concatenate",
        }
    }

    /// Whether this is a QNN-dialect operator (quant params on the call).
    pub fn is_qnn(&self) -> bool {
        self.name().starts_with("qnn.")
    }

    /// Whether this op only moves/renames data (no arithmetic). Used by the
    /// cost model and by the QNN parameter propagation of §3.3: these ops
    /// pass their input's quantization through unchanged.
    pub fn is_data_movement(&self) -> bool {
        matches!(
            self,
            OpKind::Reshape(_)
                | OpKind::Transpose(_)
                | OpKind::Pad(_)
                | OpKind::StridedSlice(_)
                | OpKind::BatchFlatten
                | OpKind::Dropout
        )
    }

    /// Approximate multiply-accumulate count for cost modelling, given the
    /// argument and result element counts. Conv/dense-style ops dominate;
    /// everything else is charged per output element.
    pub fn is_compute_heavy(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d(_) | OpKind::Dense | OpKind::QnnConv2d(_) | OpKind::QnnDense(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_stable() {
        assert_eq!(OpKind::Conv2d(Conv2dAttrs::default()).name(), "nn.conv2d");
        assert_eq!(OpKind::Relu.name(), "nn.relu");
        assert_eq!(
            OpKind::QnnConv2d(QnnConv2dAttrs {
                conv: Conv2dAttrs::default(),
                input_q: tvmnp_tensor::QuantParams::identity(),
                weight_q: tvmnp_tensor::QuantParams::identity(),
                output_q: tvmnp_tensor::QuantParams::identity(),
                out_dtype: tvmnp_tensor::DType::U8,
            })
            .name(),
            "qnn.conv2d"
        );
    }

    #[test]
    fn qnn_detection() {
        assert!(OpKind::QnnAdd(QnnAddAttrs {
            lhs_q: tvmnp_tensor::QuantParams::identity(),
            rhs_q: tvmnp_tensor::QuantParams::identity(),
            output_q: tvmnp_tensor::QuantParams::identity(),
            out_dtype: tvmnp_tensor::DType::U8,
        })
        .is_qnn());
        assert!(!OpKind::Add.is_qnn());
    }

    #[test]
    fn data_movement_class() {
        assert!(OpKind::Reshape(ReshapeAttrs { new_shape: vec![1] }).is_data_movement());
        assert!(OpKind::Dropout.is_data_movement());
        assert!(!OpKind::Relu.is_data_movement());
    }
}
