//! Post-order DAG traversal and rewriting — the `ExprVisitor` /
//! `ExprMutator` machinery of paper Listing 1.

use crate::expr::{mk, Call, Expr, ExprKind};
use std::collections::HashMap;

/// Visit every node of the DAG exactly once, children before parents
/// (post-order DFS, memoized on node identity).
pub fn post_order(root: &Expr, mut f: impl FnMut(&Expr)) {
    let mut visited: HashMap<usize, ()> = HashMap::new();
    // Explicit stack to survive deep graphs (NASNet et al.).
    enum Frame {
        Enter(Expr),
        Exit(Expr),
    }
    let mut stack = vec![Frame::Enter(root.clone())];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(e) => {
                if visited.contains_key(&e.id) {
                    continue;
                }
                visited.insert(e.id, ());
                stack.push(Frame::Exit(e.clone()));
                for a in e.args() {
                    stack.push(Frame::Enter(a));
                }
            }
            Frame::Exit(e) => f(&e),
        }
    }
}

/// All nodes in topological (post-) order.
pub fn topo_order(root: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    post_order(root, |e| out.push(e.clone()));
    out
}

/// Rewrite the DAG bottom-up. `f` receives a node whose children are
/// already rewritten and may return a replacement; returning `None` keeps
/// the (child-rewritten) node. Sharing is preserved: a node reached twice
/// is rewritten once.
/// Boxed rewrite rule: maps a node to an optional replacement.
type RewriteFn<'a> = Box<dyn FnMut(&Expr) -> Option<Expr> + 'a>;

pub struct ExprMutator<'a> {
    memo: HashMap<usize, Expr>,
    rewrite: RewriteFn<'a>,
}

impl<'a> ExprMutator<'a> {
    /// New mutator with the given rewrite rule.
    pub fn new(rewrite: impl FnMut(&Expr) -> Option<Expr> + 'a) -> Self {
        ExprMutator {
            memo: HashMap::new(),
            rewrite: Box::new(rewrite),
        }
    }

    /// Rewrite the graph rooted at `root` (iterative, safe on deep graphs).
    pub fn mutate(&mut self, root: &Expr) -> Expr {
        for e in topo_order(root) {
            if self.memo.contains_key(&e.id) {
                continue;
            }
            let rebuilt = match &e.kind {
                ExprKind::Var(_) | ExprKind::Constant(_) => e.clone(),
                ExprKind::Call(c) => {
                    let new_args: Vec<Expr> =
                        c.args.iter().map(|a| self.memo[&a.id].clone()).collect();
                    if new_args.iter().zip(&c.args).all(|(n, o)| n.id == o.id) {
                        e.clone()
                    } else {
                        mk(ExprKind::Call(Call {
                            target: c.target.clone(),
                            args: new_args,
                        }))
                    }
                }
                ExprKind::Tuple(fs) => {
                    let new_fs: Vec<Expr> = fs.iter().map(|a| self.memo[&a.id].clone()).collect();
                    if new_fs.iter().zip(fs).all(|(n, o)| n.id == o.id) {
                        e.clone()
                    } else {
                        mk(ExprKind::Tuple(new_fs))
                    }
                }
                ExprKind::TupleGetItem(t, i) => {
                    let nt = self.memo[&t.id].clone();
                    if nt.id == t.id {
                        e.clone()
                    } else {
                        mk(ExprKind::TupleGetItem(nt, *i))
                    }
                }
            };
            let result = (self.rewrite)(&rebuilt).unwrap_or(rebuilt);
            self.memo.insert(e.id, result);
        }
        self.memo[&root.id].clone()
    }
}

/// Count of distinct nodes in a DAG.
pub fn node_count(root: &Expr) -> usize {
    topo_order(root).len()
}

/// Map from node id to the ids of nodes that consume it (reverse edges).
pub fn consumers(root: &Expr) -> HashMap<usize, Vec<usize>> {
    let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
    post_order(root, |e| {
        for a in e.args() {
            map.entry(a.id).or_default().push(e.id);
        }
    });
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{call, var};
    use crate::op::OpKind;
    use crate::ty::TensorType;
    use tvmnp_tensor::DType;

    fn tt() -> TensorType {
        TensorType::new([1, 4], DType::F32)
    }

    #[test]
    fn post_order_children_first() {
        let x = var("x", tt());
        let r = call(OpKind::Relu, vec![x.clone()]);
        let s = call(OpKind::Sigmoid, vec![r.clone()]);
        let order: Vec<usize> = topo_order(&s).iter().map(|e| e.id).collect();
        assert_eq!(order, vec![x.id, r.id, s.id]);
    }

    #[test]
    fn shared_node_visited_once() {
        let x = var("x", tt());
        let r = call(OpKind::Relu, vec![x.clone()]);
        let a = call(OpKind::Add, vec![r.clone(), r.clone()]);
        assert_eq!(node_count(&a), 3);
    }

    #[test]
    fn mutator_preserves_sharing() {
        let x = var("x", tt());
        let r = call(OpKind::Relu, vec![x.clone()]);
        let a = call(OpKind::Add, vec![r.clone(), r.clone()]);
        // Replace relu with tanh.
        let mut m = ExprMutator::new(|e| {
            if matches!(e.op(), Some(OpKind::Relu)) {
                Some(call(OpKind::Tanh, e.args()))
            } else {
                None
            }
        });
        let out = m.mutate(&a);
        let args = out.args();
        assert_eq!(args[0].id, args[1].id, "rewritten shared node stays shared");
        assert!(matches!(args[0].op(), Some(OpKind::Tanh)));
    }

    #[test]
    fn mutator_identity_keeps_ids() {
        let x = var("x", tt());
        let r = call(OpKind::Relu, vec![x]);
        let mut m = ExprMutator::new(|_| None);
        let out = m.mutate(&r);
        assert_eq!(out.id, r.id);
    }

    #[test]
    fn consumer_map() {
        let x = var("x", tt());
        let r = call(OpKind::Relu, vec![x.clone()]);
        let s = call(OpKind::Sigmoid, vec![x.clone()]);
        let a = call(OpKind::Add, vec![r.clone(), s.clone()]);
        let c = consumers(&a);
        let mut xs = c[&x.id].clone();
        xs.sort_unstable();
        let mut expect = vec![r.id, s.id];
        expect.sort_unstable();
        assert_eq!(xs, expect);
    }

    #[test]
    fn deep_graph_no_stack_overflow() {
        let mut e = var("x", tt());
        for _ in 0..50_000 {
            e = call(OpKind::Relu, vec![e]);
        }
        assert_eq!(node_count(&e), 50_001);
    }
}
