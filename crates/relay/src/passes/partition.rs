//! The BYOC graph partitioner (paper §3.1, Fig. 2).
//!
//! Given a [`CompilerSupport`] oracle describing which operators an
//! external compiler (NeuroPilot) can take, the pass performs the three
//! classic BYOC steps in one sweep:
//!
//! 1. **annotate** — mark each primitive call supported/unsupported;
//! 2. **merge regions** — grow maximal supported regions without creating
//!    cycles through unsupported nodes (the correctness hazard TVM's
//!    `MergeCompilerRegions` guards against);
//! 3. **partition** — lift each region into a module-level function with
//!    `Compiler=<name>` and `global_symbol` attributes, replacing it in
//!    `main` by a call to that global.
//!
//! The number of lifted functions is the paper's "number of subgraphs":
//! models whose op mix interleaves supported and unsupported operators
//! (DeePixBiS) shatter into many regions and pay per-subgraph dispatch
//! overhead, which is exactly the Fig. 4 anti-spoofing observation.

use crate::expr::{
    call_global, mk, tuple, tuple_get, var, Call, CallTarget, Expr, ExprKind, Function, Module,
};
use crate::infer::{infer_types, TypeMap};
use crate::op::OpKind;
use crate::ty::Type;
use crate::visit::{consumers, topo_order};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Oracle describing an external compiler's operator coverage.
pub trait CompilerSupport {
    /// External compiler name (becomes the `Compiler` attribute and the
    /// global-symbol prefix).
    fn name(&self) -> &str;

    /// Whether the op (with these argument types) can be offloaded.
    fn supported(&self, op: &OpKind, arg_types: &[&Type]) -> bool;
}

/// Partitioning failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// The module didn't type check before partitioning.
    Type(crate::infer::TypeError),
    /// The partitioned module failed re-inference (internal invariant).
    Internal(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Type(e) => write!(f, "partition: {e}"),
            PartitionError::Internal(m) => write!(f, "partition internal error: {m}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Summary of what the partitioner did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// Number of external functions created.
    pub num_subgraphs: usize,
    /// Primitive calls offloaded to the external compiler.
    pub offloaded_calls: usize,
    /// Primitive calls left to the host (TVM) side.
    pub host_calls: usize,
}

impl PartitionReport {
    /// Fraction of calls offloaded, in `[0, 1]`.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.offloaded_calls + self.host_calls;
        if total == 0 {
            0.0
        } else {
            self.offloaded_calls as f64 / total as f64
        }
    }
}

/// Simple union-find over region ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn make(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
        ra
    }
}

/// Partition `module`'s `main` for the external compiler described by
/// `support`. Returns the transformed module and a report.
pub fn partition_graph(
    module: &Module,
    support: &dyn CompilerSupport,
) -> Result<(Module, PartitionReport), PartitionError> {
    let _span = tvmnp_telemetry::span!("relay.pass", "pass" => "partition_graph");
    let types = infer_types(module).map_err(PartitionError::Type)?;
    let main = module.main();
    let order = topo_order(&main.body);

    // ---- annotate + merge regions ------------------------------------
    let mut uf = UnionFind::new();
    // node id -> region id (un-normalized; use uf.find)
    let mut region_of: HashMap<usize, usize> = HashMap::new();
    // node id -> set of region ids (stale roots ok) that this node's
    // ancestry depends on through at least one node outside the region.
    let mut ext_deps: HashMap<usize, HashSet<usize>> = HashMap::new();

    let mut offloaded_calls = 0usize;
    let mut host_calls = 0usize;

    for e in &order {
        let args = e.args();
        // Union of argument ext-deps.
        let mut my_ext: HashSet<usize> = HashSet::new();
        for a in &args {
            if let Some(s) = ext_deps.get(&a.id) {
                for &r in s {
                    my_ext.insert(uf.find(r));
                }
            }
        }

        let is_supported_call = match &e.kind {
            ExprKind::Call(Call {
                target: CallTarget::Op(op),
                args: cargs,
            }) => {
                let argt: Vec<&Type> = cargs.iter().map(|a| &types[&a.id]).collect();
                support.supported(op, &argt)
            }
            _ => false,
        };

        if is_supported_call {
            offloaded_calls += 1;
            // Candidate regions: regions of direct call-args.
            let mut candidates: Vec<usize> = Vec::new();
            for a in &args {
                if let Some(&r) = region_of.get(&a.id) {
                    let root = uf.find(r);
                    if !candidates.contains(&root) {
                        candidates.push(root);
                    }
                }
            }
            // Eligible: not reachable through an outside path.
            let eligible: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|r| !my_ext.contains(r))
                .collect();
            let region = if eligible.is_empty() {
                uf.make()
            } else {
                let mut r = eligible[0];
                for &other in &eligible[1..] {
                    r = uf.union(r, other);
                }
                r
            };
            region_of.insert(e.id, region);
            // Ineligible candidate regions flow into this node from outside
            // this region: record them as exited.
            for a in &args {
                if let Some(&ra) = region_of.get(&a.id) {
                    let root = uf.find(ra);
                    if root != uf.find(region) {
                        my_ext.insert(root);
                    }
                }
            }
        } else {
            if matches!(
                &e.kind,
                ExprKind::Call(Call {
                    target: CallTarget::Op(_),
                    ..
                })
            ) {
                host_calls += 1;
            }
            // Outside any region: every producing region is exited here.
            for a in &args {
                if let Some(&ra) = region_of.get(&a.id) {
                    my_ext.insert(uf.find(ra));
                }
            }
        }
        ext_deps.insert(e.id, my_ext);
    }

    // Normalize regions and order them by first appearance.
    let mut region_order: Vec<usize> = Vec::new();
    let mut region_nodes: HashMap<usize, Vec<Expr>> = HashMap::new();
    for e in &order {
        if let Some(&r) = region_of.get(&e.id) {
            let root = uf.find(r);
            if !region_nodes.contains_key(&root) {
                region_order.push(root);
            }
            region_nodes.entry(root).or_default().push(e.clone());
        }
    }

    // ---- partition -----------------------------------------------------
    let cons = consumers(&main.body);
    let in_region = |uf: &mut UnionFind, id: usize, r: usize| -> bool {
        region_of
            .get(&id)
            .map(|&x| uf.find(x) == r)
            .unwrap_or(false)
    };

    // Region outputs: nodes consumed outside their region (or the body root).
    let mut region_outputs: HashMap<usize, Vec<Expr>> = HashMap::new();
    for &r in &region_order {
        let nodes = &region_nodes[&r];
        let mut outs = Vec::new();
        for n in nodes {
            let consumed_outside = cons
                .get(&n.id)
                .map(|cs| cs.iter().any(|&cid| !in_region(&mut uf, cid, r)))
                .unwrap_or(false);
            if consumed_outside || n.id == main.body.id {
                outs.push(n.clone());
            }
        }
        region_outputs.insert(r, outs);
    }

    // Region root -> global name (assigned in first-appearance order).
    let mut region_name: HashMap<usize, String> = HashMap::new();
    for (i, &r) in region_order.iter().enumerate() {
        region_name.insert(r, format!("{}_{}", support.name(), i));
    }
    // Normalize region_of to roots once, so the rewriter needs no union-find.
    let region_root: HashMap<usize, usize> =
        region_of.iter().map(|(&id, &r)| (id, uf.find(r))).collect();
    let by_id: HashMap<usize, Expr> = order.iter().map(|e| (e.id, e.clone())).collect();

    /// Demand-driven rewriter. Host nodes rebuild with rewritten args; the
    /// first time any output of a region is demanded, the whole region is
    /// emitted as an external function and a `call_global` placed in main.
    struct Rewriter<'a> {
        by_id: &'a HashMap<usize, Expr>,
        region_root: &'a HashMap<usize, usize>,
        region_nodes: &'a HashMap<usize, Vec<Expr>>,
        region_outputs: &'a HashMap<usize, Vec<Expr>>,
        region_name: &'a HashMap<usize, String>,
        types: &'a TypeMap,
        support_name: &'a str,
        main_map: HashMap<usize, Expr>,
        new_functions: HashMap<String, Function>,
    }

    impl Rewriter<'_> {
        fn resolve(&mut self, id: usize) -> Result<Expr, PartitionError> {
            if let Some(done) = self.main_map.get(&id) {
                return Ok(done.clone());
            }
            if let Some(&r) = self.region_root.get(&id) {
                self.emit_region(r)?;
                return self.main_map.get(&id).cloned().ok_or_else(|| {
                    PartitionError::Internal(format!(
                        "node {id} demanded from region {r} but is not one of its outputs"
                    ))
                });
            }
            let e = self.by_id[&id].clone();
            let rebuilt = match &e.kind {
                ExprKind::Var(_) | ExprKind::Constant(_) => e.clone(),
                ExprKind::Call(c) => {
                    let new_args: Vec<Expr> = c
                        .args
                        .iter()
                        .map(|a| self.resolve(a.id))
                        .collect::<Result<_, _>>()?;
                    if new_args.iter().zip(&c.args).all(|(n, o)| n.id == o.id) {
                        e.clone()
                    } else {
                        mk(ExprKind::Call(Call {
                            target: c.target.clone(),
                            args: new_args,
                        }))
                    }
                }
                ExprKind::Tuple(fs) => {
                    let new_fs: Vec<Expr> = fs
                        .iter()
                        .map(|a| self.resolve(a.id))
                        .collect::<Result<_, _>>()?;
                    if new_fs.iter().zip(fs).all(|(n, o)| n.id == o.id) {
                        e.clone()
                    } else {
                        mk(ExprKind::Tuple(new_fs))
                    }
                }
                ExprKind::TupleGetItem(t, i) => {
                    let nt = self.resolve(t.id)?;
                    if nt.id == t.id {
                        e.clone()
                    } else {
                        mk(ExprKind::TupleGetItem(nt, *i))
                    }
                }
            };
            self.main_map.insert(id, rebuilt.clone());
            Ok(rebuilt)
        }

        fn emit_region(&mut self, r: usize) -> Result<(), PartitionError> {
            let name = self.region_name[&r].clone();
            if self.new_functions.contains_key(&name) {
                return Ok(());
            }
            // Reserve the slot to break emit cycles early with a clear error
            // (regions are acyclic by construction, so this never recurses
            // back into itself through resolve()).
            let nodes = self.region_nodes[&r].clone();
            let node_ids: HashSet<usize> = nodes.iter().map(|n| n.id).collect();
            let mut inner: HashMap<usize, Expr> = HashMap::new();
            let mut params: Vec<Expr> = Vec::new();
            let mut input_main_exprs: Vec<Expr> = Vec::new();
            let mut input_vars: HashMap<usize, Expr> = HashMap::new();

            for n in &nodes {
                let ExprKind::Call(c) = &n.kind else { continue };
                let mut new_args = Vec::with_capacity(c.args.len());
                for a in &c.args {
                    if node_ids.contains(&a.id) {
                        new_args.push(inner[&a.id].clone());
                    } else if let ExprKind::Constant(_) = &a.kind {
                        // Constants are captured into the external function —
                        // NeuroPilot receives the weights with the subgraph.
                        new_args.push(a.clone());
                    } else if let Some(pv) = input_vars.get(&a.id) {
                        new_args.push(pv.clone());
                    } else {
                        let ty = self.types[&a.id].as_tensor().clone();
                        let pv = var(format!("{}_in{}", name, params.len()), ty);
                        params.push(pv.clone());
                        input_vars.insert(a.id, pv.clone());
                        let main_expr = self.resolve(a.id)?;
                        input_main_exprs.push(main_expr);
                        new_args.push(pv);
                    }
                }
                inner.insert(
                    n.id,
                    mk(ExprKind::Call(Call {
                        target: c.target.clone(),
                        args: new_args,
                    })),
                );
            }

            let outs = &self.region_outputs[&r];
            let body = if outs.len() == 1 {
                inner[&outs[0].id].clone()
            } else {
                tuple(outs.iter().map(|o| inner[&o.id].clone()).collect())
            };
            let func = Function::new(params, body)
                .with_attr("Compiler", self.support_name)
                .with_attr("global_symbol", name.clone())
                .with_attr("Primitive", "1");
            self.new_functions.insert(name.clone(), func);

            let call_expr = call_global(name, input_main_exprs);
            if outs.len() == 1 {
                self.main_map.insert(outs[0].id, call_expr);
            } else {
                for (k, o) in outs.iter().enumerate() {
                    self.main_map.insert(o.id, tuple_get(call_expr.clone(), k));
                }
            }
            Ok(())
        }
    }

    let mut rewriter = Rewriter {
        by_id: &by_id,
        region_root: &region_root,
        region_nodes: &region_nodes,
        region_outputs: &region_outputs,
        region_name: &region_name,
        types: &types,
        support_name: support.name(),
        main_map: HashMap::new(),
        new_functions: HashMap::new(),
    };
    let new_body = rewriter.resolve(main.body.id)?;
    let new_functions = rewriter.new_functions;
    let new_main = Function {
        params: main.params.clone(),
        body: new_body,
        attrs: main.attrs.clone(),
    };

    let mut out = Module::default();
    for (name, f) in &module.functions {
        if name != "main" {
            out.functions.insert(name.clone(), f.clone());
        }
    }
    out.functions.insert("main".into(), new_main);
    for (name, f) in new_functions {
        out.functions.insert(name, f);
    }

    // Invariant: the partitioned module still type checks.
    infer_types(&out).map_err(|e| PartitionError::Internal(e.to_string()))?;

    let report = PartitionReport {
        num_subgraphs: region_order.len(),
        offloaded_calls,
        host_calls,
    };
    Ok((out, report))
}

/// A support oracle accepting everything — partitions the whole graph into
/// one external function when it is connected (useful in tests and for the
/// "NeuroPilot-only" permutations).
pub struct SupportAll(pub String);

impl CompilerSupport for SupportAll {
    fn name(&self) -> &str {
        &self.0
    }

    fn supported(&self, _op: &OpKind, _args: &[&Type]) -> bool {
        true
    }
}

/// A support oracle driven by a list of supported op names.
pub struct SupportByName {
    name: String,
    ops: HashSet<&'static str>,
}

impl SupportByName {
    /// New oracle for `name` supporting the given op-name list.
    pub fn new(name: impl Into<String>, ops: impl IntoIterator<Item = &'static str>) -> Self {
        SupportByName {
            name: name.into(),
            ops: ops.into_iter().collect(),
        }
    }
}

impl CompilerSupport for SupportByName {
    fn name(&self) -> &str {
        &self.name
    }

    fn supported(&self, op: &OpKind, _args: &[&Type]) -> bool {
        self.ops.contains(op.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::*;
    use crate::builder::*;
    use crate::expr::var;
    use crate::interp::run_module;
    use crate::ty::TensorType;
    use std::collections::HashMap as Map;
    use tvmnp_tensor::rng::TensorRng;
    use tvmnp_tensor::Tensor;

    fn simple_cnn() -> (Module, Tensor) {
        let mut rng = TensorRng::new(3);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w1 = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let c1 = relu(conv2d(x.clone(), w1, Conv2dAttrs::same(1)));
        let w2 = rng.uniform_f32([4, 4, 3, 3], -0.5, 0.5);
        let c2 = sigmoid(conv2d(c1, w2, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], c2));
        let input = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        (m, input)
    }

    fn run(m: &Module, input: &Tensor) -> Tensor {
        let mut ins = Map::new();
        ins.insert("x".to_string(), input.clone());
        run_module(m, &ins).unwrap()
    }

    #[test]
    fn support_all_single_region() {
        let (m, input) = simple_cnn();
        let (p, report) = partition_graph(&m, &SupportAll("neuropilot".into())).unwrap();
        assert_eq!(report.num_subgraphs, 1);
        assert_eq!(report.host_calls, 0);
        assert_eq!(p.num_subgraphs(), 1);
        // Semantics preserved bit-exactly.
        assert!(run(&m, &input).bit_eq(&run(&p, &input)));
    }

    #[test]
    fn unsupported_op_splits_regions() {
        let (m, input) = simple_cnn();
        // sigmoid unsupported: conv+relu+conv region, then host sigmoid.
        let support = SupportByName::new("neuropilot", ["nn.conv2d", "nn.relu"]);
        let (p, report) = partition_graph(&m, &support).unwrap();
        assert_eq!(report.num_subgraphs, 1);
        assert_eq!(report.host_calls, 1);
        assert_eq!(report.offloaded_calls, 3);
        assert!(run(&m, &input).bit_eq(&run(&p, &input)));
    }

    #[test]
    fn interleaved_support_creates_multiple_subgraphs() {
        let mut rng = TensorRng::new(7);
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let w = rng.uniform_f32([2, 2, 3, 3], -0.5, 0.5);
        // conv -> sigmoid(unsupported) -> conv -> sigmoid -> conv
        let mut e = conv2d(x.clone(), w.clone(), Conv2dAttrs::same(1));
        for _ in 0..2 {
            e = sigmoid(e);
            e = conv2d(e, w.clone(), Conv2dAttrs::same(1));
        }
        let m = Module::from_main(Function::new(vec![x], e));
        let support = SupportByName::new("neuropilot", ["nn.conv2d"]);
        let (p, report) = partition_graph(&m, &support).unwrap();
        assert_eq!(report.num_subgraphs, 3, "each conv is its own region");
        let input = rng.uniform_f32([1, 2, 4, 4], -1.0, 1.0);
        assert!(run(&m, &input).bit_eq(&run(&p, &input)));
    }

    #[test]
    fn diamond_through_unsupported_stays_acyclic() {
        // a = conv(x); b = sigmoid(a) [unsupported]; c = add(a, b) [supported]
        // Merging c into a's region would create region -> sigmoid -> region.
        let mut rng = TensorRng::new(9);
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let w = rng.uniform_f32([2, 2, 1, 1], -0.5, 0.5);
        let a = conv2d(x.clone(), w, Conv2dAttrs::default());
        let b = sigmoid(a.clone());
        let c = add(a.clone(), b);
        let m = Module::from_main(Function::new(vec![x], c));
        let support = SupportByName::new("neuropilot", ["nn.conv2d", "add"]);
        let (p, report) = partition_graph(&m, &support).unwrap();
        // conv region and add region must be distinct.
        assert_eq!(report.num_subgraphs, 2);
        let input = rng.uniform_f32([1, 2, 4, 4], -1.0, 1.0);
        assert!(run(&m, &input).bit_eq(&run(&p, &input)));
    }

    #[test]
    fn multi_output_region_uses_tuple() {
        // Region producing two values consumed by host ops.
        let mut rng = TensorRng::new(11);
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let w = rng.uniform_f32([2, 2, 1, 1], -0.5, 0.5);
        let a = conv2d(x.clone(), w.clone(), Conv2dAttrs::default());
        let b = relu(a.clone());
        // host sigmoid consumes a; host tanh consumes b.
        let s = sigmoid(a.clone());
        let t = crate::expr::call(OpKind::Tanh, vec![b]);
        let y = add(s, t);
        let m = Module::from_main(Function::new(vec![x], y));
        let support = SupportByName::new("neuropilot", ["nn.conv2d", "nn.relu"]);
        let (p, report) = partition_graph(&m, &support).unwrap();
        assert_eq!(report.num_subgraphs, 1);
        let input = rng.uniform_f32([1, 2, 4, 4], -1.0, 1.0);
        assert!(run(&m, &input).bit_eq(&run(&p, &input)));
        // Region function has a tuple body of two outputs.
        let ext = p.external_functions();
        let f = &p.functions[ext[0]];
        assert!(matches!(f.body.kind, ExprKind::Tuple(_)));
    }

    #[test]
    fn nothing_supported_is_identity_shape() {
        let (m, input) = simple_cnn();
        let support = SupportByName::new("neuropilot", []);
        let (p, report) = partition_graph(&m, &support).unwrap();
        assert_eq!(report.num_subgraphs, 0);
        assert_eq!(report.offloaded_calls, 0);
        assert!(run(&m, &input).bit_eq(&run(&p, &input)));
    }

    #[test]
    fn report_offload_fraction() {
        let r = PartitionReport {
            num_subgraphs: 2,
            offloaded_calls: 3,
            host_calls: 1,
        };
        assert!((r.offload_fraction() - 0.75).abs() < 1e-9);
    }
}
