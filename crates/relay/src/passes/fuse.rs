//! Operator-fusion analysis.
//!
//! TVM's `FuseOps` groups an *anchor* (complex-out-fusable) operator with
//! the injective/element-wise operators that follow it, then emits each
//! group as one primitive function so the runtime dispatches it as a single
//! kernel. In this reproduction the grouping is computed as an analysis and
//! consumed by the graph executor / cost model: every group costs one
//! kernel dispatch instead of one per node. That is exactly the observable
//! the paper leans on when it attributes the anti-spoofing model's slow
//! BYOC times to "the large number of subgraphs".

use crate::expr::{Expr, ExprKind};
use crate::op::OpKind;
use crate::visit::{consumers, topo_order};
use std::collections::HashMap;

/// One fused execution group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Node id of the group's anchor (first/dominant op).
    pub anchor: usize,
    /// All member node ids, in topological order (anchor first).
    pub members: Vec<usize>,
}

/// Whether an op may *absorb* following ops (conv/dense-style anchors).
fn is_anchor(op: &OpKind) -> bool {
    op.is_compute_heavy()
}

/// Whether an op may be fused *into* a preceding anchor's group.
fn is_fusable_follower(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::BiasAdd
            | OpKind::BatchNorm(_)
            | OpKind::Relu
            | OpKind::LeakyRelu(_)
            | OpKind::Clip(_)
            | OpKind::Sigmoid
            | OpKind::Tanh
            | OpKind::Add
            | OpKind::Multiply
            | OpKind::QnnRequantize(_)
    )
}

/// Compute fusion groups for the expression DAG rooted at `root`.
///
/// Rules (a simplification of TVM's dominator-tree fusion that preserves
/// its dispatch-count behaviour on the straight-line CNNs used here):
/// * a compute-heavy op opens a group;
/// * a fusable element-wise op joins its producer's group when it is that
///   producer's *only* consumer (no duplication of work across branches);
/// * every other call node forms its own singleton group.
pub fn fuse_analysis(root: &Expr) -> Vec<FusionGroup> {
    let _span = tvmnp_telemetry::span!("relay.pass", "pass" => "fuse_analysis");
    let order = topo_order(root);
    let cons = consumers(root);
    // node id -> group index
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<FusionGroup> = Vec::new();

    for e in &order {
        let ExprKind::Call(c) = &e.kind else { continue };
        let op = match &c.target {
            crate::expr::CallTarget::Op(op) => op,
            // Calls to globals (already-partitioned externals) dispatch once.
            crate::expr::CallTarget::Global(_) => {
                let gi = groups.len();
                groups.push(FusionGroup {
                    anchor: e.id,
                    members: vec![e.id],
                });
                group_of.insert(e.id, gi);
                continue;
            }
        };

        // Try to join the producer's group.
        let mut joined = None;
        if is_fusable_follower(op) {
            for a in &c.args {
                if let Some(&gi) = group_of.get(&a.id) {
                    let producer_consumers = cons.get(&a.id).map(|v| v.len()).unwrap_or(0);
                    let anchor_op = order
                        .iter()
                        .find(|n| n.id == groups[gi].anchor)
                        .and_then(|n| n.op().cloned());
                    let anchor_ok = anchor_op.map(|o| is_anchor(&o)).unwrap_or(false);
                    if producer_consumers == 1 && anchor_ok {
                        joined = Some(gi);
                        break;
                    }
                }
            }
        }
        match joined {
            Some(gi) => {
                groups[gi].members.push(e.id);
                group_of.insert(e.id, gi);
            }
            None => {
                let gi = groups.len();
                groups.push(FusionGroup {
                    anchor: e.id,
                    members: vec![e.id],
                });
                group_of.insert(e.id, gi);
            }
        }
    }
    groups
}

/// Number of runtime dispatches implied by the fusion analysis.
pub fn dispatch_count(root: &Expr) -> usize {
    fuse_analysis(root).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Conv2dAttrs;
    use crate::builder::{bias_add, conv2d, relu, sigmoid};
    use crate::expr::{call, var};
    use crate::ty::TensorType;
    use tvmnp_tensor::rng::TensorRng;

    #[test]
    fn conv_bias_relu_fuses_to_one_group() {
        let mut rng = TensorRng::new(1);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([8, 3, 3, 3], -1.0, 1.0);
        let b = rng.uniform_f32([8], -1.0, 1.0);
        let y = relu(bias_add(conv2d(x, w, Conv2dAttrs::same(1)), b));
        let groups = fuse_analysis(&y);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 3);
    }

    #[test]
    fn branch_blocks_fusion() {
        let mut rng = TensorRng::new(2);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([8, 3, 3, 3], -1.0, 1.0);
        let c = conv2d(x, w, Conv2dAttrs::same(1));
        // Two consumers of the conv: the relu cannot be folded in.
        let r1 = relu(c.clone());
        let r2 = sigmoid(c.clone());
        let y = call(OpKind::Add, vec![r1, r2]);
        let groups = fuse_analysis(&y);
        // conv alone, relu alone, sigmoid alone, add alone.
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn elementwise_without_anchor_is_singleton() {
        let x = var("x", TensorType::f32([4]));
        let y = relu(sigmoid(x));
        let groups = fuse_analysis(&y);
        assert_eq!(groups.len(), 2);
    }
}
