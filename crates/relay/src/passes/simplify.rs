//! Structural simplifications.

use crate::expr::{CallTarget, Expr, ExprKind, Function, Module};
use crate::op::OpKind;
use crate::visit::{post_order, ExprMutator};
use std::collections::HashSet;

/// Simplify every function:
/// * `TupleGetItem(Tuple(f0..fn), i)` → `fi`
/// * `nn.dropout(x)` → `x` (inference identity)
pub fn simplify(module: &Module) -> Module {
    let _span = tvmnp_telemetry::span!("relay.pass", "pass" => "simplify");
    let mut out = Module::default();
    for (name, f) in &module.functions {
        let mut m = ExprMutator::new(|e: &Expr| match &e.kind {
            ExprKind::TupleGetItem(t, i) => match &t.kind {
                ExprKind::Tuple(fs) => fs.get(*i).cloned(),
                _ => None,
            },
            ExprKind::Call(c) => match &c.target {
                CallTarget::Op(OpKind::Dropout) => Some(c.args[0].clone()),
                _ => None,
            },
            _ => None,
        });
        let body = m.mutate(&f.body);
        out.functions.insert(
            name.clone(),
            Function {
                params: f.params.clone(),
                body,
                attrs: f.attrs.clone(),
            },
        );
    }
    out
}

/// Drop module functions never referenced from `main` (directly or
/// transitively).
pub fn remove_unused_functions(module: &Module) -> Module {
    let mut live: HashSet<String> = HashSet::new();
    let mut stack = vec!["main".to_string()];
    while let Some(name) = stack.pop() {
        if !live.insert(name.clone()) {
            continue;
        }
        if let Some(f) = module.functions.get(&name) {
            post_order(&f.body, |e| {
                if let ExprKind::Call(c) = &e.kind {
                    if let CallTarget::Global(g) = &c.target {
                        stack.push(g.clone());
                    }
                }
            });
        }
    }
    let mut out = Module::default();
    for (name, f) in &module.functions {
        if live.contains(name) {
            out.functions.insert(name.clone(), f.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{call, call_global, tuple, tuple_get, var};
    use crate::ty::TensorType;
    use crate::visit::node_count;

    fn v(name: &str) -> Expr {
        var(name, TensorType::f32([2]))
    }

    #[test]
    fn projection_collapses() {
        let x = v("x");
        let t = tuple(vec![call(OpKind::Relu, vec![x.clone()]), x.clone()]);
        let g = tuple_get(t, 1);
        let m = Module::from_main(Function::new(vec![x.clone()], g));
        let s = simplify(&m);
        assert_eq!(s.main().body.id, x.id);
    }

    #[test]
    fn dropout_removed() {
        let x = v("x");
        let d = call(OpKind::Dropout, vec![x.clone()]);
        let r = call(OpKind::Relu, vec![d]);
        let m = Module::from_main(Function::new(vec![x], r));
        let s = simplify(&m);
        assert_eq!(node_count(&s.main().body), 2);
    }

    #[test]
    fn unused_functions_swept() {
        let x = v("x");
        let main = Function::new(vec![x.clone()], call_global("used", vec![x.clone()]));
        let mut m = Module::from_main(main);
        m.functions
            .insert("used".into(), Function::new(vec![v("p")], v("p")));
        m.functions
            .insert("dead".into(), Function::new(vec![v("q")], v("q")));
        let swept = remove_unused_functions(&m);
        assert!(swept.functions.contains_key("used"));
        assert!(!swept.functions.contains_key("dead"));
    }
}
