//! Graph-level passes over Relay modules.
//!
//! The pass set mirrors what the paper's flow touches on the TVM side:
//!
//! * [`fold_constants()`] — evaluate constant subgraphs at compile time;
//! * [`simplify()`] — structural clean-ups (tuple projection, dropout
//!   removal, unused-function sweep);
//! * [`fuse_analysis`] — operator-fusion *analysis*: groups an anchor op with its
//!   trailing element-wise ops. TVM materializes fused groups as primitive
//!   functions; here the grouping feeds the runtime's dispatch-overhead
//!   model, which is the observable effect the paper's Fig. 4 discussion
//!   (anti-spoofing's "large number of subgraphs") depends on;
//! * [`fold_batch_norm()`] — inference-time BN folding (TVM's
//!   `SimplifyInference`): the counterfactual for the paper's
//!   anti-spoofing fragmentation story;
//! * [`partition_graph`] — the BYOC annotate → merge-regions → partition
//!   pipeline producing `Compiler="neuropilot"` external functions.

pub mod fold_batch_norm;
pub mod fold_constants;
pub mod fuse;
pub mod partition;
pub mod quantize;
pub mod simplify;

pub use fold_batch_norm::{count_batch_norms, fold_batch_norm};
pub use fold_constants::fold_constants;
pub use fuse::{fuse_analysis, FusionGroup};
pub use partition::{
    partition_graph, CompilerSupport, PartitionError, PartitionReport, SupportAll, SupportByName,
};
pub use quantize::{calibrate, quantize_module, quantize_with_calibration, QuantizeError};
pub use simplify::{remove_unused_functions, simplify};
