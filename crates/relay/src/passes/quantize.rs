//! Post-training quantization (TVM's `relay.quantize`).
//!
//! The paper's quantized models arrive pre-quantized from TFLite; this
//! pass closes the loop for the *other* frontends: calibrate a float
//! module on sample inputs, then rewrite it into the QNN dialect — the
//! same operator-oriented representation §3.3 later converts to Neuron
//! IR. Scheme: uint8 activations with per-tensor affine parameters from
//! calibrated min/max, int8 symmetric per-tensor weights, int32 biases in
//! accumulator scale — the TFLite recipe.

use crate::attrs::*;
use crate::expr::{call, constant, var, CallTarget, Expr, ExprKind, Function, Module};
use crate::interp::{Interpreter, Value};
use crate::op::OpKind;
use crate::visit::topo_order;
use std::collections::HashMap;
use std::fmt;
use tvmnp_tensor::{DType, QuantParams, Tensor};

/// Quantization failure.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizeError {
    /// An op the quantizer does not map.
    Unsupported(String),
    /// Calibration produced no statistics for a node.
    MissingCalibration(String),
    /// Structural problem.
    Other(String),
}

impl fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantizeError::Unsupported(op) => write!(f, "quantize: unsupported op '{op}'"),
            QuantizeError::MissingCalibration(n) => {
                write!(f, "quantize: no calibration statistics for {n}")
            }
            QuantizeError::Other(m) => write!(f, "quantize: {m}"),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Per-node calibrated value ranges.
pub type Calibration = HashMap<usize, (f32, f32)>;

/// Run the module on each calibration input and record per-node min/max.
pub fn calibrate(
    module: &Module,
    calibration_inputs: &[HashMap<String, Tensor>],
) -> Result<Calibration, QuantizeError> {
    let interp = Interpreter::new(module);
    let mut ranges: Calibration = HashMap::new();
    for inputs in calibration_inputs {
        let (_, trace) = interp
            .run_with_trace(inputs)
            .map_err(|e| QuantizeError::Other(e.to_string()))?;
        for (id, v) in trace {
            let Value::Tensor(t) = v else { continue };
            if !t.dtype().is_float() {
                continue;
            }
            let data = t.as_f32().expect("float tensor");
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &x in data {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let e = ranges.entry(id).or_insert((lo, hi));
            e.0 = e.0.min(lo);
            e.1 = e.1.max(hi);
        }
    }
    Ok(ranges)
}

struct Quantizer<'a> {
    calibration: &'a Calibration,
    /// Original node id → (quantized expr, its activation params).
    map: HashMap<usize, (Expr, QuantParams)>,
}

impl Quantizer<'_> {
    fn act_params(&self, e: &Expr) -> Result<QuantParams, QuantizeError> {
        let (lo, hi) = self
            .calibration
            .get(&e.id)
            .copied()
            .ok_or_else(|| QuantizeError::MissingCalibration(e.label()))?;
        Ok(QuantParams::from_range(lo, hi, DType::U8))
    }

    fn quantized(&self, e: &Expr) -> Result<(Expr, QuantParams), QuantizeError> {
        self.map
            .get(&e.id)
            .cloned()
            .ok_or_else(|| QuantizeError::Other(format!("{} not yet quantized", e.label())))
    }
}

/// Quantize weights symmetrically to i8.
fn quantize_weight(w: &Tensor) -> Result<(Tensor, QuantParams), QuantizeError> {
    let data = w
        .as_f32()
        .map_err(|e| QuantizeError::Other(e.to_string()))?;
    let absmax = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let qp = QuantParams::symmetric_from_absmax(absmax, DType::I8);
    let q = w
        .quantize(qp, DType::I8)
        .map_err(|e| QuantizeError::Other(e.to_string()))?;
    Ok((q, qp))
}

/// Quantize a bias to i32 in accumulator scale `s_in * s_w`.
fn quantize_bias(b: &Tensor, acc_scale: f32) -> Result<Tensor, QuantizeError> {
    let data = b
        .as_f32()
        .map_err(|e| QuantizeError::Other(e.to_string()))?;
    let q: Vec<i32> = data
        .iter()
        .map(|&v| (v / acc_scale).round() as i32)
        .collect();
    Tensor::from_i32([data.len()], q, None).map_err(|e| QuantizeError::Other(e.to_string()))
}

fn const_tensor(e: &Expr) -> Result<Tensor, QuantizeError> {
    match &e.kind {
        ExprKind::Constant(c) => Ok(c.value.clone()),
        other => Err(QuantizeError::Other(format!(
            "expected constant, found {other:?}"
        ))),
    }
}

/// Quantize `module` into the QNN dialect using calibrated statistics.
///
/// The result takes the *same float inputs* (a `qnn.quantize` is inserted
/// at each input) and produces the same float outputs (a `qnn.dequantize`
/// is appended), so it is a drop-in replacement for the float module.
pub fn quantize_module(
    module: &Module,
    calibration: &Calibration,
) -> Result<Module, QuantizeError> {
    let main = module.main();
    let mut q = Quantizer {
        calibration,
        map: HashMap::new(),
    };
    let mut new_params = Vec::new();

    for p in &main.params {
        let ExprKind::Var(v) = &p.kind else {
            return Err(QuantizeError::Other("param is not a var".into()));
        };
        let nv = var(v.name.clone(), v.ty.clone());
        new_params.push(nv.clone());
        let qp = q.act_params(p)?;
        let quantized = call(
            OpKind::QnnQuantize(QuantizeAttrs {
                out: qp,
                out_dtype: DType::U8,
            }),
            vec![nv],
        );
        q.map.insert(p.id, (quantized, qp));
    }

    let mut float_tail: Option<Expr> = None; // set when the output is already float

    for e in topo_order(&main.body) {
        if q.map.contains_key(&e.id) {
            continue;
        }
        let ExprKind::Call(c) = &e.kind else {
            match &e.kind {
                ExprKind::Constant(_) => continue, // handled at use sites
                other => {
                    return Err(QuantizeError::Unsupported(format!("{other:?}")));
                }
            }
        };
        let CallTarget::Op(op) = &c.target else {
            return Err(QuantizeError::Unsupported("global call".into()));
        };

        let out_qp = q.act_params(&e);
        let rewritten: (Expr, QuantParams) = match op {
            OpKind::Conv2d(attrs) => {
                let (x, x_qp) = q.quantized(&c.args[0])?;
                let (wq, w_qp) = quantize_weight(&const_tensor(&c.args[1])?)?;
                let out_qp = out_qp?;
                let mut args = vec![x, constant(wq)];
                if c.args.len() > 2 {
                    let acc = x_qp.scale * w_qp.scale;
                    args.push(constant(quantize_bias(&const_tensor(&c.args[2])?, acc)?));
                }
                let qc = call(
                    OpKind::QnnConv2d(QnnConv2dAttrs {
                        conv: *attrs,
                        input_q: x_qp,
                        weight_q: w_qp,
                        output_q: out_qp,
                        out_dtype: DType::U8,
                    }),
                    args,
                );
                (qc, out_qp)
            }
            OpKind::Dense => {
                let (x, x_qp) = q.quantized(&c.args[0])?;
                let (wq, w_qp) = quantize_weight(&const_tensor(&c.args[1])?)?;
                let out_qp = out_qp?;
                let mut args = vec![x, constant(wq)];
                if c.args.len() > 2 {
                    let acc = x_qp.scale * w_qp.scale;
                    args.push(constant(quantize_bias(&const_tensor(&c.args[2])?, acc)?));
                }
                let qd = call(
                    OpKind::QnnDense(QnnDenseAttrs {
                        input_q: x_qp,
                        weight_q: w_qp,
                        output_q: out_qp,
                        out_dtype: DType::U8,
                    }),
                    args,
                );
                (qd, out_qp)
            }
            OpKind::BiasAdd => {
                // bias_add over u8: requantize-free — fold the bias as a
                // qnn.add with a quantized constant broadcast per channel.
                let (x, x_qp) = q.quantized(&c.args[0])?;
                let b = const_tensor(&c.args[1])?;
                let out_qp = out_qp?;
                let c_len = b.num_elements();
                let b_qp = QuantParams::from_range(
                    b.as_f32()
                        .map_err(|e| QuantizeError::Other(e.to_string()))?
                        .iter()
                        .fold(f32::INFINITY, |m, &v| m.min(v)),
                    b.as_f32()
                        .unwrap()
                        .iter()
                        .fold(f32::NEG_INFINITY, |m, &v| m.max(v)),
                    DType::U8,
                );
                let bq = b
                    .reshaped([1, c_len, 1, 1])
                    .and_then(|t| t.quantize(b_qp, DType::U8))
                    .map_err(|e| QuantizeError::Other(e.to_string()))?;
                let qa = call(
                    OpKind::QnnAdd(QnnAddAttrs {
                        lhs_q: x_qp,
                        rhs_q: b_qp,
                        output_q: out_qp,
                        out_dtype: DType::U8,
                    }),
                    vec![x, constant(bq)],
                );
                (qa, out_qp)
            }
            OpKind::Add => {
                let (a, a_qp) = q.quantized(&c.args[0])?;
                let (b, b_qp) = q.quantized(&c.args[1])?;
                let out_qp = out_qp?;
                let qa = call(
                    OpKind::QnnAdd(QnnAddAttrs {
                        lhs_q: a_qp,
                        rhs_q: b_qp,
                        output_q: out_qp,
                        out_dtype: DType::U8,
                    }),
                    vec![a, b],
                );
                (qa, out_qp)
            }
            OpKind::Concatenate(attrs) => {
                let out_qp = out_qp?;
                let mut parts = Vec::new();
                let mut input_qs = Vec::new();
                for a in &c.args {
                    let (pe, pq) = q.quantized(a)?;
                    // Align every input to the output scale first (our
                    // qnn.concatenate expects pre-aligned inputs).
                    let aligned = if pq == out_qp {
                        pe
                    } else {
                        call(
                            OpKind::QnnRequantize(RequantizeAttrs {
                                input: pq,
                                output: out_qp,
                                out_dtype: DType::U8,
                            }),
                            vec![pe],
                        )
                    };
                    parts.push(aligned);
                    input_qs.push(out_qp);
                }
                let qc = call(
                    OpKind::QnnConcatenate(QnnConcatAttrs {
                        axis: attrs.axis,
                        input_qs,
                        output_q: out_qp,
                    }),
                    parts,
                );
                (qc, out_qp)
            }
            // Quantization-transparent ops: same opcode over u8.
            OpKind::Relu
            | OpKind::Clip(_)
            | OpKind::MaxPool2d(_)
            | OpKind::AvgPool2d(_)
            | OpKind::GlobalAvgPool2d
            | OpKind::BatchFlatten
            | OpKind::Reshape(_)
            | OpKind::Transpose(_)
            | OpKind::Dropout => {
                let (x, x_qp) = q.quantized(&c.args[0])?;
                (call(op.clone(), vec![x]), x_qp)
            }
            // Heads that must stay float: dequantize, run float.
            OpKind::Softmax | OpKind::Sigmoid | OpKind::LogSoftmax => {
                let (x, x_qp) = q.quantized(&c.args[0])?;
                let deq = call(
                    OpKind::QnnDequantize(DequantizeAttrs { input: x_qp }),
                    vec![x],
                );
                let f = call(op.clone(), vec![deq]);
                float_tail = Some(f.clone());
                // Record with identity params; only valid as the output.
                (f, QuantParams::identity())
            }
            other => return Err(QuantizeError::Unsupported(other.name().to_string())),
        };
        q.map.insert(e.id, rewritten);
    }

    let (body_q, body_qp) = q.quantized(&main.body)?;
    let body = if float_tail.as_ref().map(|f| f.id) == Some(body_q.id) {
        body_q
    } else {
        // Quantized output: dequantize for drop-in float compatibility.
        call(
            OpKind::QnnDequantize(DequantizeAttrs { input: body_qp }),
            vec![body_q],
        )
    };
    let module = Module::from_main(Function::new(new_params, body));
    crate::infer::infer_types(&module).map_err(|e| QuantizeError::Other(e.to_string()))?;
    Ok(module)
}

/// Calibrate and quantize in one call.
pub fn quantize_with_calibration(
    module: &Module,
    calibration_inputs: &[HashMap<String, Tensor>],
) -> Result<Module, QuantizeError> {
    let _span = tvmnp_telemetry::span!("relay.pass", "pass" => "quantize_with_calibration");
    let cal = calibrate(module, calibration_inputs)?;
    quantize_module(module, &cal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::interp::run_module;
    use crate::ty::TensorType;
    use tvmnp_tensor::rng::TensorRng;

    fn small_classifier(seed: u64) -> Module {
        let mut rng = TensorRng::new(seed);
        let x = var("x", TensorType::f32([1, 3, 16, 16]));
        let w1 = rng.uniform_f32([8, 3, 3, 3], -0.4, 0.4);
        let b1 = rng.uniform_f32([8], -0.1, 0.1);
        let c1 = builder::relu(builder::conv2d_bias(
            x.clone(),
            w1,
            b1,
            Conv2dAttrs::same(1),
        ));
        let p = builder::max_pool2d(c1, Pool2dAttrs::square(2));
        let f = builder::batch_flatten(p);
        let w2 = rng.uniform_f32([5, 8 * 8 * 8], -0.2, 0.2);
        let d = builder::dense(f, w2);
        let s = builder::softmax(d);
        Module::from_main(Function::new(vec![x], s))
    }

    fn cal_inputs(n: usize, seed: u64) -> Vec<HashMap<String, Tensor>> {
        (0..n)
            .map(|i| {
                let mut rng = TensorRng::new(seed + i as u64);
                let mut m = HashMap::new();
                m.insert("x".to_string(), rng.uniform_f32([1, 3, 16, 16], -1.0, 1.0));
                m
            })
            .collect()
    }

    #[test]
    fn quantized_model_tracks_float_model() {
        let m = small_classifier(301);
        let cal = cal_inputs(4, 400);
        let qm = quantize_with_calibration(&m, &cal).unwrap();
        // Evaluate on fresh inputs.
        for seed in [500u64, 501, 502] {
            let mut rng = TensorRng::new(seed);
            let mut inputs = HashMap::new();
            inputs.insert("x".to_string(), rng.uniform_f32([1, 3, 16, 16], -1.0, 1.0));
            let float_out = run_module(&m, &inputs).unwrap();
            let quant_out = run_module(&qm, &inputs).unwrap();
            assert_eq!(quant_out.dtype(), DType::F32, "drop-in float output");
            assert_eq!(
                float_out.argmax(),
                quant_out.argmax(),
                "top-1 must survive quantization (seed {seed})"
            );
            // Naive min/max calibration on an untrained network keeps the
            // ranking but lets probabilities drift by a couple of 8-bit
            // steps through the sharpening softmax.
            assert!(
                float_out.approx_eq(&quant_out, 0.25),
                "probabilities drift too far: {}",
                float_out.max_abs_diff(&quant_out)
            );
        }
    }

    #[test]
    fn quantized_graph_uses_qnn_dialect() {
        let m = small_classifier(302);
        let qm = quantize_with_calibration(&m, &cal_inputs(2, 410)).unwrap();
        let names: Vec<&str> = topo_order(&qm.main().body)
            .iter()
            .filter_map(|e| e.op().map(|o| o.name()))
            .collect();
        assert!(names.contains(&"qnn.quantize"));
        assert!(names.contains(&"qnn.conv2d"));
        assert!(names.contains(&"qnn.dense"));
        assert!(names.contains(&"qnn.dequantize"));
        assert!(!names.contains(&"nn.conv2d"), "no float conv survives");
    }

    #[test]
    fn residual_add_quantizes() {
        let mut rng = TensorRng::new(303);
        let x = var("x", TensorType::f32([1, 4, 8, 8]));
        let w = rng.uniform_f32([4, 4, 3, 3], -0.3, 0.3);
        let c = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let r = builder::add(c, x.clone());
        let m = Module::from_main(Function::new(vec![x], r));
        let mut cal = Vec::new();
        for i in 0..3 {
            let mut rng = TensorRng::new(420 + i);
            let mut ins = HashMap::new();
            ins.insert("x".to_string(), rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0));
            cal.push(ins);
        }
        let qm = quantize_with_calibration(&m, &cal).unwrap();
        let mut ins = HashMap::new();
        let mut rng = TensorRng::new(430);
        ins.insert("x".to_string(), rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0));
        let a = run_module(&m, &ins).unwrap();
        let b = run_module(&qm, &ins).unwrap();
        // Naive min/max calibration on random weights accumulates a few
        // int8 steps of error through the conv taps; the bound is
        // seed-stream dependent, so keep it loose enough for any RNG.
        assert!(a.approx_eq(&b, 0.2), "diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn unsupported_op_reported() {
        let mut rng = TensorRng::new(304);
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let bn = builder::batch_norm(
            x.clone(),
            rng.uniform_f32([2], 0.9, 1.1),
            rng.uniform_f32([2], -0.1, 0.1),
            rng.uniform_f32([2], -0.1, 0.1),
            rng.uniform_f32([2], 0.9, 1.1),
            1e-5,
        );
        let m = Module::from_main(Function::new(vec![x], bn));
        let mut ins = HashMap::new();
        ins.insert("x".to_string(), Tensor::zeros_f32([1, 2, 4, 4]));
        match quantize_with_calibration(&m, &[ins]) {
            Err(QuantizeError::Unsupported(op)) => assert_eq!(op, "nn.batch_norm"),
            other => panic!("expected Unsupported, got ok={}", other.is_ok()),
        }
    }
}
