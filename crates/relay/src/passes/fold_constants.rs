//! Constant folding: any primitive call whose arguments are all constants
//! is evaluated at compile time with the reference interpreter.

use crate::expr::{constant, CallTarget, Expr, ExprKind, Function, Module};
use crate::interp::{eval_op, Value};
use crate::visit::ExprMutator;

/// Fold constant subgraphs in every function of the module.
pub fn fold_constants(module: &Module) -> Module {
    let _span = tvmnp_telemetry::span!("relay.pass", "pass" => "fold_constants");
    let mut out = Module::default();
    for (name, f) in &module.functions {
        out.functions.insert(name.clone(), fold_function(f));
    }
    out
}

fn fold_function(f: &Function) -> Function {
    let mut m = ExprMutator::new(|e: &Expr| {
        let ExprKind::Call(c) = &e.kind else {
            return None;
        };
        let CallTarget::Op(op) = &c.target else {
            return None;
        };
        // Dropout folds to its argument even when not constant.
        let all_const = c
            .args
            .iter()
            .all(|a| matches!(a.kind, ExprKind::Constant(_)));
        if !all_const {
            return None;
        }
        let argv: Vec<Value> = c
            .args
            .iter()
            .map(|a| match &a.kind {
                ExprKind::Constant(k) => Value::Tensor(k.value.clone()),
                _ => unreachable!(),
            })
            .collect();
        match eval_op(op, &argv) {
            Ok(Value::Tensor(t)) => Some(constant(t)),
            _ => None,
        }
    });
    let body = m.mutate(&f.body);
    Function {
        params: f.params.clone(),
        body,
        attrs: f.attrs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{call, var};
    use crate::op::OpKind;
    use crate::ty::TensorType;
    use crate::visit::node_count;
    use tvmnp_tensor::Tensor;

    #[test]
    fn folds_constant_add() {
        let a = constant(Tensor::from_f32([2], vec![1.0, 2.0]).unwrap());
        let b = constant(Tensor::from_f32([2], vec![3.0, 4.0]).unwrap());
        let sum = call(OpKind::Add, vec![a, b]);
        let x = var("x", TensorType::f32([2]));
        let y = call(OpKind::Add, vec![x.clone(), sum]);
        let m = Module::from_main(Function::new(vec![x], y));
        let folded = fold_constants(&m);
        // add(const, const) collapsed: x, const, add = 3 nodes.
        assert_eq!(node_count(&folded.main().body), 3);
        let body = &folded.main().body;
        let args = body.args();
        match &args[1].kind {
            ExprKind::Constant(c) => assert_eq!(c.value.as_f32().unwrap(), &[4.0, 6.0]),
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn leaves_dynamic_graph_alone() {
        let x = var("x", TensorType::f32([2]));
        let y = call(OpKind::Relu, vec![x.clone()]);
        let m = Module::from_main(Function::new(vec![x], y.clone()));
        let folded = fold_constants(&m);
        assert_eq!(folded.main().body.id, y.id);
    }

    #[test]
    fn folds_transitively() {
        let a = constant(Tensor::from_f32([1], vec![2.0]).unwrap());
        let n1 = call(OpKind::Negative, vec![a]);
        let n2 = call(OpKind::Negative, vec![n1]);
        let x = var("x", TensorType::f32([1]));
        let y = call(OpKind::Add, vec![x.clone(), n2]);
        let m = Module::from_main(Function::new(vec![x], y));
        let folded = fold_constants(&m);
        assert_eq!(node_count(&folded.main().body), 3);
    }
}
