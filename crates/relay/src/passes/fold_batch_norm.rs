//! Batch-norm folding (TVM's `SimplifyInference` + `FoldScaleAxis`).
//!
//! At inference, `batch_norm(conv(x, W), γ, β, μ, σ²)` is an affine map per
//! output channel and folds into the convolution:
//!
//! ```text
//! s_c  = γ_c / sqrt(σ²_c + ε)
//! W'_c = W_c * s_c
//! b'_c = β_c - μ_c * s_c            (+ s_c * b_c if the conv had a bias)
//! ```
//!
//! The paper's anti-spoofing model fragments into many BYOC subgraphs
//! *because* its traced PyTorch graph keeps `nn.batch_norm`, which
//! NeuroPilot cannot ingest. This pass is the counterfactual: folding
//! first makes the whole model NeuroPilot-compilable — the ablation the
//! `ablation` bench quantifies.
//!
//! Folding applies when the batch norm directly follows `nn.conv2d` (or a
//! `nn.conv2d`+`nn.bias_add` pair) whose result has no other consumer;
//! remaining batch norms (e.g. BN on an input or after a concat) are
//! lowered to an explicit per-channel `multiply` + `add` so no
//! `nn.batch_norm` survives the pass.

use crate::expr::{constant, Call, CallTarget, Expr, ExprKind, Function, Module};
use crate::interp::{eval_op, Value};
use crate::op::OpKind;
use crate::visit::consumers;
use std::collections::HashMap;
use tvmnp_tensor::kernels;
use tvmnp_tensor::Tensor;

/// Per-channel scale/shift derived from batch-norm parameters.
fn bn_scale_shift(
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    epsilon: f32,
) -> Option<(Vec<f32>, Vec<f32>)> {
    let g = gamma.as_f32().ok()?;
    let b = beta.as_f32().ok()?;
    let m = mean.as_f32().ok()?;
    let v = var.as_f32().ok()?;
    if g.len() != b.len() || g.len() != m.len() || g.len() != v.len() {
        return None;
    }
    let scale: Vec<f32> = g
        .iter()
        .zip(v)
        .map(|(&gi, &vi)| gi / (vi + epsilon).sqrt())
        .collect();
    let shift: Vec<f32> = b
        .iter()
        .zip(m)
        .zip(&scale)
        .map(|((&bi, &mi), &si)| bi - mi * si)
        .collect();
    Some((scale, shift))
}

/// Extract the constant tensor behind an expression, if it is a constant.
fn const_of(e: &Expr) -> Option<Tensor> {
    match &e.kind {
        ExprKind::Constant(c) => Some(c.value.clone()),
        _ => None,
    }
}

/// Scale conv weights per output channel: `W'_o = W_o * s_o` (`OIHW`).
fn scale_weights(w: &Tensor, scale: &[f32]) -> Option<Tensor> {
    let dims = w.shape().dims().to_vec();
    if dims.len() != 4 || dims[0] != scale.len() {
        return None;
    }
    let inner: usize = dims[1..].iter().product();
    let data = w.as_f32().ok()?;
    let mut out = Vec::with_capacity(data.len());
    for (o, &s) in scale.iter().enumerate() {
        out.extend(data[o * inner..(o + 1) * inner].iter().map(|&v| v * s));
    }
    Tensor::from_f32(dims, out).ok()
}

/// Fold batch norms in every function of `module`. Returns the rewritten
/// module; no `nn.batch_norm` node survives.
pub fn fold_batch_norm(module: &Module) -> Module {
    let _span = tvmnp_telemetry::span!("relay.pass", "pass" => "fold_batch_norm");
    let mut out = Module::default();
    for (name, f) in &module.functions {
        out.functions.insert(name.clone(), fold_function(f));
    }
    out
}

fn fold_function(f: &Function) -> Function {
    let cons = consumers(&f.body);
    let fanout = |e: &Expr| cons.get(&e.id).map(|v| v.len()).unwrap_or(0);

    // Explicit topo-order rewrite so folding decisions consult the
    // ORIGINAL graph (fan-outs, constant weights) while the rebuilt graph
    // is assembled from already-rewritten children.
    let mut map: HashMap<usize, Expr> = HashMap::new();
    for p in &f.params {
        map.insert(p.id, p.clone());
    }
    for e in crate::visit::topo_order(&f.body) {
        if map.contains_key(&e.id) {
            continue;
        }
        let rebuilt: Expr = 'node: {
            if let ExprKind::Call(call) = &e.kind {
                if let CallTarget::Op(OpKind::BatchNorm(attrs)) = &call.target {
                    let folded = try_fold_bn(call, attrs.epsilon, &map, fanout);
                    if let Some(x) = folded {
                        break 'node x;
                    }
                }
            }
            rebuild(&e, &map)
        };
        map.insert(e.id, rebuilt);
    }
    let body = map[&f.body.id].clone();
    Function {
        params: f.params.clone(),
        body,
        attrs: f.attrs.clone(),
    }
}

/// Rebuild a node with rewritten children (identity when unchanged).
fn rebuild(e: &Expr, map: &HashMap<usize, Expr>) -> Expr {
    match &e.kind {
        ExprKind::Var(_) | ExprKind::Constant(_) => e.clone(),
        ExprKind::Call(c) => {
            let args: Vec<Expr> = c.args.iter().map(|a| map[&a.id].clone()).collect();
            if args.iter().zip(&c.args).all(|(n, o)| n.id == o.id) {
                e.clone()
            } else {
                crate::expr::mk(ExprKind::Call(Call {
                    target: c.target.clone(),
                    args,
                }))
            }
        }
        ExprKind::Tuple(fs) => {
            let fields: Vec<Expr> = fs.iter().map(|a| map[&a.id].clone()).collect();
            if fields.iter().zip(fs).all(|(n, o)| n.id == o.id) {
                e.clone()
            } else {
                crate::expr::tuple(fields)
            }
        }
        ExprKind::TupleGetItem(t, i) => {
            let nt = map[&t.id].clone();
            if nt.id == t.id {
                e.clone()
            } else {
                crate::expr::tuple_get(nt, *i)
            }
        }
    }
}

/// Attempt to fold one batch-norm call; `None` falls back to rebuild.
fn try_fold_bn(
    call: &Call,
    epsilon: f32,
    map: &HashMap<usize, Expr>,
    fanout: impl Fn(&Expr) -> usize,
) -> Option<Expr> {
    let gamma = const_of(&call.args[1])?;
    let beta = const_of(&call.args[2])?;
    let mean = const_of(&call.args[3])?;
    let var = const_of(&call.args[4])?;
    let (scale, shift) = bn_scale_shift(&gamma, &beta, &mean, &var, epsilon)?;
    let c = scale.len();
    let x_orig = &call.args[0];

    // Case 1: fold into a directly preceding, single-consumer conv
    // (optionally through a bias_add) — analyzed on the ORIGINAL nodes.
    if let Some(folded) = fold_into_conv(x_orig, &scale, &shift, map, &fanout) {
        return Some(folded);
    }

    // Case 2: lower to explicit multiply + add with [1, c, 1, 1] consts.
    let s = Tensor::from_f32([1, c, 1, 1], scale).ok()?;
    let b = Tensor::from_f32([1, c, 1, 1], shift).ok()?;
    let x_new = map[&x_orig.id].clone();
    let scaled = crate::expr::call(OpKind::Multiply, vec![x_new, constant(s)]);
    Some(crate::expr::call(OpKind::Add, vec![scaled, constant(b)]))
}

/// Try to fold scale/shift into `x` (original node) when it is
/// `conv2d(...)` or `bias_add(conv2d(...), b)` with single consumers and
/// constant weights. Returns the folded expression built from rewritten
/// children.
fn fold_into_conv(
    x: &Expr,
    scale: &[f32],
    shift: &[f32],
    map: &HashMap<usize, Expr>,
    fanout: &impl Fn(&Expr) -> usize,
) -> Option<Expr> {
    let ExprKind::Call(c) = &x.kind else {
        return None;
    };
    let CallTarget::Op(op) = &c.target else {
        return None;
    };
    if fanout(x) > 1 {
        return None;
    }
    match op {
        OpKind::Conv2d(attrs) => {
            let w = const_of(&c.args[1])?;
            let w2 = scale_weights(&w, scale)?;
            // Existing conv bias folds through the scale as well.
            let bias = if c.args.len() > 2 {
                let b = const_of(&c.args[2])?;
                let bv = b.as_f32().ok()?;
                let folded: Vec<f32> = bv
                    .iter()
                    .zip(scale)
                    .zip(shift)
                    .map(|((&b, &s), &t)| b * s + t)
                    .collect();
                Tensor::from_f32([scale.len()], folded).ok()?
            } else {
                Tensor::from_f32([shift.len()], shift.to_vec()).ok()?
            };
            let conv_input = map[&c.args[0].id].clone();
            Some(crate::expr::call(
                OpKind::Conv2d(*attrs),
                vec![conv_input, constant(w2), constant(bias)],
            ))
        }
        OpKind::BiasAdd => {
            // bias_add(conv(x, W), b): recurse on the conv with the bias
            // merged into the shift.
            let inner = &c.args[0];
            let b = const_of(&c.args[1])?;
            let bv = b.as_f32().ok()?;
            if bv.len() != scale.len() {
                return None;
            }
            let merged_shift: Vec<f32> = shift
                .iter()
                .zip(bv)
                .zip(scale)
                .map(|((&t, &b), &s)| t + b * s)
                .collect();
            fold_into_conv(inner, scale, &merged_shift, map, fanout)
        }
        _ => None,
    }
}

/// Count `nn.batch_norm` calls in a module (diagnostics/ablation).
pub fn count_batch_norms(module: &Module) -> usize {
    let mut n = 0;
    for f in module.functions.values() {
        crate::visit::post_order(&f.body, |e| {
            if matches!(e.op(), Some(OpKind::BatchNorm(_))) {
                n += 1;
            }
        });
    }
    n
}

/// Evaluate `batch_norm` semantics directly (reference for tests).
pub fn reference_bn(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Tensor {
    let p = kernels::BatchNormParams {
        gamma: gamma.clone(),
        beta: beta.clone(),
        mean: mean.clone(),
        var: var.clone(),
        epsilon: eps,
    };
    match eval_op(
        &OpKind::BatchNorm(crate::attrs::BatchNormAttrs { epsilon: eps }),
        &[
            Value::Tensor(x.clone()),
            Value::Tensor(p.gamma.clone()),
            Value::Tensor(p.beta.clone()),
            Value::Tensor(p.mean.clone()),
            Value::Tensor(p.var.clone()),
        ],
    ) {
        Ok(Value::Tensor(t)) => t,
        _ => panic!("reference bn failed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::expr::var;
    use crate::interp::run_module;
    use crate::ty::TensorType;
    use crate::Conv2dAttrs;
    use std::collections::HashMap as Map;
    use tvmnp_tensor::rng::TensorRng;

    fn conv_bn_net(with_bias: bool, seed: u64) -> (Module, Tensor) {
        let mut rng = TensorRng::new(seed);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let conv = if with_bias {
            builder::conv2d_bias(
                x.clone(),
                w,
                rng.uniform_f32([4], -0.2, 0.2),
                Conv2dAttrs::same(1),
            )
        } else {
            builder::conv2d(x.clone(), w, Conv2dAttrs::same(1))
        };
        let bn = builder::batch_norm(
            conv,
            rng.uniform_f32([4], 0.8, 1.2),
            rng.uniform_f32([4], -0.3, 0.3),
            rng.uniform_f32([4], -0.3, 0.3),
            rng.uniform_f32([4], 0.5, 1.5),
            1e-5,
        );
        let body = builder::relu(bn);
        let m = Module::from_main(Function::new(vec![x], body));
        (m, rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0))
    }

    fn run(m: &Module, input: &Tensor) -> Tensor {
        let mut ins = Map::new();
        ins.insert("x".to_string(), input.clone());
        run_module(m, &ins).unwrap()
    }

    #[test]
    fn folds_conv_bn_and_preserves_semantics() {
        let (m, input) = conv_bn_net(false, 1);
        assert_eq!(count_batch_norms(&m), 1);
        let folded = fold_batch_norm(&m);
        assert_eq!(count_batch_norms(&folded), 0);
        let a = run(&m, &input);
        let b = run(&folded, &input);
        assert!(a.approx_eq(&b, 1e-4), "max diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn folds_through_bias_add() {
        let (m, input) = conv_bn_net(true, 2);
        let folded = fold_batch_norm(&m);
        assert_eq!(count_batch_norms(&folded), 0);
        assert!(run(&m, &input).approx_eq(&run(&folded, &input), 1e-4));
        // The folded graph is a conv (with bias) + relu: 2 calls.
        assert_eq!(folded.main().num_calls(), 2);
    }

    #[test]
    fn bn_with_shared_conv_lowers_to_mul_add() {
        // conv has two consumers: folding into it would change the other
        // consumer's value, so BN must lower to multiply+add instead.
        let mut rng = TensorRng::new(3);
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let w = rng.uniform_f32([2, 2, 1, 1], -0.5, 0.5);
        let conv = builder::conv2d(x.clone(), w, Conv2dAttrs::default());
        let bn = builder::batch_norm(
            conv.clone(),
            rng.uniform_f32([2], 0.8, 1.2),
            rng.uniform_f32([2], -0.3, 0.3),
            rng.uniform_f32([2], -0.3, 0.3),
            rng.uniform_f32([2], 0.5, 1.5),
            1e-5,
        );
        let body = builder::add(bn, builder::relu(conv));
        let m = Module::from_main(Function::new(vec![x], body));
        let folded = fold_batch_norm(&m);
        assert_eq!(count_batch_norms(&folded), 0);
        let mut ins = Map::new();
        ins.insert("x".to_string(), rng.uniform_f32([1, 2, 4, 4], -1.0, 1.0));
        let a = run_module(&m, &ins).unwrap();
        let b = run_module(&folded, &ins).unwrap();
        assert!(a.approx_eq(&b, 1e-4));
    }

    #[test]
    fn bn_on_input_lowers_to_mul_add() {
        let mut rng = TensorRng::new(4);
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let bn = builder::batch_norm(
            x.clone(),
            rng.uniform_f32([2], 0.8, 1.2),
            rng.uniform_f32([2], -0.3, 0.3),
            rng.uniform_f32([2], -0.3, 0.3),
            rng.uniform_f32([2], 0.5, 1.5),
            1e-5,
        );
        let m = Module::from_main(Function::new(vec![x], bn));
        let folded = fold_batch_norm(&m);
        assert_eq!(count_batch_norms(&folded), 0);
        let mut ins = Map::new();
        ins.insert("x".to_string(), rng.uniform_f32([1, 2, 4, 4], -1.0, 1.0));
        assert!(run_module(&m, &ins)
            .unwrap()
            .approx_eq(&run_module(&folded, &ins).unwrap(), 1e-5));
    }

    #[test]
    fn folding_makes_deepixbis_like_graphs_np_compilable() {
        // Chain of conv -> bn -> relu blocks (the DeePixBiS pathology).
        let mut rng = TensorRng::new(5);
        let x = var("x", TensorType::f32([1, 4, 8, 8]));
        let mut e = x.clone();
        for _ in 0..3 {
            let w = rng.uniform_f32([4, 4, 3, 3], -0.4, 0.4);
            e = builder::conv2d(e, w, Conv2dAttrs::same(1));
            e = builder::batch_norm(
                e,
                rng.uniform_f32([4], 0.8, 1.2),
                rng.uniform_f32([4], -0.3, 0.3),
                rng.uniform_f32([4], -0.3, 0.3),
                rng.uniform_f32([4], 0.5, 1.5),
                1e-5,
            );
            e = builder::relu(e);
        }
        let m = Module::from_main(Function::new(vec![x], e));
        let folded = fold_batch_norm(&m);
        // Every op in the folded graph must be in the NP-supported name set
        // (conv2d / bias via conv's third arg / relu).
        let mut all_supported = true;
        crate::visit::post_order(&folded.main().body, |n| {
            if let Some(op) = n.op() {
                // The support matrix lives in the neuropilot crate; here we
                // check the op name set structurally.
                if matches!(op, OpKind::BatchNorm(_)) {
                    all_supported = false;
                }
            }
        });
        assert!(all_supported);
        let mut ins = Map::new();
        ins.insert("x".to_string(), rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0));
        assert!(run_module(&m, &ins)
            .unwrap()
            .approx_eq(&run_module(&folded, &ins).unwrap(), 1e-3));
    }
}
