//! Reference interpreter: the semantic ground truth.
//!
//! Every compiled artifact in the reproduction (TVM graph executor, Neuron
//! runtime, any target permutation) must produce outputs identical to this
//! interpreter — the analogue of the paper's practice of checking the BYOC
//! output against the origin framework's output.

use crate::expr::{CallTarget, Expr, ExprKind, Function, Module};
use crate::op::OpKind;
use crate::visit::topo_order;
use std::collections::HashMap;
use std::fmt;
use tvmnp_tensor::kernels::{self, BinaryOp, ResizeMethod, UnaryOp};
use tvmnp_tensor::Tensor;

/// A runtime evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A bound input tensor does not match the parameter's declared type.
    /// Surfaced as a typed error at binding time instead of a panic (or
    /// an opaque kernel failure) somewhere inside evaluation.
    ShapeMismatch {
        /// Parameter name the tensor was bound to.
        input: String,
        /// Declared parameter type.
        expected: String,
        /// Shape/dtype of the offered tensor.
        got: String,
    },
    /// A required input was not provided.
    MissingInput(String),
    /// Any other evaluation failure (kernel errors, malformed graphs).
    Eval(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::ShapeMismatch {
                input,
                expected,
                got,
            } => write!(
                f,
                "runtime error: input '{input}' expects {expected}, got {got}"
            ),
            RunError::MissingInput(name) => write!(f, "runtime error: missing input '{name}'"),
            RunError::Eval(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

fn rerr(msg: impl Into<String>) -> RunError {
    RunError::Eval(msg.into())
}

/// Bind named inputs to a function's parameters, validating each tensor
/// against the parameter's declared shape and dtype.
fn bind_inputs(
    func: &Function,
    inputs: &HashMap<String, Tensor>,
) -> Result<HashMap<usize, Value>, RunError> {
    let mut env: HashMap<usize, Value> = HashMap::new();
    for p in &func.params {
        if let ExprKind::Var(v) = &p.kind {
            let t = inputs
                .get(&v.name)
                .ok_or_else(|| RunError::MissingInput(v.name.clone()))?;
            if t.shape().dims() != v.ty.shape.dims() || t.dtype() != v.ty.dtype {
                return Err(RunError::ShapeMismatch {
                    input: v.name.clone(),
                    expected: format!("{:?} {:?}", v.ty.shape, v.ty.dtype),
                    got: format!("{:?} {:?}", t.shape(), t.dtype()),
                });
            }
            env.insert(p.id, Value::Tensor(t.clone()));
        }
    }
    Ok(env)
}

/// A runtime value: tensor or tuple.
#[derive(Debug, Clone)]
pub enum Value {
    /// One tensor.
    Tensor(Tensor),
    /// Tuple of values.
    Tuple(Vec<Value>),
}

impl Value {
    /// Unwrap a tensor, erroring on tuples.
    pub fn tensor(&self) -> Result<&Tensor, RunError> {
        match self {
            Value::Tensor(t) => Ok(t),
            Value::Tuple(_) => Err(rerr("expected tensor value, found tuple")),
        }
    }

    /// Consume into a tensor.
    pub fn into_tensor(self) -> Result<Tensor, RunError> {
        match self {
            Value::Tensor(t) => Ok(t),
            Value::Tuple(_) => Err(rerr("expected tensor value, found tuple")),
        }
    }
}

/// Interpreter over a [`Module`].
pub struct Interpreter<'m> {
    module: &'m Module,
}

impl<'m> Interpreter<'m> {
    /// New interpreter for `module`.
    pub fn new(module: &'m Module) -> Self {
        Interpreter { module }
    }

    /// Evaluate `main` with inputs bound by parameter name.
    pub fn run(&self, inputs: &HashMap<String, Tensor>) -> Result<Value, RunError> {
        self.run_function(self.module.main(), inputs)
    }

    /// Evaluate `main` and unwrap a single tensor output.
    pub fn run_tensor(&self, inputs: &HashMap<String, Tensor>) -> Result<Tensor, RunError> {
        self.run(inputs)?.into_tensor()
    }

    /// Evaluate `main` and also return every intermediate value keyed by
    /// node id — the calibration hook used by post-training quantization.
    pub fn run_with_trace(
        &self,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<(Value, HashMap<usize, Value>), RunError> {
        let func = self.module.main();
        let mut env = bind_inputs(func, inputs)?;
        let out = self.eval(&func.body, &mut env)?;
        Ok((out, env))
    }

    /// Evaluate a function with named inputs.
    pub fn run_function(
        &self,
        func: &Function,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Value, RunError> {
        let mut env = bind_inputs(func, inputs)?;
        self.eval(&func.body, &mut env)
    }

    fn eval(&self, root: &Expr, env: &mut HashMap<usize, Value>) -> Result<Value, RunError> {
        for e in topo_order(root) {
            if env.contains_key(&e.id) {
                continue;
            }
            let v = match &e.kind {
                ExprKind::Var(v) => {
                    return Err(rerr(format!("unbound variable '{}'", v.name)));
                }
                ExprKind::Constant(c) => Value::Tensor(c.value.clone()),
                ExprKind::Tuple(fs) => {
                    Value::Tuple(fs.iter().map(|f| env[&f.id].clone()).collect())
                }
                ExprKind::TupleGetItem(t, i) => match &env[&t.id] {
                    Value::Tuple(vs) => vs
                        .get(*i)
                        .cloned()
                        .ok_or_else(|| rerr(format!("tuple index {i} out of range")))?,
                    Value::Tensor(_) => return Err(rerr("TupleGetItem on tensor")),
                },
                ExprKind::Call(c) => {
                    let argv: Vec<Value> = c.args.iter().map(|a| env[&a.id].clone()).collect();
                    match &c.target {
                        CallTarget::Op(op) => eval_op(op, &argv)?,
                        CallTarget::Global(g) => {
                            let callee = self
                                .module
                                .functions
                                .get(g)
                                .ok_or_else(|| rerr(format!("unknown global @{g}")))?;
                            let mut named = HashMap::new();
                            for (p, a) in callee.params.iter().zip(&argv) {
                                if let ExprKind::Var(v) = &p.kind {
                                    named.insert(v.name.clone(), a.tensor()?.clone());
                                }
                            }
                            self.run_function(callee, &named)?
                        }
                    }
                }
            };
            env.insert(e.id, v);
        }
        Ok(env[&root.id].clone())
    }
}

/// Evaluate a primitive op on concrete values.
pub fn eval_op(op: &OpKind, args: &[Value]) -> Result<Value, RunError> {
    let t = |i: usize| -> Result<&Tensor, RunError> {
        args.get(i)
            .ok_or_else(|| rerr(format!("{}: missing arg {i}", op.name())))?
            .tensor()
    };
    let ok = |r: Result<Tensor, kernels::KernelError>| -> Result<Value, RunError> {
        r.map(Value::Tensor)
            .map_err(|e| rerr(format!("{}: {e}", op.name())))
    };
    match op {
        OpKind::Conv2d(a) => {
            let bias = if args.len() > 2 { Some(t(2)?) } else { None };
            ok(kernels::conv2d_f32(t(0)?, t(1)?, bias, &a.to_kernel()))
        }
        OpKind::QnnConv2d(a) => {
            let bias = if args.len() > 2 { Some(t(2)?) } else { None };
            let q = kernels::QConvQuant {
                input: a.input_q,
                weight: a.weight_q,
                output: a.output_q,
                out_dtype: a.out_dtype,
            };
            ok(kernels::qconv2d(
                t(0)?,
                t(1)?,
                bias,
                &a.conv.to_kernel(),
                &q,
            ))
        }
        OpKind::Dense => {
            let bias = if args.len() > 2 { Some(t(2)?) } else { None };
            ok(kernels::dense_f32(t(0)?, t(1)?, bias))
        }
        OpKind::QnnDense(a) => {
            let bias = if args.len() > 2 { Some(t(2)?) } else { None };
            ok(kernels::qdense(
                t(0)?,
                t(1)?,
                bias,
                a.input_q,
                a.weight_q,
                a.output_q,
                a.out_dtype,
            ))
        }
        OpKind::BiasAdd => ok(kernels::bias_add(t(0)?, t(1)?)),
        OpKind::BatchNorm(a) => {
            let p = kernels::BatchNormParams {
                gamma: t(1)?.clone(),
                beta: t(2)?.clone(),
                mean: t(3)?.clone(),
                var: t(4)?.clone(),
                epsilon: a.epsilon,
            };
            ok(kernels::batch_norm_f32(t(0)?, &p))
        }
        OpKind::Relu => ok(kernels::unary(t(0)?, UnaryOp::Relu)),
        OpKind::LeakyRelu(a) => ok(kernels::unary(t(0)?, UnaryOp::LeakyRelu(a.alpha))),
        OpKind::Clip(a) => ok(kernels::unary(t(0)?, UnaryOp::Clip(a.min, a.max))),
        OpKind::Sigmoid => ok(kernels::unary(t(0)?, UnaryOp::Sigmoid)),
        OpKind::Tanh => ok(kernels::unary(t(0)?, UnaryOp::Tanh)),
        OpKind::Exp => ok(kernels::unary(t(0)?, UnaryOp::Exp)),
        OpKind::Sqrt => ok(kernels::unary(t(0)?, UnaryOp::Sqrt)),
        OpKind::Negative => ok(kernels::unary(t(0)?, UnaryOp::Neg)),
        OpKind::MaxPool2d(a) => ok(kernels::max_pool2d(t(0)?, &a.to_kernel())),
        OpKind::AvgPool2d(a) => ok(kernels::avg_pool2d(t(0)?, &a.to_kernel())),
        OpKind::GlobalAvgPool2d => ok(kernels::global_avg_pool2d(t(0)?)),
        OpKind::Softmax => ok(kernels::softmax_f32(t(0)?)),
        OpKind::LogSoftmax => ok(kernels::log_softmax_f32(t(0)?)),
        OpKind::Add => ok(kernels::binary_f32(t(0)?, t(1)?, BinaryOp::Add)),
        OpKind::Subtract => ok(kernels::binary_f32(t(0)?, t(1)?, BinaryOp::Sub)),
        OpKind::Multiply => ok(kernels::binary_f32(t(0)?, t(1)?, BinaryOp::Mul)),
        OpKind::Divide => ok(kernels::binary_f32(t(0)?, t(1)?, BinaryOp::Div)),
        OpKind::Maximum => ok(kernels::binary_f32(t(0)?, t(1)?, BinaryOp::Maximum)),
        OpKind::Minimum => ok(kernels::binary_f32(t(0)?, t(1)?, BinaryOp::Minimum)),
        OpKind::QnnAdd(a) => ok(kernels::qadd(
            t(0)?,
            t(1)?,
            a.lhs_q,
            a.rhs_q,
            a.output_q,
            a.out_dtype,
        )),
        OpKind::Reshape(a) => ok(t(0)?
            .reshaped(a.new_shape.clone())
            .map_err(|e| kernels::kerr(e.to_string()))),
        OpKind::Transpose(a) => ok(kernels::transpose(t(0)?, &a.axes)),
        OpKind::Concatenate(a) => {
            let parts: Vec<&Tensor> = args.iter().map(|v| v.tensor()).collect::<Result<_, _>>()?;
            ok(kernels::concat(&parts, a.axis))
        }
        OpKind::QnnConcatenate(a) => {
            // Inputs were pre-aligned to the output scale by the frontend;
            // the data-movement concat keeps the first input's params, then
            // we stamp the declared output params.
            let parts: Vec<&Tensor> = args.iter().map(|v| v.tensor()).collect::<Result<_, _>>()?;
            let c = kernels::concat(&parts, a.axis).map_err(|e| rerr(e.to_string()))?;
            Ok(Value::Tensor(c.with_quant(a.output_q)))
        }
        OpKind::Pad(a) => ok(kernels::pad(t(0)?, &a.pads, a.value)),
        OpKind::StridedSlice(a) => ok(kernels::slice(t(0)?, &a.begin, &a.end)),
        OpKind::BatchFlatten => ok(kernels::batch_flatten(t(0)?)),
        OpKind::Resize2d(a) => {
            let m = if a.bilinear {
                ResizeMethod::Bilinear
            } else {
                ResizeMethod::Nearest
            };
            ok(kernels::resize2d(t(0)?, a.out_h, a.out_w, m))
        }
        OpKind::Mean(a) => ok(kernels::mean_f32(t(0)?, &a.axes)),
        OpKind::Dropout => Ok(Value::Tensor(t(0)?.clone())),
        OpKind::QnnQuantize(a) => ok(t(0)?
            .quantize(a.out, a.out_dtype)
            .map_err(|e| kernels::kerr(e.to_string()))),
        OpKind::QnnDequantize(a) => {
            let x = t(0)?;
            // Use the declared (operator-oriented) params, not whatever the
            // tensor carries.
            let vals: Vec<f32> = x.iter_int().map(|q| a.input.dequantize(q)).collect();
            ok(Tensor::from_f32(x.shape().clone(), vals).map_err(|e| kernels::kerr(e.to_string())))
        }
        OpKind::QnnRequantize(a) => {
            let x = t(0)?;
            let fpm = tvmnp_tensor::quant::FixedPointMultiplier::from_real(
                a.input.scale as f64 / a.output.scale as f64,
            );
            let vals: Vec<i32> = x
                .iter_int()
                .map(|q| {
                    tvmnp_tensor::quant::requantize_value(
                        q - a.input.zero_point,
                        fpm,
                        a.output.zero_point,
                        a.out_dtype,
                    )
                })
                .collect();
            ok(
                Tensor::from_int_values(x.shape().clone(), &vals, a.out_dtype, Some(a.output))
                    .map_err(|e| kernels::kerr(e.to_string())),
            )
        }
    }
}

/// Convenience: run a single-output module on named inputs.
pub fn run_module(module: &Module, inputs: &HashMap<String, Tensor>) -> Result<Tensor, RunError> {
    Interpreter::new(module).run_tensor(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::*;
    use crate::expr::{call, call_global, constant, var, Function, Module};
    use crate::ty::TensorType;
    use tvmnp_tensor::DType;

    fn inputs(name: &str, t: Tensor) -> HashMap<String, Tensor> {
        let mut m = HashMap::new();
        m.insert(name.to_string(), t);
        m
    }

    #[test]
    fn runs_relu_chain() {
        let x = var("x", TensorType::f32([4]));
        let y = call(OpKind::Relu, vec![x.clone()]);
        let m = Module::from_main(Function::new(vec![x], y));
        let out = run_module(
            &m,
            &inputs(
                "x",
                Tensor::from_f32([4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap(),
            ),
        )
        .unwrap();
        assert_eq!(out.as_f32().unwrap(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn conv_bias_relu_pipeline() {
        let x = var("x", TensorType::f32([1, 1, 3, 3]));
        let w = constant(Tensor::from_f32([1, 1, 1, 1], vec![-1.0]).unwrap());
        let c = call(OpKind::Conv2d(Conv2dAttrs::default()), vec![x.clone(), w]);
        let b = constant(Tensor::from_f32([1], vec![1.0]).unwrap());
        let ba = call(OpKind::BiasAdd, vec![c, b]);
        let r = call(OpKind::Relu, vec![ba]);
        let m = Module::from_main(Function::new(vec![x], r));
        let out = run_module(
            &m,
            &inputs("x", Tensor::from_f32([1, 1, 3, 3], vec![2.0; 9]).unwrap()),
        )
        .unwrap();
        // -2 + 1 = -1 → relu → 0
        assert!(out.as_f32().unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn global_call_executes_callee() {
        let px = var("p", TensorType::f32([2]));
        let ext = Function::new(vec![px.clone()], call(OpKind::Negative, vec![px]))
            .with_attr("Compiler", "neuropilot");
        let x = var("x", TensorType::f32([2]));
        let y = call_global("nir_0", vec![x.clone()]);
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        let out = run_module(
            &m,
            &inputs("x", Tensor::from_f32([2], vec![1.0, -2.0]).unwrap()),
        )
        .unwrap();
        assert_eq!(out.as_f32().unwrap(), &[-1.0, 2.0]);
    }

    #[test]
    fn missing_input_is_error() {
        let x = var("x", TensorType::f32([1]));
        let m = Module::from_main(Function::new(vec![x.clone()], x));
        assert_eq!(
            run_module(&m, &HashMap::new()),
            Err(RunError::MissingInput("x".into()))
        );
    }

    #[test]
    fn shape_mismatched_input_is_typed_error_not_panic() {
        let x = var("x", TensorType::f32([1, 2, 4, 4]));
        let y = call(OpKind::Relu, vec![x.clone()]);
        let m = Module::from_main(Function::new(vec![x], y));
        // Wrong shape.
        let err = run_module(
            &m,
            &inputs("x", Tensor::from_f32([4], vec![0.0; 4]).unwrap()),
        )
        .unwrap_err();
        match &err {
            RunError::ShapeMismatch { input, .. } => assert_eq!(input, "x"),
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("input 'x'"));
        // Wrong dtype, right shape.
        let bad_dtype = Tensor::from_f32([1, 2, 4, 4], vec![0.5; 32])
            .unwrap()
            .quantize(tvmnp_tensor::QuantParams::new(0.1, 0), DType::U8)
            .unwrap();
        let err = run_module(&m, &inputs("x", bad_dtype)).unwrap_err();
        assert!(matches!(err, RunError::ShapeMismatch { .. }));
    }

    #[test]
    fn tuple_projection() {
        let x = var("x", TensorType::f32([2]));
        let t = crate::expr::tuple(vec![
            call(OpKind::Relu, vec![x.clone()]),
            call(OpKind::Negative, vec![x.clone()]),
        ]);
        let g = crate::expr::tuple_get(t, 1);
        let m = Module::from_main(Function::new(vec![x], g));
        let out = run_module(
            &m,
            &inputs("x", Tensor::from_f32([2], vec![3.0, -4.0]).unwrap()),
        )
        .unwrap();
        assert_eq!(out.as_f32().unwrap(), &[-3.0, 4.0]);
    }

    #[test]
    fn qnn_quant_dequant_roundtrip() {
        use tvmnp_tensor::QuantParams;
        let qp = QuantParams::new(0.1, 0);
        let x = var("x", TensorType::f32([3]));
        let q = call(
            OpKind::QnnQuantize(QuantizeAttrs {
                out: qp,
                out_dtype: DType::I8,
            }),
            vec![x.clone()],
        );
        let d = call(
            OpKind::QnnDequantize(DequantizeAttrs { input: qp }),
            vec![q],
        );
        let m = Module::from_main(Function::new(vec![x], d));
        let input = Tensor::from_f32([3], vec![0.5, -0.5, 1.2]).unwrap();
        let out = run_module(&m, &inputs("x", input.clone())).unwrap();
        assert!(out.approx_eq(&input, 0.051));
    }
}
