//! Structural module fingerprints for compiled-artifact caching.
//!
//! Relay modules are DAGs with structural sharing and process-global node
//! ids, so node identity cannot key a cache across builds or processes.
//! This module computes a *content* hash: two modules that are structurally
//! identical — same functions, same ops and attributes, same types, same
//! constant payloads, same sharing shape — fingerprint the same, while any
//! semantic difference (a changed weight byte, a different stride, a
//! re-ordered function) changes the digest.

use crate::expr::{Expr, ExprKind, Module};
use crate::visit::post_order;
use std::collections::HashMap;

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms.
#[derive(Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content hash of a whole module, as a fixed-width hex string (the form
/// used in cache keys and on-disk cache file names).
pub fn module_fingerprint(module: &Module) -> String {
    let mut h = Fnv64::new();
    h.write_u64(module.functions.len() as u64);
    // BTreeMap iteration is name-ordered — deterministic by construction.
    for (name, func) in &module.functions {
        h.write_str(name);
        h.write_u64(func.attrs.len() as u64);
        for (k, v) in &func.attrs {
            h.write_str(k);
            h.write_str(v);
        }
        hash_function_body(&mut h, &func.params, &func.body);
    }
    format!("{:016x}", h.finish())
}

/// Hash a function body DAG. Each unique node gets a sequential ordinal in
/// post-order; parents reference children by ordinal, so the sharing shape
/// (diamond vs duplicated subtree) is part of the digest.
fn hash_function_body(h: &mut Fnv64, params: &[Expr], body: &Expr) {
    let mut ordinal: HashMap<usize, u64> = HashMap::new();
    // Parameters first, in declaration order, so `f(x, y)` and `f(y, x)`
    // differ even when the bodies are symmetric.
    for (i, p) in params.iter().enumerate() {
        ordinal.insert(p.id, i as u64);
        h.write_u64(i as u64);
        hash_node_payload(h, p);
    }
    let mut next = params.len() as u64;
    post_order(body, |e| {
        if ordinal.contains_key(&e.id) {
            return; // a param node shared with the body
        }
        ordinal.insert(e.id, next);
        h.write_u64(next);
        next += 1;
        hash_node_payload(h, e);
        for a in e.args() {
            // Children precede parents in post-order, so the ordinal is
            // always present.
            h.write_u64(ordinal[&a.id]);
        }
    });
    h.write_u64(ordinal.get(&body.id).copied().unwrap_or(u64::MAX));
}

/// Hash one node's own payload (not its edges).
fn hash_node_payload(h: &mut Fnv64, e: &Expr) {
    match &e.kind {
        ExprKind::Var(v) => {
            h.write_str("var");
            h.write_str(&v.name);
            h.write_str(&format!("{:?}", v.ty));
        }
        ExprKind::Constant(c) => {
            h.write_str("const");
            h.write_str(&format!("{:?}", c.value.shape()));
            h.write_str(&format!("{:?}", c.value.dtype()));
            h.write_str(&format!("{:?}", c.value.quant()));
            hash_tensor_payload(h, &c.value);
        }
        ExprKind::Call(call) => {
            h.write_str("call");
            match &call.target {
                crate::expr::CallTarget::Op(op) => {
                    // Debug form includes the attribute structs (strides,
                    // padding, quant params …), which is exactly the
                    // compile-relevant content.
                    h.write_str(&format!("{op:?}"));
                }
                crate::expr::CallTarget::Global(g) => {
                    h.write_str("global");
                    h.write_str(g);
                }
            }
            h.write_u64(call.args.len() as u64);
        }
        ExprKind::Tuple(fields) => {
            h.write_str("tuple");
            h.write_u64(fields.len() as u64);
        }
        ExprKind::TupleGetItem(_, index) => {
            h.write_str("tgi");
            h.write_u64(*index as u64);
        }
    }
}

/// Hash a constant tensor's raw payload bit-exactly.
fn hash_tensor_payload(h: &mut Fnv64, t: &tvmnp_tensor::Tensor) {
    if let Ok(v) = t.as_f32() {
        for x in v {
            h.write(&x.to_bits().to_le_bytes());
        }
    } else if let Ok(v) = t.as_i8() {
        for x in v {
            h.write(&x.to_le_bytes());
        }
    } else if let Ok(v) = t.as_u8() {
        h.write(v);
    } else if let Ok(v) = t.as_i32() {
        for x in v {
            h.write(&x.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::expr::{var, Function, Module};
    use crate::ty::TensorType;
    use tvmnp_tensor::Tensor;

    fn small_module(weight: f32) -> Module {
        let x = var("x", TensorType::f32([4]));
        let w = crate::expr::constant(Tensor::from_f32([4], vec![weight; 4]).unwrap());
        let y = builder::relu(builder::add(x.clone(), w));
        Module::from_main(Function::new(vec![x], y))
    }

    #[test]
    fn identical_structure_same_fingerprint() {
        // Two independently-built modules (fresh node ids throughout) with
        // the same structure must collide — that is the caching contract.
        let a = module_fingerprint(&small_module(0.5));
        let b = module_fingerprint(&small_module(0.5));
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn changed_weight_changes_fingerprint() {
        let a = module_fingerprint(&small_module(0.5));
        let b = module_fingerprint(&small_module(0.5000001));
        assert_ne!(a, b);
    }

    #[test]
    fn different_op_changes_fingerprint() {
        let x = var("x", TensorType::f32([4]));
        let a = Module::from_main(Function::new(vec![x.clone()], builder::relu(x.clone())));
        let x2 = var("x", TensorType::f32([4]));
        let b = Module::from_main(Function::new(vec![x2.clone()], builder::sigmoid(x2)));
        assert_ne!(module_fingerprint(&a), module_fingerprint(&b));
    }

    #[test]
    fn sharing_shape_is_significant() {
        // relu(x) + relu(x) with one shared relu node vs two distinct relu
        // nodes: numerically identical but different DAGs; the fingerprint
        // keys *compilation* input, which distinguishes them.
        let x = var("x", TensorType::f32([4]));
        let shared = builder::relu(x.clone());
        let a = Module::from_main(Function::new(
            vec![x.clone()],
            builder::add(shared.clone(), shared),
        ));
        let x2 = var("x", TensorType::f32([4]));
        let b = Module::from_main(Function::new(
            vec![x2.clone()],
            builder::add(builder::relu(x2.clone()), builder::relu(x2)),
        ));
        assert_ne!(module_fingerprint(&a), module_fingerprint(&b));
    }

    #[test]
    fn fingerprint_matches_golden_across_process_runs() {
        // The disk cache persists entries under their fingerprint, so the
        // digest must be identical across *processes*, not just within one
        // run. A hardcoded golden value catches any accidental change to
        // the hash inputs (new attrs, reordered traversal, FNV constants).
        let fp = module_fingerprint(&small_module(1.0));
        assert_eq!(fp, "722bed22d143496a");
    }

    #[test]
    fn changed_conv_attrs_change_fingerprint() {
        // Same weights and shapes, different stride / padding: distinct
        // compilation products, so the digests must differ pairwise.
        let conv_module = |attrs: crate::Conv2dAttrs| {
            let x = var("x", TensorType::f32([1, 1, 4, 4]));
            let w = Tensor::from_f32([1, 1, 3, 3], vec![0.1; 9]).unwrap();
            let y = builder::conv2d(x.clone(), w, attrs);
            Module::from_main(Function::new(vec![x], y))
        };
        let same = module_fingerprint(&conv_module(crate::Conv2dAttrs::same(1)));
        let valid = module_fingerprint(&conv_module(crate::Conv2dAttrs::default()));
        let strided = module_fingerprint(&conv_module(crate::Conv2dAttrs {
            strides: (2, 2),
            ..crate::Conv2dAttrs::same(1)
        }));
        assert_ne!(same, valid);
        assert_ne!(same, strided);
        assert_ne!(valid, strided);
    }

    #[test]
    fn changed_function_attrs_change_fingerprint() {
        // Partition attrs (Compiler / global_symbol / Primitive) decide
        // which codegen path a function takes, so they are hash content.
        let make = |attr: Option<(&str, &str)>| {
            let x = var("x", TensorType::f32([4]));
            let mut f = Function::new(vec![x.clone()], builder::relu(x));
            if let Some((k, v)) = attr {
                f = f.with_attr(k, v);
            }
            Module::from_main(f)
        };
        let plain = module_fingerprint(&make(None));
        let annotated = module_fingerprint(&make(Some(("Compiler", "neuropilot"))));
        let other = module_fingerprint(&make(Some(("Compiler", "other"))));
        assert_ne!(plain, annotated);
        assert_ne!(annotated, other);
    }

    #[test]
    fn real_model_fingerprint_is_stable_across_builds() {
        let a = crate::builder::relu(var("x", TensorType::f32([8])));
        let _ = a; // builder smoke
        let m1 = small_module(1.25);
        let fp1 = module_fingerprint(&m1);
        let fp2 = module_fingerprint(&m1);
        assert_eq!(fp1, fp2, "fingerprint must be a pure function");
    }
}
