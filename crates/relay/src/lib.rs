//! # tvmnp-relay
//!
//! A Relay-like graph-level IR, reproducing the parts of TVM the paper's
//! BYOC flow relies on:
//!
//! * an expression AST (`Var`, `Constant`, `Call`, `Tuple`, `TupleGetItem`)
//!   over dataflow DAGs ([`expr`]);
//! * tensor types with shape/dtype inference per operator ([`ty`], [`infer`]);
//! * `ExprVisitor`-style post-order traversal and rewriting ([`visit`]) —
//!   the structure paper Listing 1 builds its `NodeEntry` bookkeeping on;
//! * a reference interpreter that executes a module on the host with the
//!   `tvmnp-tensor` kernels ([`interp`]) — the semantic ground truth every
//!   backend is checked against;
//! * graph passes ([`passes`]): constant folding, dead-code elimination,
//!   operator fusion, and the BYOC *annotate → merge regions → partition*
//!   pipeline that splits a module into a TVM-native part and external
//!   `Compiler="neuropilot"` functions (paper §3.1, Fig. 2);
//! * the QNN dialect (`qnn.quantize/dequantize/requantize/conv2d/dense/add/
//!   concatenate`) with *operator-oriented* quantization attributes, the
//!   representation §3.3 converts into Neuron's tensor-oriented form.

pub mod attrs;
pub mod builder;
pub mod expr;
pub mod fingerprint;
pub mod infer;
pub mod interp;
pub mod op;
pub mod passes;
pub mod printer;
pub mod ty;
pub mod visit;

pub use attrs::*;
pub use expr::{Call, CallTarget, Constant, Expr, ExprKind, Function, Module, Var};
pub use fingerprint::module_fingerprint;
pub use infer::{infer_types, TypeError};
pub use interp::{Interpreter, RunError};
pub use op::OpKind;
pub use printer::print_module;
pub use ty::{TensorType, Type};
