//! Ergonomic graph-construction helpers used by the frontends and the
//! model zoo.

use crate::attrs::*;
use crate::expr::{call, constant, Expr, ExprKind};
use crate::infer::{infer_op, TypeError};
use crate::op::OpKind;
use crate::ty::Type;
use crate::visit::topo_order;
use std::collections::HashMap;
use tvmnp_tensor::Tensor;

/// Infer the type of a standalone expression (no module context; `Global`
/// calls are not supported here). Vars use their declared types.
pub fn expr_type(root: &Expr) -> Result<Type, TypeError> {
    let mut types: HashMap<usize, Type> = HashMap::new();
    for e in topo_order(root) {
        let ty = match &e.kind {
            ExprKind::Var(v) => Type::Tensor(v.ty.clone()),
            ExprKind::Constant(c) => Type::Tensor(crate::ty::TensorType::new(
                c.value.shape().clone(),
                c.value.dtype(),
            )),
            ExprKind::Tuple(fs) => Type::Tuple(fs.iter().map(|f| types[&f.id].clone()).collect()),
            ExprKind::TupleGetItem(t, i) => match &types[&t.id] {
                Type::Tuple(ts) => ts
                    .get(*i)
                    .cloned()
                    .ok_or_else(|| TypeError(format!("tuple index {i} out of range")))?,
                _ => return Err(TypeError("TupleGetItem on non-tuple".into())),
            },
            ExprKind::Call(c) => match &c.target {
                crate::expr::CallTarget::Op(op) => {
                    let argt: Vec<&Type> = c.args.iter().map(|a| &types[&a.id]).collect();
                    infer_op(op, &argt)?
                }
                crate::expr::CallTarget::Global(g) => {
                    return Err(TypeError(format!("expr_type cannot resolve global @{g}")))
                }
            },
        };
        types.insert(e.id, ty);
    }
    Ok(types[&root.id].clone())
}

/// `nn.conv2d(x, w)`, weight given as a constant tensor.
pub fn conv2d(x: Expr, weight: Tensor, attrs: Conv2dAttrs) -> Expr {
    call(OpKind::Conv2d(attrs), vec![x, constant(weight)])
}

/// `nn.conv2d(x, w) + bias`.
pub fn conv2d_bias(x: Expr, weight: Tensor, bias: Tensor, attrs: Conv2dAttrs) -> Expr {
    call(
        OpKind::Conv2d(attrs),
        vec![x, constant(weight), constant(bias)],
    )
}

/// `nn.dense(x, w)`.
pub fn dense(x: Expr, weight: Tensor) -> Expr {
    call(OpKind::Dense, vec![x, constant(weight)])
}

/// `nn.dense(x, w) + bias`.
pub fn dense_bias(x: Expr, weight: Tensor, bias: Tensor) -> Expr {
    call(OpKind::Dense, vec![x, constant(weight), constant(bias)])
}

/// `nn.bias_add(x, b)`.
pub fn bias_add(x: Expr, bias: Tensor) -> Expr {
    call(OpKind::BiasAdd, vec![x, constant(bias)])
}

/// `nn.relu(x)`.
pub fn relu(x: Expr) -> Expr {
    call(OpKind::Relu, vec![x])
}

/// `clip(x, 0, 6)` — ReLU6 as TVM spells it.
pub fn relu6(x: Expr) -> Expr {
    call(OpKind::Clip(ClipAttrs { min: 0.0, max: 6.0 }), vec![x])
}

/// `nn.leaky_relu(x, alpha)`.
pub fn leaky_relu(x: Expr, alpha: f32) -> Expr {
    call(OpKind::LeakyRelu(LeakyReluAttrs { alpha }), vec![x])
}

/// `sigmoid(x)`.
pub fn sigmoid(x: Expr) -> Expr {
    call(OpKind::Sigmoid, vec![x])
}

/// `nn.batch_norm` with constant parameters.
pub fn batch_norm(
    x: Expr,
    gamma: Tensor,
    beta: Tensor,
    mean: Tensor,
    var: Tensor,
    epsilon: f32,
) -> Expr {
    call(
        OpKind::BatchNorm(BatchNormAttrs { epsilon }),
        vec![
            x,
            constant(gamma),
            constant(beta),
            constant(mean),
            constant(var),
        ],
    )
}

/// `nn.max_pool2d`.
pub fn max_pool2d(x: Expr, attrs: Pool2dAttrs) -> Expr {
    call(OpKind::MaxPool2d(attrs), vec![x])
}

/// `nn.avg_pool2d`.
pub fn avg_pool2d(x: Expr, attrs: Pool2dAttrs) -> Expr {
    call(OpKind::AvgPool2d(attrs), vec![x])
}

/// `nn.global_avg_pool2d`.
pub fn global_avg_pool2d(x: Expr) -> Expr {
    call(OpKind::GlobalAvgPool2d, vec![x])
}

/// `nn.softmax`.
pub fn softmax(x: Expr) -> Expr {
    call(OpKind::Softmax, vec![x])
}

/// `add(a, b)`.
pub fn add(a: Expr, b: Expr) -> Expr {
    call(OpKind::Add, vec![a, b])
}

/// `multiply(a, b)`.
pub fn multiply(a: Expr, b: Expr) -> Expr {
    call(OpKind::Multiply, vec![a, b])
}

/// `concatenate(...)` along `axis`.
pub fn concatenate(parts: Vec<Expr>, axis: usize) -> Expr {
    call(OpKind::Concatenate(ConcatAttrs { axis }), parts)
}

/// `reshape(x, shape)`.
pub fn reshape(x: Expr, new_shape: Vec<usize>) -> Expr {
    call(OpKind::Reshape(ReshapeAttrs { new_shape }), vec![x])
}

/// `nn.batch_flatten(x)`.
pub fn batch_flatten(x: Expr) -> Expr {
    call(OpKind::BatchFlatten, vec![x])
}

/// `nn.dropout(x)` (inference identity).
pub fn dropout(x: Expr) -> Expr {
    call(OpKind::Dropout, vec![x])
}

/// `transpose(x, axes)`.
pub fn transpose(x: Expr, axes: Vec<usize>) -> Expr {
    call(OpKind::Transpose(TransposeAttrs { axes }), vec![x])
}

/// `mean(x, axes)`.
pub fn mean(x: Expr, axes: Vec<usize>) -> Expr {
    call(OpKind::Mean(MeanAttrs { axes }), vec![x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;
    use crate::ty::TensorType;
    use tvmnp_tensor::rng::TensorRng;

    #[test]
    fn chained_builder_types() {
        let mut rng = TensorRng::new(1);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([8, 3, 3, 3], -1.0, 1.0);
        let y = relu(conv2d(x, w, Conv2dAttrs::same(1)));
        let t = expr_type(&y).unwrap();
        assert_eq!(t.as_tensor().shape.dims(), &[1, 8, 8, 8]);
    }

    #[test]
    fn expr_type_rejects_global() {
        let x = var("x", TensorType::f32([1]));
        let g = crate::expr::call_global("f", vec![x]);
        assert!(expr_type(&g).is_err());
    }
}
