//! Text-form printer for Relay modules, in the spirit of TVM's
//! `mod.astext()`: SSA-style `%N = op(args) /* ty */` lines per function.
//!
//! The printer is for humans (debugging, docs, the examples' output); it
//! is deliberately not a parser round-trip format.

use crate::expr::{CallTarget, ExprKind, Function, Module};
use crate::infer::infer_types;
use crate::visit::topo_order;
use std::collections::HashMap;
use std::fmt::Write;

/// Render one function as text. `types` may be empty if inference failed.
fn print_function(
    name: &str,
    f: &Function,
    types: &HashMap<usize, crate::ty::Type>,
    out: &mut String,
) {
    let ty_of = |id: usize| {
        types
            .get(&id)
            .map(|t| format!(" /* {t} */"))
            .unwrap_or_default()
    };
    write!(out, "def @{name}(").unwrap();
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if let ExprKind::Var(v) = &p.kind {
            write!(out, "%{}: {}", v.name, v.ty).unwrap();
        }
    }
    let mut attrs: Vec<String> = f.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    attrs.sort();
    if attrs.is_empty() {
        out.push_str(") {\n");
    } else {
        writeln!(out, "), attrs=[{}] {{", attrs.join(", ")).unwrap();
    }

    // SSA numbering in topo order.
    let mut ssa: HashMap<usize, String> = HashMap::new();
    for p in &f.params {
        if let ExprKind::Var(v) = &p.kind {
            ssa.insert(p.id, format!("%{}", v.name));
        }
    }
    let mut n = 0usize;
    for e in topo_order(&f.body) {
        if ssa.contains_key(&e.id) {
            continue;
        }
        let name_of = |id: usize, ssa: &HashMap<usize, String>| {
            ssa.get(&id).cloned().unwrap_or_else(|| "?".to_string())
        };
        match &e.kind {
            ExprKind::Var(v) => {
                ssa.insert(e.id, format!("%{}", v.name));
            }
            ExprKind::Constant(c) => {
                let label = format!("meta[Constant]{}{}", c.value.shape(), c.value.dtype());
                ssa.insert(e.id, label);
            }
            ExprKind::Call(c) => {
                let id = format!("%{n}");
                n += 1;
                let args: Vec<String> = c.args.iter().map(|a| name_of(a.id, &ssa)).collect();
                let target = match &c.target {
                    CallTarget::Op(op) => op.name().to_string(),
                    CallTarget::Global(g) => format!("@{g}"),
                };
                writeln!(out, "  {id} = {target}({}){}", args.join(", "), ty_of(e.id)).unwrap();
                ssa.insert(e.id, id);
            }
            ExprKind::Tuple(fs) => {
                let id = format!("%{n}");
                n += 1;
                let args: Vec<String> = fs.iter().map(|a| name_of(a.id, &ssa)).collect();
                writeln!(out, "  {id} = ({}){}", args.join(", "), ty_of(e.id)).unwrap();
                ssa.insert(e.id, id);
            }
            ExprKind::TupleGetItem(t, i) => {
                let id = format!("%{n}");
                n += 1;
                writeln!(out, "  {id} = {}.{i}{}", name_of(t.id, &ssa), ty_of(e.id)).unwrap();
                ssa.insert(e.id, id);
            }
        }
    }
    writeln!(
        out,
        "  {}",
        ssa.get(&f.body.id).cloned().unwrap_or_default()
    )
    .unwrap();
    out.push_str("}\n");
}

/// Render the whole module (externals first, `main` last), with checked
/// types inline when the module type-checks.
pub fn print_module(module: &Module) -> String {
    let types = infer_types(module).unwrap_or_default();
    let mut out = String::new();
    let mut names: Vec<&String> = module.functions.keys().collect();
    names.sort_by_key(|n| (n.as_str() == "main") as u8);
    for name in names {
        print_function(name, &module.functions[name], &types, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::expr::var;
    use crate::ty::TensorType;
    use crate::Conv2dAttrs;
    use tvmnp_tensor::rng::TensorRng;

    #[test]
    fn prints_plain_cnn() {
        let mut rng = TensorRng::new(1);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::softmax(builder::batch_flatten(builder::relu(builder::conv2d(
            x.clone(),
            w,
            Conv2dAttrs::same(1),
        ))));
        let m = Module::from_main(Function::new(vec![x], y));
        let text = print_module(&m);
        assert!(text.contains("def @main(%x: Tensor[(1, 3, 8, 8), float32])"));
        assert!(text.contains("nn.conv2d"));
        assert!(text.contains("nn.softmax"));
        assert!(text.contains("/* Tensor[(1, 256), float32] */"));
    }

    #[test]
    fn prints_partitioned_module_with_attrs() {
        use crate::passes::{partition_graph, SupportByName};
        let mut rng = TensorRng::new(2);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::sigmoid(builder::relu(builder::conv2d(
            x.clone(),
            w,
            Conv2dAttrs::same(1),
        )));
        let m = Module::from_main(Function::new(vec![x], y));
        let support = SupportByName::new("neuropilot", ["nn.conv2d", "nn.relu"]);
        let (p, _) = partition_graph(&m, &support).unwrap();
        let text = print_module(&p);
        assert!(text.contains("Compiler=neuropilot"));
        assert!(text.contains("@neuropilot_0("));
        // main calls the external.
        assert!(text.contains("= @neuropilot_0("));
        // main printed last.
        let main_pos = text.find("def @main").unwrap();
        let ext_pos = text.find("def @neuropilot_0").unwrap();
        assert!(ext_pos < main_pos);
    }

    #[test]
    fn prints_tuples() {
        let x = var("x", TensorType::f32([2]));
        let t = crate::expr::tuple(vec![builder::relu(x.clone()), x.clone()]);
        let g = crate::expr::tuple_get(t, 0);
        let m = Module::from_main(Function::new(vec![x], g));
        let text = print_module(&m);
        assert!(text.contains("= (%"));
        assert!(text.contains(".0"));
    }
}
