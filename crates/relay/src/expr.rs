//! The expression AST: a dataflow DAG of reference-counted nodes.

use crate::op::OpKind;
use crate::ty::TensorType;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tvmnp_tensor::Tensor;

static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

/// Reference-counted expression handle. Structural sharing is significant:
/// two `Expr`s with the same `id` are the *same* node (the DAG form TVM
/// calls a "graph-normal-form" module).
pub type Expr = Arc<ExprNode>;

/// One node of the dataflow graph.
#[derive(Debug)]
pub struct ExprNode {
    /// Unique node identity (process-wide).
    pub id: usize,
    /// Node payload.
    pub kind: ExprKind,
}

/// Payload of an expression node.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// A named input placeholder.
    Var(Var),
    /// An embedded weight/constant tensor.
    Constant(Constant),
    /// An operator or global-function call.
    Call(Call),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection.
    TupleGetItem(Expr, usize),
}

/// A free variable (graph input or function parameter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Var {
    /// Variable name, unique within its function.
    pub name: String,
    /// Declared type.
    pub ty: TensorType,
}

/// A constant tensor baked into the graph (weights, biases, quant tables).
#[derive(Debug, Clone)]
pub struct Constant {
    /// The payload.
    pub value: Tensor,
}

/// Call target: a primitive operator or a module-level function (used by
/// the BYOC partitioner for external sub-modules).
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// Primitive operator with attributes.
    Op(OpKind),
    /// Reference to a module-level function by name.
    Global(String),
}

/// A call node.
#[derive(Debug, Clone)]
pub struct Call {
    /// What is being called.
    pub target: CallTarget,
    /// Argument expressions, in operator order.
    pub args: Vec<Expr>,
}

impl Drop for ExprNode {
    /// Iterative drop: a deep chain of `Arc<ExprNode>` would otherwise be
    /// freed by recursion and overflow the stack on long graphs.
    fn drop(&mut self) {
        fn take_children(kind: &mut ExprKind, out: &mut Vec<Expr>) {
            let taken = std::mem::replace(kind, ExprKind::Tuple(Vec::new()));
            match taken {
                ExprKind::Call(c) => out.extend(c.args),
                ExprKind::Tuple(fs) => out.extend(fs),
                ExprKind::TupleGetItem(t, _) => out.push(t),
                ExprKind::Var(_) | ExprKind::Constant(_) => {}
            }
        }
        let mut stack: Vec<Expr> = Vec::new();
        take_children(&mut self.kind, &mut stack);
        while let Some(e) = stack.pop() {
            if let Some(mut node) = Arc::into_inner(e) {
                take_children(&mut node.kind, &mut stack);
            }
        }
    }
}

/// Allocate a fresh node around `kind`.
pub fn mk(kind: ExprKind) -> Expr {
    Arc::new(ExprNode {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        kind,
    })
}

/// Build a variable node.
pub fn var(name: impl Into<String>, ty: TensorType) -> Expr {
    mk(ExprKind::Var(Var {
        name: name.into(),
        ty,
    }))
}

/// Build a constant node.
pub fn constant(value: Tensor) -> Expr {
    mk(ExprKind::Constant(Constant { value }))
}

/// Build a primitive-op call node.
pub fn call(op: OpKind, args: Vec<Expr>) -> Expr {
    mk(ExprKind::Call(Call {
        target: CallTarget::Op(op),
        args,
    }))
}

/// Build a global-function call node.
pub fn call_global(name: impl Into<String>, args: Vec<Expr>) -> Expr {
    mk(ExprKind::Call(Call {
        target: CallTarget::Global(name.into()),
        args,
    }))
}

/// Build a tuple node.
pub fn tuple(fields: Vec<Expr>) -> Expr {
    mk(ExprKind::Tuple(fields))
}

/// Build a tuple-projection node.
pub fn tuple_get(tuple: Expr, index: usize) -> Expr {
    mk(ExprKind::TupleGetItem(tuple, index))
}

impl ExprNode {
    /// Direct dataflow inputs of this node.
    pub fn args(&self) -> Vec<Expr> {
        match &self.kind {
            ExprKind::Var(_) | ExprKind::Constant(_) => Vec::new(),
            ExprKind::Call(c) => c.args.clone(),
            ExprKind::Tuple(fs) => fs.clone(),
            ExprKind::TupleGetItem(t, _) => vec![t.clone()],
        }
    }

    /// The primitive op kind, when this is a primitive call.
    pub fn op(&self) -> Option<&OpKind> {
        match &self.kind {
            ExprKind::Call(Call {
                target: CallTarget::Op(op),
                ..
            }) => Some(op),
            _ => None,
        }
    }

    /// Short human-readable label for diagnostics.
    pub fn label(&self) -> String {
        match &self.kind {
            ExprKind::Var(v) => format!("%{}", v.name),
            ExprKind::Constant(c) => format!("const{}", c.value.shape()),
            ExprKind::Call(c) => match &c.target {
                CallTarget::Op(op) => op.name().to_string(),
                CallTarget::Global(g) => format!("@{g}"),
            },
            ExprKind::Tuple(fs) => format!("tuple/{}", fs.len()),
            ExprKind::TupleGetItem(_, i) => format!(".{i}"),
        }
    }
}

/// A function: named parameters and a body DAG, plus string attributes
/// (the BYOC flow stores `Compiler` / `global_symbol` / `Primitive` here,
/// exactly like TVM).
#[derive(Debug, Clone)]
pub struct Function {
    /// Parameters (each an `ExprKind::Var` node, shared with the body).
    pub params: Vec<Expr>,
    /// Result expression.
    pub body: Expr,
    /// Function attributes.
    pub attrs: BTreeMap<String, String>,
}

impl Function {
    /// Function with no attributes.
    pub fn new(params: Vec<Expr>, body: Expr) -> Self {
        Function {
            params,
            body,
            attrs: BTreeMap::new(),
        }
    }

    /// Attach an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// The external-compiler name if this function was produced by the BYOC
    /// partitioner (`Compiler` attribute).
    pub fn compiler(&self) -> Option<&str> {
        self.attrs.get("Compiler").map(String::as_str)
    }

    /// Count call nodes in the body (diagnostics; Fig. 4's subgraph count).
    pub fn num_calls(&self) -> usize {
        let mut n = 0;
        crate::visit::post_order(&self.body, |e| {
            if matches!(e.kind, ExprKind::Call(_)) {
                n += 1;
            }
        });
        n
    }
}

/// A module: a set of named functions with `main` as entry, mirroring
/// TVM's `IRModule`.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions by global name.
    pub functions: BTreeMap<String, Function>,
}

impl Module {
    /// Module holding just `main`.
    pub fn from_main(f: Function) -> Self {
        let mut m = Module::default();
        m.functions.insert("main".to_string(), f);
        m
    }

    /// The entry function.
    pub fn main(&self) -> &Function {
        self.functions
            .get("main")
            .expect("module has no main function")
    }

    /// Names of functions carrying a `Compiler` attribute (external
    /// sub-modules produced by partitioning).
    pub fn external_functions(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|(_, f)| f.compiler().is_some())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Number of external (partitioned) sub-functions.
    pub fn num_subgraphs(&self) -> usize {
        self.external_functions().len()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, func) in &self.functions {
            write!(f, "def @{name}(")?;
            for (i, p) in func.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", p.label())?;
            }
            writeln!(f, ") {{ {} calls }}", func.num_calls())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_tensor::DType;

    fn tt() -> TensorType {
        TensorType::new([1, 4], DType::F32)
    }

    #[test]
    fn ids_unique() {
        let a = var("a", tt());
        let b = var("b", tt());
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn structural_sharing_visible() {
        let x = var("x", tt());
        let y = call(OpKind::Relu, vec![x.clone()]);
        let z = call(OpKind::Add, vec![y.clone(), y.clone()]);
        let args = z.args();
        assert_eq!(args[0].id, args[1].id, "shared node must keep one id");
    }

    #[test]
    fn function_attrs_and_compiler() {
        let x = var("x", tt());
        let f = Function::new(vec![x.clone()], x).with_attr("Compiler", "neuropilot");
        assert_eq!(f.compiler(), Some("neuropilot"));
    }

    #[test]
    fn module_counts_externals() {
        let x = var("x", tt());
        let main = Function::new(vec![x.clone()], x.clone());
        let mut m = Module::from_main(main);
        m.functions.insert(
            "nir_0".into(),
            Function::new(vec![x.clone()], x).with_attr("Compiler", "neuropilot"),
        );
        assert_eq!(m.num_subgraphs(), 1);
        assert_eq!(m.external_functions(), vec!["nir_0"]);
    }

    #[test]
    fn labels() {
        let x = var("x", tt());
        assert_eq!(x.label(), "%x");
        let c = call(OpKind::Relu, vec![x]);
        assert_eq!(c.label(), "nn.relu");
    }
}
