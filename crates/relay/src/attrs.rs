//! Operator attribute structs.
//!
//! QNN attributes deliberately follow Relay's *operator-oriented* scheme:
//! the quantization parameters of the inputs and output ride on the call
//! site of the `qnn.*` op, not on the tensors. The NeuroPilot converter
//! (paper §3.3) re-derives per-tensor parameters from these.

use serde::{Deserialize, Serialize};
use tvmnp_tensor::{DType, QuantParams};

/// `nn.conv2d` / `qnn.conv2d` spatial attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conv2dAttrs {
    /// Stride (h, w).
    pub strides: (usize, usize),
    /// Padding (top, left, bottom, right).
    pub padding: (usize, usize, usize, usize),
    /// Dilation (h, w).
    pub dilation: (usize, usize),
    /// Feature groups (`groups == in_channels` is depthwise).
    pub groups: usize,
}

impl Default for Conv2dAttrs {
    fn default() -> Self {
        Conv2dAttrs {
            strides: (1, 1),
            padding: (0, 0, 0, 0),
            dilation: (1, 1),
            groups: 1,
        }
    }
}

impl Conv2dAttrs {
    /// Symmetric "same" padding constructor.
    pub fn same(pad: usize) -> Self {
        Conv2dAttrs {
            padding: (pad, pad, pad, pad),
            ..Default::default()
        }
    }

    /// Convert into the kernel-side parameter struct.
    pub fn to_kernel(&self) -> tvmnp_tensor::kernels::Conv2dParams {
        tvmnp_tensor::kernels::Conv2dParams {
            strides: self.strides,
            padding: self.padding,
            dilation: self.dilation,
            groups: self.groups,
        }
    }
}

/// `nn.max_pool2d` / `nn.avg_pool2d` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pool2dAttrs {
    /// Window (h, w).
    pub kernel: (usize, usize),
    /// Stride (h, w).
    pub strides: (usize, usize),
    /// Padding (top, left, bottom, right).
    pub padding: (usize, usize, usize, usize),
    /// Average-pool denominator policy.
    pub count_include_pad: bool,
}

impl Pool2dAttrs {
    /// Square window with stride = window.
    pub fn square(k: usize) -> Self {
        Pool2dAttrs {
            kernel: (k, k),
            strides: (k, k),
            padding: (0, 0, 0, 0),
            count_include_pad: false,
        }
    }

    /// Convert into the kernel-side parameter struct.
    pub fn to_kernel(&self) -> tvmnp_tensor::kernels::Pool2dParams {
        tvmnp_tensor::kernels::Pool2dParams {
            kernel: self.kernel,
            strides: self.strides,
            padding: self.padding,
            count_include_pad: self.count_include_pad,
        }
    }
}

/// `nn.batch_norm` attributes (inference form; returns a single tensor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchNormAttrs {
    /// Variance stabilizer.
    pub epsilon: f32,
}

/// `nn.leaky_relu` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakyReluAttrs {
    /// Negative-slope coefficient.
    pub alpha: f32,
}

/// `clip` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClipAttrs {
    /// Lower bound.
    pub min: f32,
    /// Upper bound.
    pub max: f32,
}

/// `reshape` attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshapeAttrs {
    /// Target shape (fully static).
    pub new_shape: Vec<usize>,
}

/// `transpose` attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransposeAttrs {
    /// Axis permutation.
    pub axes: Vec<usize>,
}

/// `concatenate` / `qnn.concatenate` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcatAttrs {
    /// Axis to join along.
    pub axis: usize,
}

/// `nn.pad` attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PadAttrs {
    /// Per-dimension (before, after).
    pub pads: Vec<(usize, usize)>,
    /// Fill value (real domain).
    pub value: f32,
}

/// `strided_slice` attributes (unit strides).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceAttrs {
    /// Inclusive begin per dimension.
    pub begin: Vec<usize>,
    /// Exclusive end per dimension.
    pub end: Vec<usize>,
}

/// `image.resize2d` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resize2dAttrs {
    /// Target height.
    pub out_h: usize,
    /// Target width.
    pub out_w: usize,
    /// `true` = bilinear, `false` = nearest.
    pub bilinear: bool,
}

/// `mean` attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeanAttrs {
    /// Axes reduced away (keepdims = false).
    pub axes: Vec<usize>,
}

/// `qnn.quantize` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantizeAttrs {
    /// Output quantization parameters.
    pub out: QuantParams,
    /// Output storage type.
    pub out_dtype: DType,
}

/// `qnn.dequantize` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DequantizeAttrs {
    /// Input quantization parameters.
    pub input: QuantParams,
}

/// `qnn.requantize` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequantizeAttrs {
    /// Input quantization parameters.
    pub input: QuantParams,
    /// Output quantization parameters.
    pub output: QuantParams,
    /// Output storage type.
    pub out_dtype: DType,
}

/// `qnn.conv2d` attributes: spatial attrs + operator-oriented quant params.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QnnConv2dAttrs {
    /// Spatial attributes (shared with the float op).
    pub conv: Conv2dAttrs,
    /// Input activation quantization.
    pub input_q: QuantParams,
    /// Weight quantization.
    pub weight_q: QuantParams,
    /// Output activation quantization.
    pub output_q: QuantParams,
    /// Output storage type.
    pub out_dtype: DType,
}

/// `qnn.dense` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QnnDenseAttrs {
    /// Input activation quantization.
    pub input_q: QuantParams,
    /// Weight quantization.
    pub weight_q: QuantParams,
    /// Output activation quantization.
    pub output_q: QuantParams,
    /// Output storage type.
    pub out_dtype: DType,
}

/// `qnn.add` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QnnAddAttrs {
    /// Left operand quantization.
    pub lhs_q: QuantParams,
    /// Right operand quantization.
    pub rhs_q: QuantParams,
    /// Output quantization.
    pub output_q: QuantParams,
    /// Output storage type.
    pub out_dtype: DType,
}

/// `qnn.concatenate` attributes: per-input params plus output params.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QnnConcatAttrs {
    /// Join axis.
    pub axis: usize,
    /// Quantization of each input, in order.
    pub input_qs: Vec<QuantParams>,
    /// Output quantization.
    pub output_q: QuantParams,
}
