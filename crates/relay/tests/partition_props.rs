//! Property-based tests: BYOC partitioning and constant folding preserve
//! program semantics on randomly generated dataflow graphs.

use proptest::prelude::*;
use std::collections::HashMap;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::infer::infer_types;
use tvmnp_relay::interp::run_module;
use tvmnp_relay::passes::{fold_constants, partition_graph, CompilerSupport};
use tvmnp_relay::{OpKind, TensorType, Type};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::Tensor;

/// Build a random DAG of unary/binary float ops over a `[1, 4, 6, 6]` input.
/// `choices` drives both topology and op selection, so proptest shrinks it.
fn random_graph(choices: &[u8], seed: u64) -> (Module, Tensor) {
    let mut rng = TensorRng::new(seed);
    let x = var("x", TensorType::f32([1, 4, 6, 6]));
    let mut nodes: Vec<Expr> = vec![x.clone()];
    for (i, &c) in choices.iter().enumerate() {
        let pick = |k: usize| nodes[(c as usize + k * 7 + i) % nodes.len()].clone();
        let new = match c % 8 {
            0 => call(OpKind::Relu, vec![pick(0)]),
            1 => call(OpKind::Sigmoid, vec![pick(0)]),
            2 => call(OpKind::Tanh, vec![pick(0)]),
            3 => call(OpKind::Add, vec![pick(0), pick(1)]),
            4 => call(OpKind::Multiply, vec![pick(0), pick(1)]),
            5 => call(OpKind::Maximum, vec![pick(0), pick(1)]),
            6 => builder::conv2d(
                pick(0),
                rng.uniform_f32([4, 4, 3, 3], -0.3, 0.3),
                tvmnp_relay::Conv2dAttrs::same(1),
            ),
            _ => call(OpKind::Negative, vec![pick(0)]),
        };
        nodes.push(new);
    }
    let body = nodes.last().unwrap().clone();
    let m = Module::from_main(Function::new(vec![x], body));
    let input = rng.uniform_f32([1, 4, 6, 6], -1.0, 1.0);
    (m, input)
}

/// Support oracle from a bitmask over the op vocabulary.
struct MaskSupport(u8);

impl CompilerSupport for MaskSupport {
    fn name(&self) -> &str {
        "neuropilot"
    }

    fn supported(&self, op: &OpKind, _args: &[&Type]) -> bool {
        let bit = match op {
            OpKind::Relu => 0,
            OpKind::Sigmoid => 1,
            OpKind::Tanh => 2,
            OpKind::Add => 3,
            OpKind::Multiply => 4,
            OpKind::Maximum => 5,
            OpKind::Conv2d(_) => 6,
            _ => 7,
        };
        (self.0 >> bit) & 1 == 1
    }
}

fn eval(m: &Module, input: &Tensor) -> Tensor {
    let mut ins = HashMap::new();
    ins.insert("x".to_string(), input.clone());
    run_module(m, &ins).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitioning any random graph under any support mask yields a module
    /// that type checks and evaluates bit-identically to the original.
    #[test]
    fn partition_preserves_semantics(
        choices in prop::collection::vec(0u8..=255, 1..24),
        mask in 0u8..=255,
        seed in 0u64..10_000,
    ) {
        let (m, input) = random_graph(&choices, seed);
        let reference = eval(&m, &input);
        let (p, report) = partition_graph(&m, &MaskSupport(mask)).unwrap();
        prop_assert!(infer_types(&p).is_ok());
        prop_assert_eq!(p.num_subgraphs(), report.num_subgraphs);
        let out = eval(&p, &input);
        prop_assert!(reference.bit_eq(&out), "partitioned output diverged");
    }

    /// With full support the whole (connected) graph collapses into
    /// exactly one external subgraph and no host calls remain.
    #[test]
    fn full_support_offloads_everything(
        choices in prop::collection::vec(0u8..=255, 1..16),
        seed in 0u64..10_000,
    ) {
        let (m, input) = random_graph(&choices, seed);
        let (p, report) = partition_graph(&m, &MaskSupport(0xFF)).unwrap();
        prop_assert_eq!(report.host_calls, 0);
        prop_assert_eq!(report.num_subgraphs, 1);
        prop_assert!(eval(&m, &input).bit_eq(&eval(&p, &input)));
    }

    /// Constant folding preserves semantics.
    #[test]
    fn fold_constants_preserves_semantics(
        choices in prop::collection::vec(0u8..=255, 1..16),
        seed in 0u64..10_000,
    ) {
        let (m, input) = random_graph(&choices, seed);
        let folded = fold_constants(&m);
        prop_assert!(infer_types(&folded).is_ok());
        prop_assert!(eval(&m, &input).bit_eq(&eval(&folded, &input)));
    }

    /// Partitioning is idempotent on the host remainder: partitioning an
    /// already-partitioned module adds no new subgraphs when nothing is
    /// supported.
    #[test]
    fn repartition_with_empty_support_is_stable(
        choices in prop::collection::vec(0u8..=255, 1..12),
        mask in 0u8..=255,
        seed in 0u64..10_000,
    ) {
        let (m, _input) = random_graph(&choices, seed);
        let (p1, r1) = partition_graph(&m, &MaskSupport(mask)).unwrap();
        let (p2, r2) = partition_graph(&p1, &MaskSupport(0)).unwrap();
        prop_assert_eq!(r2.num_subgraphs, 0);
        prop_assert_eq!(p2.num_subgraphs(), r1.num_subgraphs);
    }
}
