//! `tvmnp-profile` — measured-profile store, differential regression
//! attribution, and telemetry-calibrated cost models.
//!
//! The benches gate on opaque workload medians and the scheduler trusts
//! the analytic `tvmnp-hwsim::CostModel` alone; this crate closes the
//! loop from *measured* spans back to both (ROADMAP item 2's feedback
//! signal). Three pieces:
//!
//! * **[`store`]** — [`Profile`]/[`ProfileStore`]: an on-disk measured-
//!   cost database, content-addressed by (workload fingerprint ×
//!   permutation × quant config × SoC). Telemetry snapshots from any
//!   detail-mode run ([`tvmnp_telemetry::set_detail`]) are binned into
//!   per-(work kind, device, kernel class) cells, each holding a
//!   mergeable [`tvmnp_observe::QuantileSketch`] of kernel latencies
//!   plus exact µs / analytic-µs / µJ totals. Files are byte-
//!   deterministic under a fixed seed.
//! * **[`diff`]** — [`ProfileDiff`]: compares two profiles and
//!   attributes latency/energy movement to specific cells with
//!   significance filtering, rendered as a ranked attribution table.
//!   The bench regression gate prints it so a failure names the
//!   responsible ops ("mac on apu regressed 2.0×"), not just a median.
//! * **[`calibrate`]** — [`CalibratedCostModel`]: fits per-(device,
//!   kind) scale factors from a measured profile back onto the analytic
//!   cost model, reports measured-vs-analytic residuals, and flags
//!   drifted cells. `to_cost_model()` returns a `CostModel` whose
//!   predictions track the measurements.

pub mod calibrate;
pub mod diff;
pub mod store;

pub use calibrate::{CalibratedCostModel, CellResidual, DRIFT_THRESHOLD};
pub use diff::{diff_profiles, CellDelta, DiffOptions, ProfileDiff};
pub use store::{
    parse_cell_key, validate_profile, Profile, ProfileCell, ProfileKey, ProfileStore,
    PROFILE_SCHEMA_VERSION,
};
