//! Calibration: fit the analytic cost model to a measured profile.
//!
//! For every (device, work kind) pair observed in a profile, the fitted
//! scale is `Σ measured µs / Σ analytic µs` — the maximum-likelihood
//! multiplier under the model's multiplicative error. Feeding the scales
//! back through [`tvmnp_hwsim::CostModel::with_device_kind_scales`]
//! yields a cost model whose predictions track the measurements; the
//! per-cell residual report quantifies the fit, and the drift detector
//! names cells whose divergence exceeds a threshold — the feedback
//! signal ROADMAP item 2's placement search consumes.

use crate::store::{parse_cell_key, Profile};
use std::collections::BTreeMap;
use tvmnp_hwsim::{CostModel, DeviceKind, KernelClass, WorkKind};

/// Default drift threshold: a fitted scale more than 25% away from 1.0
/// means the analytic model misses that cell badly enough to matter.
pub const DRIFT_THRESHOLD: f64 = 0.25;

/// Measured-vs-analytic fit for one `kind/device/class` cell.
#[derive(Debug, Clone)]
pub struct CellResidual {
    /// `kind/device/class` cell key.
    pub cell: String,
    /// Typed cell coordinates.
    pub kind: WorkKind,
    /// Device of the cell.
    pub device: DeviceKind,
    /// Kernel class of the cell.
    pub class: KernelClass,
    /// Scale fitted for this cell's (device, kind) pair.
    pub scale: f64,
    /// Measured total, µs.
    pub measured_us: f64,
    /// Unscaled analytic total, µs.
    pub analytic_us: f64,
    /// |measured − analytic| before calibration, µs.
    pub uncalibrated_err_us: f64,
    /// |measured − scale·analytic| after calibration, µs.
    pub calibrated_err_us: f64,
}

impl CellResidual {
    /// Whether this cell's fitted scale exceeds `threshold` drift.
    pub fn drifted(&self, threshold: f64) -> bool {
        (self.scale - 1.0).abs() > threshold
    }
}

/// Per-(device, kind) scale factors fitted from a measured profile, with
/// the residual report of the fit.
#[derive(Debug, Clone)]
pub struct CalibratedCostModel {
    base: CostModel,
    scales: BTreeMap<String, (DeviceKind, WorkKind, f64)>,
    /// Per-cell fit report, in deterministic cell-key order.
    pub residuals: Vec<CellResidual>,
}

impl CalibratedCostModel {
    /// Fit scales from `profile` onto `base`'s SoC. Cells whose analytic
    /// total is zero (nothing to scale) keep scale 1.0.
    pub fn fit(profile: &Profile, base: &CostModel) -> CalibratedCostModel {
        // Aggregate measured/analytic totals per (device, kind): the
        // scale tables of CostModel have that granularity, so classes
        // sharing a pair share a scale (residuals expose the spread).
        let mut totals: BTreeMap<String, (DeviceKind, WorkKind, f64, f64)> = BTreeMap::new();
        for (cell_key, cell) in &profile.cells {
            let Some((kind, device, _class)) = parse_cell_key(cell_key) else {
                continue;
            };
            let slot = totals
                .entry(format!("{}/{}", kind.name(), device.name()))
                .or_insert((device, kind, 0.0, 0.0));
            slot.2 += cell.total_us;
            slot.3 += cell.total_analytic_us;
        }
        let scales: BTreeMap<String, (DeviceKind, WorkKind, f64)> = totals
            .into_iter()
            .map(|(pair, (device, kind, measured, analytic))| {
                let scale = if analytic > 0.0 {
                    measured / analytic
                } else {
                    1.0
                };
                (pair, (device, kind, scale))
            })
            .collect();
        let mut residuals = Vec::new();
        for (cell_key, cell) in &profile.cells {
            let Some((kind, device, class)) = parse_cell_key(cell_key) else {
                continue;
            };
            let scale = scales
                .get(&format!("{}/{}", kind.name(), device.name()))
                .map(|&(_, _, s)| s)
                .unwrap_or(1.0);
            residuals.push(CellResidual {
                cell: cell_key.clone(),
                kind,
                device,
                class,
                scale,
                measured_us: cell.total_us,
                analytic_us: cell.total_analytic_us,
                uncalibrated_err_us: (cell.total_us - cell.total_analytic_us).abs(),
                calibrated_err_us: (cell.total_us - scale * cell.total_analytic_us).abs(),
            });
        }
        CalibratedCostModel {
            base: base.unscaled(),
            scales,
            residuals,
        }
    }

    /// Fitted scale for a (device, kind) pair (1.0 when unobserved).
    pub fn scale(&self, device: DeviceKind, kind: WorkKind) -> f64 {
        self.scales
            .get(&format!("{}/{}", kind.name(), device.name()))
            .map(|&(_, _, s)| s)
            .unwrap_or(1.0)
    }

    /// Total absolute residual (µs) before and after calibration. The
    /// calibrated figure is never worse per (device, kind) pair — the
    /// fitted scale is exact on the pair's aggregate — so it shrinks
    /// whenever the analytic model missed anywhere.
    pub fn residual_us(&self) -> (f64, f64) {
        let uncal = self.residuals.iter().map(|r| r.uncalibrated_err_us).sum();
        let cal = self.residuals.iter().map(|r| r.calibrated_err_us).sum();
        (uncal, cal)
    }

    /// Cells whose fitted scale drifts beyond `threshold` from 1.0 —
    /// where the analytic model can no longer be trusted unscaled.
    pub fn drifted(&self, threshold: f64) -> Vec<&CellResidual> {
        self.residuals
            .iter()
            .filter(|r| r.drifted(threshold))
            .collect()
    }

    /// The calibrated cost model: the base SoC with every fitted scale
    /// applied as a (device, kind) multiplier.
    pub fn to_cost_model(&self) -> CostModel {
        self.base.clone().with_device_kind_scales(
            self.scales
                .values()
                .map(|&(device, kind, scale)| (device, kind, scale)),
        )
    }

    /// Render the residual/drift report (aligned fixed-width text).
    pub fn render(&self, drift_threshold: f64) -> String {
        let (uncal, cal) = self.residual_us();
        let mut out = String::new();
        out.push_str(&format!(
            "calibration residuals: {uncal:.1} us uncalibrated -> {cal:.1} us calibrated\n"
        ));
        out.push_str(&format!(
            "  {:<34} {:>8} {:>12} {:>12} {:>10} {:>10}\n",
            "cell", "scale", "measured us", "analytic us", "err before", "err after"
        ));
        for r in &self.residuals {
            out.push_str(&format!(
                "  {:<34} {:>7.3}x {:>12.1} {:>12.1} {:>10.2} {:>10.2}{}\n",
                r.cell,
                r.scale,
                r.measured_us,
                r.analytic_us,
                r.uncalibrated_err_us,
                r.calibrated_err_us,
                if r.drifted(drift_threshold) {
                    "  DRIFT"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ProfileKey;
    use tvmnp_hwsim::WorkItem;

    fn key() -> ProfileKey {
        ProfileKey {
            workload: "t".to_string(),
            permutation: "byoc-cpu-apu".to_string(),
            quant: "f32".to_string(),
            soc: "dimensity-800".to_string(),
        }
    }

    /// A profile where mac-on-apu measured 2x its analytic prediction and
    /// everything else matched.
    fn skewed_profile() -> Profile {
        let mut p = Profile::new(key());
        for _ in 0..10 {
            p.record("mac", "apu", "vendor_tuned", 200.0, 100.0, 9.0);
            p.record("elementwise", "cpu", "tvm_untuned", 4.0, 4.0, 0.3);
        }
        p
    }

    #[test]
    fn fit_recovers_injected_scale_and_shrinks_residuals() {
        let cal = CalibratedCostModel::fit(&skewed_profile(), &CostModel::default());
        assert!((cal.scale(DeviceKind::Apu, WorkKind::MacHeavy) - 2.0).abs() < 1e-9);
        assert_eq!(cal.scale(DeviceKind::Cpu, WorkKind::Elementwise), 1.0);
        assert_eq!(cal.scale(DeviceKind::Gpu, WorkKind::Reduction), 1.0);
        let (uncal, calres) = cal.residual_us();
        assert!(uncal > 0.0);
        assert!(calres < uncal, "calibration must shrink residuals");
        let drifted = cal.drifted(DRIFT_THRESHOLD);
        assert_eq!(drifted.len(), 1);
        assert_eq!(drifted[0].cell, "mac/apu/vendor_tuned");
        assert!(cal.render(DRIFT_THRESHOLD).contains("DRIFT"));
    }

    #[test]
    fn calibrated_model_predicts_measured_time() {
        let cal = CalibratedCostModel::fit(&skewed_profile(), &CostModel::default());
        let model = cal.to_cost_model();
        let w = WorkItem {
            macs: 50_000_000,
            bytes_in: 1 << 20,
            bytes_out: 1 << 18,
            int8: true,
            kind: WorkKind::MacHeavy,
        };
        let analytic =
            CostModel::default().kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        let calibrated = model.kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        assert!((calibrated - 2.0 * analytic).abs() < 1e-9);
        // Unobserved pairs stay at the analytic prediction.
        let cpu = model.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        let cpu_ref =
            CostModel::default().kernel_body_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        assert_eq!(cpu, cpu_ref);
    }

    #[test]
    fn perfect_profile_fits_identity() {
        let mut p = Profile::new(key());
        for _ in 0..5 {
            p.record("reduction", "gpu", "vendor_tuned", 7.0, 7.0, 0.5);
        }
        let cal = CalibratedCostModel::fit(&p, &CostModel::default());
        assert_eq!(cal.scale(DeviceKind::Gpu, WorkKind::Reduction), 1.0);
        let (uncal, calres) = cal.residual_us();
        assert_eq!(uncal, 0.0);
        assert_eq!(calres, 0.0);
        assert!(cal.drifted(DRIFT_THRESHOLD).is_empty());
    }
}
