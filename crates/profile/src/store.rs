//! The measured-profile database: in-memory [`Profile`]s binned from
//! telemetry snapshots, and the content-addressed on-disk
//! [`ProfileStore`] they persist into.
//!
//! A profile is a map from `kind/device/class` cells (e.g.
//! `mac/apu/vendor_tuned`) to latency/energy aggregates. Samples come
//! from detail-mode executor spans — `executor.node` for host ops,
//! `executor.kernel` for the internal kernels of external modules —
//! which carry `kind`, `energy_uj`, and `analytic_us` args only while
//! [`tvmnp_telemetry::set_detail`] is on. Aggregate external-node spans
//! carry no `kind` and are skipped, so nothing is counted twice.
//!
//! Everything serializes to sorted-key JSON with exact float formatting:
//! the same seeded run produces byte-identical profile files, which is
//! what lets CI diff them and the bench gate cache them.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use tvmnp_hwsim::{DeviceKind, KernelClass, WorkKind};
use tvmnp_observe::QuantileSketch;
use tvmnp_telemetry::Snapshot;

/// Version stamp written into every profile file.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Identity of one measured profile: what ran and how it was compiled.
/// Two runs with the same key land in the same store slot and are
/// directly comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileKey {
    /// Workload (or module) fingerprint, e.g. `fig4`.
    pub workload: String,
    /// Target permutation the run was compiled for, e.g. `byoc-cpu-apu`.
    pub permutation: String,
    /// Quantization config, e.g. `f32` or `int8`.
    pub quant: String,
    /// SoC / device the cost model simulated, e.g. `dimensity-800`.
    pub soc: String,
}

impl ProfileKey {
    /// Canonical string form (the content-address input).
    pub fn canonical(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.workload, self.permutation, self.quant, self.soc
        )
    }

    /// Stable 16-hex-digit content hash of the canonical key (FNV-1a).
    pub fn hash(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// File name this key addresses inside a [`ProfileStore`].
    pub fn file_name(&self) -> String {
        let sanitize = |s: &str| {
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
        };
        format!(
            "profile-{}-{}-{}-{}.json",
            sanitize(&self.workload),
            sanitize(&self.permutation),
            sanitize(&self.quant),
            &self.hash()[..8]
        )
    }
}

/// One `(work kind, device, kernel class)` cell of a profile.
#[derive(Debug, Clone)]
pub struct ProfileCell {
    /// Samples observed.
    pub count: u64,
    /// Exact sum of measured simulated time, µs.
    pub total_us: f64,
    /// Exact sum of the unscaled analytic predictions, µs.
    pub total_analytic_us: f64,
    /// Exact sum of estimated energy, µJ.
    pub total_energy_uj: f64,
    /// Mergeable latency distribution of the per-kernel samples.
    pub sketch: QuantileSketch,
}

impl ProfileCell {
    fn new() -> ProfileCell {
        ProfileCell {
            count: 0,
            total_us: 0.0,
            total_analytic_us: 0.0,
            total_energy_uj: 0.0,
            sketch: QuantileSketch::default(),
        }
    }

    /// Mean measured latency, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }

    /// Fold another cell's samples in (used when merging shard profiles).
    pub fn merge(&mut self, other: &ProfileCell) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.total_analytic_us += other.total_analytic_us;
        self.total_energy_uj += other.total_energy_uj;
        self.sketch.merge(&other.sketch);
    }
}

/// Parse a `kind/device/class` cell key back into typed components.
pub fn parse_cell_key(key: &str) -> Option<(WorkKind, DeviceKind, KernelClass)> {
    let mut it = key.splitn(3, '/');
    let kind = WorkKind::parse(it.next()?)?;
    let device = DeviceKind::parse(it.next()?)?;
    let class = match it.next()? {
        "tvm_untuned" => KernelClass::TvmUntuned,
        "vendor_tuned" => KernelClass::VendorTuned,
        _ => return None,
    };
    Some((kind, device, class))
}

fn class_label(class: KernelClass) -> &'static str {
    match class {
        KernelClass::TvmUntuned => "tvm_untuned",
        KernelClass::VendorTuned => "vendor_tuned",
    }
}

/// A measured cost profile: per-cell latency/energy aggregates under one
/// [`ProfileKey`].
#[derive(Debug, Clone)]
pub struct Profile {
    /// Identity of the run this profile measures.
    pub key: ProfileKey,
    /// `kind/device/class` → aggregates, deterministically ordered.
    pub cells: BTreeMap<String, ProfileCell>,
}

impl Profile {
    /// An empty profile under `key`.
    pub fn new(key: ProfileKey) -> Profile {
        Profile {
            key,
            cells: BTreeMap::new(),
        }
    }

    /// Record one kernel sample into its cell.
    pub fn record(
        &mut self,
        kind: &str,
        device: &str,
        class: &str,
        us: f64,
        analytic_us: f64,
        energy_uj: f64,
    ) {
        let cell = self
            .cells
            .entry(format!("{kind}/{device}/{class}"))
            .or_insert_with(ProfileCell::new);
        cell.count += 1;
        cell.total_us += us;
        cell.total_analytic_us += analytic_us;
        cell.total_energy_uj += energy_uj;
        cell.sketch.insert(us);
    }

    /// Typed variant of [`Profile::record`].
    pub fn record_typed(
        &mut self,
        kind: WorkKind,
        device: DeviceKind,
        class: KernelClass,
        us: f64,
        analytic_us: f64,
        energy_uj: f64,
    ) {
        self.record(
            kind.name(),
            device.name(),
            class_label(class),
            us,
            analytic_us,
            energy_uj,
        );
    }

    /// Bin every profile-grade span of a telemetry snapshot into cells.
    /// Only sim spans named `executor.node` / `executor.kernel` that
    /// carry a `kind` arg qualify — i.e. spans recorded in detail mode.
    /// Aggregate external-node spans (no `kind`) are skipped so their
    /// per-kernel children are not double-counted. Returns the number of
    /// samples ingested.
    pub fn ingest_snapshot(&mut self, snapshot: &Snapshot) -> usize {
        let mut ingested = 0;
        for span in snapshot.sim_spans() {
            if span.name != "executor.node" && span.name != "executor.kernel" {
                continue;
            }
            let arg = |key: &str| {
                span.args
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.as_str())
            };
            let Some(kind) = arg("kind") else { continue };
            let device = arg("device").unwrap_or("cpu").to_string();
            let class = arg("class").unwrap_or("tvm_untuned").to_string();
            let parse = |v: Option<&str>| v.and_then(|s| s.parse::<f64>().ok());
            let energy_uj = parse(arg("energy_uj")).unwrap_or(0.0);
            let analytic_us = parse(arg("analytic_us")).unwrap_or(span.dur_us);
            let kind = kind.to_string();
            self.record(&kind, &device, &class, span.dur_us, analytic_us, energy_uj);
            ingested += 1;
        }
        ingested
    }

    /// Total measured time across all cells, µs.
    pub fn total_us(&self) -> f64 {
        self.cells.values().map(|c| c.total_us).sum()
    }

    /// Total samples across all cells.
    pub fn total_count(&self) -> u64 {
        self.cells.values().map(|c| c.count).sum()
    }

    /// Fold another profile's cells in (shard merge). Keys must match.
    pub fn merge(&mut self, other: &Profile) {
        for (key, cell) in &other.cells {
            self.cells
                .entry(key.clone())
                .or_insert_with(ProfileCell::new)
                .merge(cell);
        }
    }

    /// Serialize to a JSON value (sorted keys, exact floats — the
    /// byte-determinism contract). Mutable because the cell sketches
    /// flush their insert buffers first.
    pub fn to_json(&mut self) -> Value {
        let mut cells = serde_json::Map::new();
        for (key, cell) in self.cells.iter_mut() {
            cells.insert(
                key.clone(),
                json!({
                    "count": cell.count,
                    "sketch": cell.sketch.to_json(),
                    "total_analytic_us": cell.total_analytic_us,
                    "total_energy_uj": cell.total_energy_uj,
                    "total_us": cell.total_us
                }),
            );
        }
        let key = json!({
            "permutation": self.key.permutation,
            "quant": self.key.quant,
            "soc": self.key.soc,
            "workload": self.key.workload
        });
        json!({
            "cells": Value::Object(cells),
            "key": key,
            "schema_version": PROFILE_SCHEMA_VERSION
        })
    }

    /// Rebuild a profile from [`Profile::to_json`] output.
    pub fn from_json(doc: &Value) -> Result<Profile, ProfileError> {
        if let Some(problem) = validate_profile(doc) {
            return Err(ProfileError(problem));
        }
        let key_field = |name: &str| {
            doc["key"][name]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| ProfileError(format!("key.{name} missing")))
        };
        let key = ProfileKey {
            workload: key_field("workload")?,
            permutation: key_field("permutation")?,
            quant: key_field("quant")?,
            soc: key_field("soc")?,
        };
        let mut profile = Profile::new(key);
        let cells = doc["cells"]
            .as_object()
            .ok_or_else(|| ProfileError("cells is not an object".to_string()))?;
        for (cell_key, raw) in cells {
            let num = |name: &str| {
                raw[name]
                    .as_f64()
                    .ok_or_else(|| ProfileError(format!("cell {cell_key}: {name} missing")))
            };
            let cell = ProfileCell {
                count: raw["count"]
                    .as_u64()
                    .ok_or_else(|| ProfileError(format!("cell {cell_key}: count missing")))?,
                total_us: num("total_us")?,
                total_analytic_us: num("total_analytic_us")?,
                total_energy_uj: num("total_energy_uj")?,
                sketch: QuantileSketch::from_json(&raw["sketch"])
                    .map_err(|e| ProfileError(format!("cell {cell_key}: {e}")))?,
            };
            profile.cells.insert(cell_key.clone(), cell);
        }
        Ok(profile)
    }

    /// Write as a profile file (one JSON document plus trailing newline).
    pub fn write(&mut self, path: &Path) -> Result<(), ProfileError> {
        let text = serde_json::to_string(&self.to_json())
            .map_err(|e| ProfileError(format!("serialize {}: {e}", path.display())))?;
        std::fs::write(path, format!("{text}\n"))
            .map_err(|e| ProfileError(format!("write {}: {e}", path.display())))
    }

    /// Read a profile file written by [`Profile::write`].
    pub fn read(path: &Path) -> Result<Profile, ProfileError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ProfileError(format!("read {}: {e}", path.display())))?;
        let doc = serde_json::parse_value(text.trim_end())
            .map_err(|e| ProfileError(format!("parse {}: {e}", path.display())))?;
        Profile::from_json(&doc)
    }
}

/// Schema validation for a profile document; `None` when well-formed,
/// otherwise a description of the first problem (the `obs_check` CI
/// binary surfaces it).
pub fn validate_profile(doc: &Value) -> Option<String> {
    if doc["schema_version"].as_u64() != Some(PROFILE_SCHEMA_VERSION) {
        return Some(format!(
            "bad schema_version: {} (expected {PROFILE_SCHEMA_VERSION})",
            doc["schema_version"]
        ));
    }
    for field in ["workload", "permutation", "quant", "soc"] {
        if doc["key"][field].as_str().is_none_or(str::is_empty) {
            return Some(format!("key.{field} missing or empty"));
        }
    }
    let Some(cells) = doc["cells"].as_object() else {
        return Some("cells is not an object".to_string());
    };
    for (key, cell) in cells {
        if parse_cell_key(key).is_none() {
            return Some(format!("cell key `{key}` is not kind/device/class"));
        }
        let count = cell["count"].as_u64();
        if count.is_none_or(|c| c == 0) {
            return Some(format!("cell {key}: count missing or zero"));
        }
        for field in ["total_us", "total_analytic_us", "total_energy_uj"] {
            match cell[field].as_f64() {
                Some(v) if v.is_finite() && v >= 0.0 => {}
                _ => return Some(format!("cell {key}: {field} missing or invalid")),
            }
        }
        match QuantileSketch::from_json(&cell["sketch"]) {
            Ok(sketch) => {
                if sketch.count() != count.unwrap_or(0) {
                    return Some(format!(
                        "cell {key}: sketch count {} != cell count {}",
                        sketch.count(),
                        count.unwrap_or(0)
                    ));
                }
            }
            Err(e) => return Some(format!("cell {key}: {e}")),
        }
    }
    None
}

/// Error from profile (de)serialization or store I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileError(pub String);

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile error: {}", self.0)
    }
}

impl std::error::Error for ProfileError {}

/// Content-addressed on-disk profile database: one file per
/// [`ProfileKey`], named by the key's hash so distinct configurations
/// never collide and re-saving the same run overwrites in place.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    dir: PathBuf,
}

impl ProfileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ProfileStore, ProfileError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ProfileError(format!("create {}: {e}", dir.display())))?;
        Ok(ProfileStore { dir })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key addresses.
    pub fn path_for(&self, key: &ProfileKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Persist a profile into its slot; returns the path written.
    pub fn save(&self, profile: &mut Profile) -> Result<PathBuf, ProfileError> {
        let path = self.path_for(&profile.key);
        profile.write(&path)?;
        Ok(path)
    }

    /// Load the profile stored for `key`.
    pub fn load(&self, key: &ProfileKey) -> Result<Profile, ProfileError> {
        let path = self.path_for(key);
        if !path.exists() {
            return Err(ProfileError(format!(
                "no profile for {} in {}",
                key.canonical(),
                self.dir.display()
            )));
        }
        Profile::read(&path)
    }

    /// All profile files currently stored, sorted by name.
    pub fn list(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("profile-"))
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ProfileKey {
        ProfileKey {
            workload: "fig4".to_string(),
            permutation: "byoc-cpu-apu".to_string(),
            quant: "f32".to_string(),
            soc: "dimensity-800".to_string(),
        }
    }

    fn sample_profile() -> Profile {
        let mut p = Profile::new(key());
        for i in 0..50 {
            p.record("mac", "apu", "vendor_tuned", 100.0 + i as f64, 100.0, 7.5);
            p.record("elementwise", "cpu", "tvm_untuned", 3.0, 3.0, 0.2);
        }
        p
    }

    #[test]
    fn cell_keys_roundtrip_through_parser() {
        let p = sample_profile();
        for cell_key in p.cells.keys() {
            let (kind, device, class) = parse_cell_key(cell_key).expect("parses");
            assert_eq!(
                format!("{}/{}/{}", kind.name(), device.name(), class_label(class)),
                *cell_key
            );
        }
        assert!(parse_cell_key("mac/apu").is_none());
        assert!(parse_cell_key("bogus/apu/vendor_tuned").is_none());
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let mut p = sample_profile();
        let doc = p.to_json();
        assert!(
            validate_profile(&doc).is_none(),
            "{:?}",
            validate_profile(&doc)
        );
        let back = Profile::from_json(&doc).unwrap();
        assert_eq!(back.key, p.key);
        assert_eq!(back.total_count(), p.total_count());
        assert!((back.total_us() - p.total_us()).abs() < 1e-9);
        // A truncated cell is rejected with a pointed message.
        let mut broken = doc.clone();
        if let Value::Object(m) = &mut broken {
            m.insert("schema_version".into(), json!(99));
        }
        assert!(validate_profile(&broken).is_some());
        assert!(Profile::from_json(&broken).is_err());
    }

    #[test]
    fn store_roundtrip_is_byte_deterministic() {
        let dir = std::env::temp_dir().join(format!("tvmnp-profile-test-{}", std::process::id()));
        let store = ProfileStore::open(&dir).unwrap();
        let mut p = sample_profile();
        let path = store.save(&mut p).unwrap();
        let first = std::fs::read(&path).unwrap();
        // Re-building the same profile from scratch writes identical bytes.
        let mut again = sample_profile();
        store.save(&mut again).unwrap();
        assert_eq!(first, std::fs::read(&path).unwrap());
        let loaded = store.load(&key()).unwrap();
        assert_eq!(loaded.total_count(), p.total_count());
        assert_eq!(store.list(), vec![path]);
        assert!(store
            .load(&ProfileKey {
                workload: "other".to_string(),
                ..key()
            })
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_merge_accumulates_exactly() {
        let mut a = sample_profile();
        let b = sample_profile();
        a.merge(&b);
        assert_eq!(a.total_count(), 200);
        let cell = &a.cells["mac/apu/vendor_tuned"];
        assert_eq!(cell.count, 100);
        assert_eq!(cell.sketch.count(), 100);
    }

    #[test]
    fn distinct_keys_address_distinct_files() {
        let a = key();
        let b = ProfileKey {
            quant: "int8".to_string(),
            ..key()
        };
        assert_ne!(a.file_name(), b.file_name());
        assert_eq!(a.file_name(), key().file_name());
    }
}
