//! Differential profiling: attribute latency/energy movement between two
//! measured profiles to specific (work kind, device, kernel class) cells.
//!
//! This is what turns "the fig4 median moved 6%" into "mac kernels on
//! the APU regressed 2.0×, costing 15.8 ms of the 16.1 ms delta": the
//! bench regression gate renders the ranked table next to a failing
//! comparison so the failure names the responsible ops.

use crate::store::{Profile, ProfileCell};

/// Significance knobs for [`diff_profiles`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Cells with fewer samples than this on either side are reported
    /// but never ranked as significant (too noisy to attribute).
    pub min_count: u64,
    /// Minimum relative per-sample movement (|ratio − 1|) for a cell to
    /// count as significant.
    pub threshold: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            min_count: 3,
            threshold: 0.05,
        }
    }
}

/// One cell's movement between baseline and current profile.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// `kind/device/class` cell key.
    pub cell: String,
    /// Baseline / current sample counts.
    pub base_count: u64,
    /// Current sample count.
    pub cur_count: u64,
    /// Baseline / current median latency, µs (from the cell sketches).
    pub base_p50_us: f64,
    /// Current median latency, µs.
    pub cur_p50_us: f64,
    /// Per-sample mean ratio current/baseline (1.0 = unchanged).
    pub ratio: f64,
    /// Total measured-time movement, µs (current − baseline).
    pub delta_total_us: f64,
    /// Total energy movement, µJ (current − baseline).
    pub delta_energy_uj: f64,
    /// Whether the movement clears [`DiffOptions`] significance.
    pub significant: bool,
}

/// Ranked attribution of the movement between two profiles.
#[derive(Debug, Clone)]
pub struct ProfileDiff {
    /// Per-cell deltas: significant cells first, then by |Δtotal µs|.
    pub deltas: Vec<CellDelta>,
    /// Cells present in the baseline but absent now.
    pub missing: Vec<String>,
    /// Cells absent from the baseline but present now.
    pub added: Vec<String>,
    /// Baseline total measured time, µs.
    pub base_total_us: f64,
    /// Current total measured time, µs.
    pub cur_total_us: f64,
}

impl ProfileDiff {
    /// The top-ranked *significant* cell — the regression gate's "likely
    /// cause" — or `None` when nothing moved significantly.
    pub fn top(&self) -> Option<&CellDelta> {
        self.deltas.iter().find(|d| d.significant)
    }

    /// Render the ranked attribution table (aligned fixed-width text).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "measured-profile attribution (current {:.1} us vs baseline {:.1} us, {:+.1} us):\n",
            self.cur_total_us,
            self.base_total_us,
            self.cur_total_us - self.base_total_us
        ));
        out.push_str(&format!(
            "  {:<34} {:>6} {:>11} {:>11} {:>7} {:>13} {:>13}\n",
            "cell", "n", "p50 base", "p50 cur", "ratio", "d-total us", "d-energy uJ"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "  {:<34} {:>6} {:>11.2} {:>11.2} {:>6.2}x {:>+13.1} {:>+13.1}{}\n",
                d.cell,
                d.cur_count,
                d.base_p50_us,
                d.cur_p50_us,
                d.ratio,
                d.delta_total_us,
                d.delta_energy_uj,
                if d.significant { "  *" } else { "" }
            ));
        }
        for cell in &self.missing {
            out.push_str(&format!("  {cell:<34} MISSING from current profile\n"));
        }
        for cell in &self.added {
            out.push_str(&format!("  {cell:<34} NEW in current profile\n"));
        }
        out
    }
}

fn p50(cell: &ProfileCell) -> f64 {
    // Sketches answer quantiles through &mut self (they flush buffered
    // inserts); the diff works on borrowed profiles, so query a clone.
    cell.sketch.clone().query(0.5)
}

/// Compare `current` against `baseline`, attributing movement per cell.
pub fn diff_profiles(baseline: &Profile, current: &Profile, opts: &DiffOptions) -> ProfileDiff {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    let mut added = Vec::new();
    for (cell_key, base) in &baseline.cells {
        let Some(cur) = current.cells.get(cell_key) else {
            missing.push(cell_key.clone());
            continue;
        };
        let ratio = if base.mean_us() > 0.0 {
            cur.mean_us() / base.mean_us()
        } else {
            1.0
        };
        let significant = base.count >= opts.min_count
            && cur.count >= opts.min_count
            && (ratio - 1.0).abs() > opts.threshold;
        deltas.push(CellDelta {
            cell: cell_key.clone(),
            base_count: base.count,
            cur_count: cur.count,
            base_p50_us: p50(base),
            cur_p50_us: p50(cur),
            ratio,
            delta_total_us: cur.total_us - base.total_us,
            delta_energy_uj: cur.total_energy_uj - base.total_energy_uj,
            significant,
        });
    }
    for cell_key in current.cells.keys() {
        if !baseline.cells.contains_key(cell_key) {
            added.push(cell_key.clone());
        }
    }
    // Significant first, then by absolute time impact; cell name breaks
    // ties so the ordering is deterministic.
    deltas.sort_by(|a, b| {
        b.significant
            .cmp(&a.significant)
            .then(
                b.delta_total_us
                    .abs()
                    .partial_cmp(&a.delta_total_us.abs())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then_with(|| a.cell.cmp(&b.cell))
    });
    ProfileDiff {
        deltas,
        missing,
        added,
        base_total_us: baseline.total_us(),
        cur_total_us: current.total_us(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ProfileKey;

    fn key() -> ProfileKey {
        ProfileKey {
            workload: "t".to_string(),
            permutation: "byoc-cpu-apu".to_string(),
            quant: "f32".to_string(),
            soc: "dimensity-800".to_string(),
        }
    }

    fn profile(mac_us: f64) -> Profile {
        let mut p = Profile::new(key());
        for i in 0..20 {
            p.record("mac", "apu", "vendor_tuned", mac_us + i as f64, 100.0, 9.0);
            p.record("elementwise", "cpu", "tvm_untuned", 4.0, 4.0, 0.3);
            p.record("data-movement", "cpu", "vendor_tuned", 1.5, 1.5, 0.1);
        }
        p
    }

    #[test]
    fn doubled_mac_cell_ranks_first() {
        let base = profile(100.0);
        let cur = profile(200.0);
        let d = diff_profiles(&base, &cur, &DiffOptions::default());
        let top = d.top().expect("a significant cell");
        assert_eq!(top.cell, "mac/apu/vendor_tuned");
        assert!(top.ratio > 1.8 && top.ratio < 2.2, "ratio {}", top.ratio);
        assert!(top.delta_total_us > 0.0);
        // Unmoved cells are present but not significant.
        assert!(d
            .deltas
            .iter()
            .filter(|c| c.cell != "mac/apu/vendor_tuned")
            .all(|c| !c.significant));
        let table = d.render();
        assert!(table.contains("mac/apu/vendor_tuned"));
        assert!(table.lines().nth(2).unwrap().contains("mac/apu"), "{table}");
    }

    #[test]
    fn identical_profiles_have_no_significant_cells() {
        let base = profile(100.0);
        let d = diff_profiles(&base, &base.clone(), &DiffOptions::default());
        assert!(d.top().is_none());
        assert!(d.missing.is_empty() && d.added.is_empty());
        assert_eq!(d.base_total_us, d.cur_total_us);
    }

    #[test]
    fn missing_and_added_cells_are_listed() {
        let base = profile(100.0);
        let mut cur = profile(100.0);
        cur.cells.remove("elementwise/cpu/tvm_untuned");
        cur.record("reduction", "gpu", "vendor_tuned", 2.0, 2.0, 0.1);
        let d = diff_profiles(&base, &cur, &DiffOptions::default());
        assert_eq!(d.missing, vec!["elementwise/cpu/tvm_untuned".to_string()]);
        assert_eq!(d.added, vec!["reduction/gpu/vendor_tuned".to_string()]);
        let table = d.render();
        assert!(table.contains("MISSING") && table.contains("NEW"));
    }

    #[test]
    fn low_count_cells_never_rank_significant() {
        let mut base = profile(100.0);
        let mut cur = profile(100.0);
        base.record("reduction", "gpu", "vendor_tuned", 1.0, 1.0, 0.0);
        cur.record("reduction", "gpu", "vendor_tuned", 50.0, 1.0, 0.0);
        let d = diff_profiles(&base, &cur, &DiffOptions::default());
        let noisy = d
            .deltas
            .iter()
            .find(|c| c.cell == "reduction/gpu/vendor_tuned")
            .unwrap();
        assert!(!noisy.significant, "1-sample cell must not be significant");
    }
}
