//! Property tests for the pipeline scheduler: resource exclusivity,
//! dependency ordering, and dominance relations hold for arbitrary stage
//! configurations.

use proptest::prelude::*;
use tvmnp_hwsim::DeviceKind;
use tvmnp_scheduler::pipeline::{
    auto_schedule, simulate_pipelined, simulate_sequential, PipelineStage,
};

fn stage_strategy() -> impl Strategy<Value = PipelineStage> {
    (0u8..7, 1.0f64..10_000.0).prop_map(|(mask, dur)| {
        let mut resources = Vec::new();
        if mask & 1 != 0 || mask & 7 == 0 {
            resources.push(DeviceKind::Cpu);
        }
        if mask & 2 != 0 {
            resources.push(DeviceKind::Apu);
        }
        if mask & 4 != 0 {
            resources.push(DeviceKind::Gpu);
        }
        PipelineStage {
            name: "s".into(),
            resources,
            duration_us: dur,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pipelined schedule never violates resource exclusivity and is
    /// never slower than the sequential baseline.
    #[test]
    fn pipelined_sound_and_dominant(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        frames in 1usize..12,
    ) {
        // Give stages unique names so the Gantt labels disambiguate.
        let stages: Vec<PipelineStage> = stages
            .into_iter()
            .enumerate()
            .map(|(i, mut s)| {
                s.name = format!("s{i}");
                s
            })
            .collect();
        let seq = simulate_sequential(&stages, frames);
        let pipe = simulate_pipelined(&stages, frames);
        prop_assert!(pipe.timeline.check_exclusive().is_none());
        prop_assert!(seq.timeline.check_exclusive().is_none());
        prop_assert!(pipe.makespan_us <= seq.makespan_us + 1e-6);
        // Makespan is at least one frame's critical path.
        let frame_time: f64 = stages.iter().map(|s| s.duration_us).sum();
        prop_assert!(pipe.makespan_us + 1e-6 >= frame_time);
        prop_assert!(seq.makespan_us + 1e-6 >= frame_time * frames as f64);
    }

    /// Dependencies: within every frame, stage k+1 starts only after
    /// stage k ends.
    #[test]
    fn dependencies_hold(
        stages in prop::collection::vec(stage_strategy(), 2..5),
        frames in 1usize..8,
    ) {
        let stages: Vec<PipelineStage> = stages
            .into_iter()
            .enumerate()
            .map(|(i, mut s)| {
                s.name = format!("s{i}");
                s
            })
            .collect();
        let pipe = simulate_pipelined(&stages, frames);
        for f in 0..frames {
            for k in 1..stages.len() {
                let prev_end = pipe
                    .timeline
                    .segments()
                    .iter()
                    .filter(|s| s.label == format!("s{} f{f}", k - 1))
                    .map(|s| s.end_us)
                    .fold(0.0, f64::max);
                let start = pipe
                    .timeline
                    .segments()
                    .iter()
                    .filter(|s| s.label == format!("s{k} f{f}"))
                    .map(|s| s.start_us)
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(start + 1e-9 >= prev_end, "frame {f} stage {k}");
            }
        }
    }

    /// The auto-scheduler returns the minimum over the option product.
    #[test]
    fn auto_schedule_is_exhaustive_min(
        a in prop::collection::vec(stage_strategy(), 1..3),
        b in prop::collection::vec(stage_strategy(), 1..3),
        frames in 1usize..6,
    ) {
        let options = vec![a.clone(), b.clone()];
        let Some((_, best)) = auto_schedule(&options, frames) else {
            return Err(TestCaseError::fail("auto_schedule returned none"));
        };
        for x in &a {
            for y in &b {
                let manual = simulate_pipelined(&[x.clone(), y.clone()], frames);
                prop_assert!(best.makespan_us <= manual.makespan_us + 1e-6);
            }
        }
    }
}
