//! Pipeline scheduling (paper §5.2, Fig. 5).
//!
//! Dependencies are intra-frame: the anti-spoofing model waits for object
//! detection's output, and emotion detection waits for anti-spoofing.
//! Resources are exclusive: two models may not occupy the CPU (or APU) at
//! the same instant. The paper's prototype moves object detection from
//! CPU+APU to CPU-only so that, across frames, object detection (CPU) of
//! frame *k+1* overlaps emotion detection (APU) of frame *k* — Fig. 5's
//! yellow/blue/green bars.

use serde::{Deserialize, Serialize};
use tvmnp_hwsim::{DeviceKind, Timeline};

/// One model of the per-frame chain with its resource assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStage {
    /// Stage/model name (becomes the Gantt label).
    pub name: String,
    /// Devices occupied while the stage runs (Fig. 5: yellow = CPU+APU,
    /// green = APU only, blue = CPU only).
    pub resources: Vec<DeviceKind>,
    /// Stage latency under that assignment, microseconds.
    pub duration_us: f64,
}

impl PipelineStage {
    /// Convenience constructor.
    pub fn new(name: &str, resources: &[DeviceKind], duration_us: f64) -> Self {
        PipelineStage {
            name: name.into(),
            resources: resources.to_vec(),
            duration_us,
        }
    }
}

/// One scheduled execution of a stage for one frame — the structured
/// record behind a Gantt segment, kept with explicit stage/frame indices
/// so analysis layers (idle gaps, critical paths) need not parse labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRun {
    /// Index into the stage list handed to the simulator.
    pub stage_index: usize,
    /// Stage name.
    pub name: String,
    /// Frame number.
    pub frame: usize,
    /// Start time, microseconds.
    pub start_us: f64,
    /// End time, microseconds.
    pub end_us: f64,
    /// Devices held for the whole interval.
    pub resources: Vec<DeviceKind>,
}

/// Outcome of a schedule simulation.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The populated timeline (Gantt data).
    pub timeline: Timeline,
    /// Total time to finish all frames, microseconds.
    pub makespan_us: f64,
    /// Frames processed.
    pub frames: usize,
    /// Every scheduled (stage, frame) interval, in schedule order.
    pub stage_runs: Vec<StageRun>,
}

impl ScheduleResult {
    /// Average per-frame throughput period, microseconds.
    pub fn period_us(&self) -> f64 {
        self.makespan_us / self.frames.max(1) as f64
    }
}

/// Record one scheduled stage reservation on the simulated timeline.
fn record_stage_span(
    schedule: &str,
    stage: &str,
    frame: usize,
    start_us: f64,
    end_us: f64,
    resources: &[DeviceKind],
) {
    if !tvmnp_telemetry::is_enabled() {
        return;
    }
    let devices = resources
        .iter()
        .map(|d| d.name())
        .collect::<Vec<_>>()
        .join("+");
    tvmnp_telemetry::record_sim_span(
        "scheduler.stage",
        start_us,
        end_us - start_us,
        vec![
            ("schedule".to_string(), schedule.to_string()),
            ("stage".to_string(), stage.to_string()),
            ("frame".to_string(), frame.to_string()),
            ("device".to_string(), devices),
        ],
    );
}

/// Sequential baseline: stages of each frame run back-to-back and frames
/// never overlap (the pre-pipelining execution of §4.4).
pub fn simulate_sequential(stages: &[PipelineStage], frames: usize) -> ScheduleResult {
    let mut tl = Timeline::new();
    let mut runs = Vec::with_capacity(stages.len() * frames);
    let mut t = 0.0f64;
    for f in 0..frames {
        for (si, s) in stages.iter().enumerate() {
            let (start, end) =
                tl.reserve_joint(&s.resources, t, s.duration_us, format!("{} f{}", s.name, f));
            record_stage_span("sequential", &s.name, f, start, end, &s.resources);
            runs.push(StageRun {
                stage_index: si,
                name: s.name.clone(),
                frame: f,
                start_us: start,
                end_us: end,
                resources: s.resources.clone(),
            });
            t = end;
        }
    }
    ScheduleResult {
        makespan_us: tl.makespan_us(),
        timeline: tl,
        frames,
        stage_runs: runs,
    }
}

/// Pipelined schedule: greedy list scheduling honoring intra-frame
/// dependencies and per-frame ordering of each stage, with exclusive
/// device reservations.
pub fn simulate_pipelined(stages: &[PipelineStage], frames: usize) -> ScheduleResult {
    let mut tl = Timeline::new();
    let mut runs = Vec::with_capacity(stages.len() * frames);
    // finish[s] = completion time of stage s for the previous frame.
    let mut prev_frame_finish = vec![0.0f64; stages.len()];
    for f in 0..frames {
        let mut dep_ready = 0.0f64;
        for (si, s) in stages.iter().enumerate() {
            // Ready when the predecessor stage of this frame is done AND
            // this stage finished the previous frame (stages are
            // single-instance — one compiled network each).
            let earliest = dep_ready.max(prev_frame_finish[si]);
            let (start, end) = tl.reserve_joint(
                &s.resources,
                earliest,
                s.duration_us,
                format!("{} f{}", s.name, f),
            );
            record_stage_span("pipelined", &s.name, f, start, end, &s.resources);
            runs.push(StageRun {
                stage_index: si,
                name: s.name.clone(),
                frame: f,
                start_us: start,
                end_us: end,
                resources: s.resources.clone(),
            });
            prev_frame_finish[si] = end;
            dep_ready = end;
        }
    }
    ScheduleResult {
        makespan_us: tl.makespan_us(),
        timeline: tl,
        frames,
        stage_runs: runs,
    }
}

/// Per-frame accounting of a schedule against a frame deadline: which
/// frames would be dropped by a real-time consumer because their full
/// stage chain took longer than the budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameAccounting {
    /// Frames scheduled.
    pub frames: usize,
    /// Frames whose chain latency exceeded the deadline.
    pub dropped: usize,
    /// Largest per-frame chain latency observed, microseconds.
    pub worst_latency_us: f64,
    /// The deadline the frames were held to, microseconds.
    pub deadline_us: f64,
}

impl FrameAccounting {
    /// Fraction of frames delivered on time.
    pub fn delivered_ratio(&self) -> f64 {
        if self.frames == 0 {
            return 1.0;
        }
        (self.frames - self.dropped) as f64 / self.frames as f64
    }
}

/// Account lost frames in a schedule: a frame's chain latency is the span
/// from its earliest stage start to its latest stage end; frames over
/// `frame_deadline_us` are counted dropped (and reported on the
/// `scheduler.frames_dropped` counter while telemetry is enabled).
pub fn account_dropped_frames(result: &ScheduleResult, frame_deadline_us: f64) -> FrameAccounting {
    let mut dropped = 0usize;
    let mut worst = 0.0f64;
    for f in 0..result.frames {
        let mut start = f64::INFINITY;
        let mut end = 0.0f64;
        for run in result.stage_runs.iter().filter(|r| r.frame == f) {
            start = start.min(run.start_us);
            end = end.max(run.end_us);
        }
        if start > end {
            continue; // no runs recorded for this frame
        }
        let latency = end - start;
        worst = worst.max(latency);
        if latency > frame_deadline_us {
            dropped += 1;
            if tvmnp_telemetry::is_enabled() {
                tvmnp_telemetry::counter_add(
                    "scheduler.frames_dropped",
                    &[("frame", "over-deadline")],
                    1,
                );
            }
        }
    }
    FrameAccounting {
        frames: result.frames,
        dropped,
        worst_latency_us: worst,
        deadline_us: frame_deadline_us,
    }
}

/// The assignment of the paper's Fig. 5 prototype:
/// anti-spoofing on CPU+APU, object detection forced to CPU-only,
/// emotion on APU-only — guaranteeing exclusive use so object detection
/// of the next frame overlaps emotion of the current one.
pub fn paper_prototype_stages(
    obj_det_us: f64,
    anti_spoof_us: f64,
    emotion_us: f64,
) -> Vec<PipelineStage> {
    vec![
        PipelineStage::new("obj-det", &[DeviceKind::Cpu], obj_det_us),
        PipelineStage::new(
            "anti-spoof",
            &[DeviceKind::Cpu, DeviceKind::Apu],
            anti_spoof_us,
        ),
        PipelineStage::new("emotion", &[DeviceKind::Apu], emotion_us),
    ]
}

/// Automatic pipeline scheduling (the paper's stated future work): search
/// over candidate per-stage assignments — each stage offers
/// `(resource set, duration)` options from the §5.1 measurements — and
/// pick the combination minimizing pipelined makespan.
///
/// The search is exhaustive; with three models and a handful of
/// permutations each this is the "concatenation algorithm"-style small
/// combinatorial problem of [Liu & Wu 2019].
pub fn auto_schedule(
    options: &[Vec<PipelineStage>],
    frames: usize,
) -> Option<(Vec<PipelineStage>, ScheduleResult)> {
    fn rec(
        options: &[Vec<PipelineStage>],
        chosen: &mut Vec<PipelineStage>,
        frames: usize,
        best: &mut Option<(Vec<PipelineStage>, ScheduleResult)>,
    ) {
        if chosen.len() == options.len() {
            let result = simulate_pipelined(chosen, frames);
            let better = match best {
                Some((_, b)) => result.makespan_us < b.makespan_us,
                None => true,
            };
            if better {
                *best = Some((chosen.clone(), result));
            }
            return;
        }
        for opt in &options[chosen.len()] {
            chosen.push(opt.clone());
            rec(options, chosen, frames, best);
            chosen.pop();
        }
    }
    let mut best = None;
    rec(options, &mut Vec::new(), frames, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages() -> Vec<PipelineStage> {
        paper_prototype_stages(3000.0, 6000.0, 2000.0)
    }

    #[test]
    fn pipelined_never_slower_than_sequential() {
        let s = stages();
        let seq = simulate_sequential(&s, 8);
        let pipe = simulate_pipelined(&s, 8);
        assert!(pipe.makespan_us <= seq.makespan_us + 1e-6);
    }

    #[test]
    fn overlap_actually_happens() {
        // obj-det (CPU) of frame k+1 must start before emotion (APU) of
        // frame k ends.
        let s = stages();
        let r = simulate_pipelined(&s, 3);
        let segs = r.timeline.segments();
        let obj_f1 = segs.iter().find(|x| x.label == "obj-det f1").unwrap();
        let emo_f0 = segs.iter().find(|x| x.label == "emotion f0").unwrap();
        assert!(
            obj_f1.start_us < emo_f0.end_us,
            "obj-det f1 ({}) should overlap emotion f0 (ends {})",
            obj_f1.start_us,
            emo_f0.end_us
        );
    }

    #[test]
    fn exclusivity_invariant_holds() {
        let s = stages();
        for frames in [1, 4, 16] {
            let r = simulate_pipelined(&s, frames);
            assert!(r.timeline.check_exclusive().is_none());
        }
    }

    #[test]
    fn shared_resource_blocks_overlap() {
        // If object detection also held the APU (the pre-prototype
        // CPU+APU assignment), no overlap with emotion is possible and
        // pipelining degenerates to sequential.
        let all_shared = vec![
            PipelineStage::new("obj-det", &[DeviceKind::Cpu, DeviceKind::Apu], 3000.0),
            PipelineStage::new("anti-spoof", &[DeviceKind::Cpu, DeviceKind::Apu], 6000.0),
            PipelineStage::new("emotion", &[DeviceKind::Apu], 2000.0),
        ];
        let seq = simulate_sequential(&all_shared, 6);
        let pipe = simulate_pipelined(&all_shared, 6);
        assert!((pipe.makespan_us - seq.makespan_us).abs() < 1e-6);
        // Whereas the paper's prototype (obj-det CPU-only) beats sequential.
        let proto = simulate_pipelined(&stages(), 6);
        assert!(proto.makespan_us < seq.makespan_us);
    }

    #[test]
    fn dependencies_respected() {
        let s = stages();
        let r = simulate_pipelined(&s, 4);
        let segs = r.timeline.segments();
        for f in 0..4 {
            let obj = segs
                .iter()
                .find(|x| x.label == format!("obj-det f{f}"))
                .unwrap();
            let spoof_segs: Vec<_> = segs
                .iter()
                .filter(|x| x.label == format!("anti-spoof f{f}"))
                .collect();
            let emo = segs
                .iter()
                .find(|x| x.label == format!("emotion f{f}"))
                .unwrap();
            for sp in &spoof_segs {
                assert!(sp.start_us >= obj.end_us - 1e-9);
                assert!(emo.start_us >= sp.end_us - 1e-9);
            }
        }
    }

    #[test]
    fn auto_schedule_finds_paper_prototype_or_better() {
        // Candidate assignments per stage: CPU+APU (fast but greedy),
        // CPU-only (slower), APU-only (fast for emotion).
        let options = vec![
            vec![
                PipelineStage::new("obj-det", &[DeviceKind::Cpu, DeviceKind::Apu], 2500.0),
                PipelineStage::new("obj-det", &[DeviceKind::Cpu], 3000.0),
            ],
            vec![
                PipelineStage::new("anti-spoof", &[DeviceKind::Cpu, DeviceKind::Apu], 6000.0),
                PipelineStage::new("anti-spoof", &[DeviceKind::Cpu], 9000.0),
            ],
            vec![
                PipelineStage::new("emotion", &[DeviceKind::Apu], 2000.0),
                PipelineStage::new("emotion", &[DeviceKind::Cpu, DeviceKind::Apu], 1800.0),
            ],
        ];
        let (chosen, result) = auto_schedule(&options, 8).unwrap();
        // The paper's insight falls out of the search: obj-det CPU-only
        // wins despite being slower in isolation.
        assert_eq!(chosen[0].resources, vec![DeviceKind::Cpu]);
        let manual = simulate_pipelined(&paper_prototype_stages(3000.0, 6000.0, 2000.0), 8);
        assert!(result.makespan_us <= manual.makespan_us + 1e-6);
    }

    #[test]
    fn stage_runs_mirror_timeline_segments() {
        let s = stages();
        for result in [simulate_sequential(&s, 3), simulate_pipelined(&s, 3)] {
            assert_eq!(result.stage_runs.len(), s.len() * 3);
            for run in &result.stage_runs {
                assert_eq!(run.name, s[run.stage_index].name);
                assert_eq!(run.resources, s[run.stage_index].resources);
                // Each run is backed by a reservation on every resource.
                let label = format!("{} f{}", run.name, run.frame);
                let matching = result
                    .timeline
                    .segments()
                    .iter()
                    .filter(|seg| seg.label == label)
                    .count();
                assert_eq!(matching, run.resources.len(), "{label}");
            }
            let max_end = result
                .stage_runs
                .iter()
                .map(|r| r.end_us)
                .fold(0.0, f64::max);
            assert!((max_end - result.makespan_us).abs() < 1e-9);
        }
    }

    #[test]
    fn frame_accounting_counts_over_deadline_frames() {
        let s = stages();
        let r = simulate_pipelined(&s, 6);
        // A frame's chain is at least the sum of its stage durations.
        let chain: f64 = s.iter().map(|st| st.duration_us).sum();
        let generous = account_dropped_frames(&r, r.makespan_us + 1.0);
        assert_eq!(generous.dropped, 0);
        assert_eq!(generous.frames, 6);
        assert!((generous.delivered_ratio() - 1.0).abs() < 1e-12);
        assert!(generous.worst_latency_us >= chain - 1e-6);
        // An impossible deadline drops every frame.
        let strict = account_dropped_frames(&r, chain - 1.0);
        assert_eq!(strict.dropped, 6);
        assert_eq!(strict.delivered_ratio(), 0.0);
    }

    #[test]
    fn period_amortizes_with_frames() {
        let s = stages();
        let short = simulate_pipelined(&s, 2);
        let long = simulate_pipelined(&s, 32);
        assert!(long.period_us() < short.period_us());
    }
}
