//! Model-level computation scheduling (paper §5.1).
//!
//! "We could assign them to targets that are more efficient, and this type
//! of computation scheduling is a simple method since it is on the
//! model-level" — i.e. per model, pick the permutation with the smallest
//! measured inference time.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_byoc::{Measurement, Permutation};

/// The measured permutation sweep of one model (one group of Fig. 4 bars).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name.
    pub name: String,
    /// Measurements across the seven permutations (missing bars are
    /// `time_ms: None`).
    pub measurements: Vec<Measurement>,
}

impl ModelProfile {
    /// The fastest permutation and its time.
    pub fn best(&self) -> Option<(Permutation, f64)> {
        self.measurements
            .iter()
            .filter_map(|m| m.time_ms.map(|t| (m.permutation, t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }

    /// Time under a specific permutation (None = missing bar).
    pub fn time_ms(&self, p: Permutation) -> Option<f64> {
        self.measurements
            .iter()
            .find(|m| m.permutation == p)
            .and_then(|m| m.time_ms)
    }
}

/// Assign each model to its fastest permutation.
pub fn best_assignment(profiles: &[ModelProfile]) -> HashMap<String, Permutation> {
    let _span = tvmnp_telemetry::span!("scheduler.computation", "models" => profiles.len());
    profiles
        .iter()
        .filter_map(|p| p.best().map(|(perm, _)| (p.name.clone(), perm)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, times: &[(Permutation, Option<f64>)]) -> ModelProfile {
        ModelProfile {
            name: name.into(),
            measurements: times
                .iter()
                .map(|&(p, t)| Measurement {
                    permutation: p,
                    time_ms: t,
                    subgraphs: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn picks_minimum_time() {
        let p = profile(
            "emotion",
            &[
                (Permutation::TvmOnly, Some(20.0)),
                (Permutation::ByocApu, Some(3.0)),
                (Permutation::NpApu, Some(2.0)),
            ],
        );
        assert_eq!(p.best(), Some((Permutation::NpApu, 2.0)));
    }

    #[test]
    fn missing_bars_never_win() {
        let p = profile(
            "anti-spoof",
            &[
                (Permutation::NpApu, None),
                (Permutation::ByocCpuApu, Some(9.0)),
            ],
        );
        assert_eq!(p.best(), Some((Permutation::ByocCpuApu, 9.0)));
    }

    #[test]
    fn assignment_covers_all_models() {
        let ps = vec![
            profile("a", &[(Permutation::TvmOnly, Some(5.0))]),
            profile(
                "b",
                &[
                    (Permutation::ByocCpu, Some(4.0)),
                    (Permutation::ByocApu, Some(2.0)),
                ],
            ),
        ];
        let a = best_assignment(&ps);
        assert_eq!(a["a"], Permutation::TvmOnly);
        assert_eq!(a["b"], Permutation::ByocApu);
    }

    #[test]
    fn all_missing_yields_no_entry() {
        let ps = vec![profile("x", &[(Permutation::NpCpu, None)])];
        assert!(best_assignment(&ps).is_empty());
    }
}
