//! A real multi-threaded pipeline executor.
//!
//! The simulators in [`crate::pipeline`] predict the schedule; this module
//! *runs* one: each stage gets its own worker thread, frames flow through
//! crossbeam channels, and per-device locks enforce the §5.2 exclusivity
//! constraint ("models could not utilize the same resources at the same
//! time"). The application showcase drives its three compiled models
//! through this executor.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use tvmnp_hwsim::DeviceKind;

/// One pipeline stage: a work function plus the devices it occupies.
pub struct StageSpec<T> {
    /// Stage name (for diagnostics).
    pub name: String,
    /// Devices held exclusively while the stage body runs.
    pub resources: Vec<DeviceKind>,
    /// The stage body.
    pub work: Box<dyn Fn(T) -> T + Send>,
}

impl<T> StageSpec<T> {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        resources: &[DeviceKind],
        work: impl Fn(T) -> T + Send + 'static,
    ) -> Self {
        StageSpec {
            name: name.into(),
            resources: resources.to_vec(),
            work: Box::new(work),
        }
    }
}

/// Device-lock table shared by all stages.
#[derive(Clone, Default)]
struct ResourceLocks {
    locks: Arc<HashMap<DeviceKind, Mutex<()>>>,
}

impl ResourceLocks {
    fn new() -> Self {
        let mut m = HashMap::new();
        for d in DeviceKind::ALL {
            m.insert(d, Mutex::new(()));
        }
        ResourceLocks { locks: Arc::new(m) }
    }

    /// Acquire all requested devices in the global `DeviceKind::ALL` order
    /// (total order ⇒ no deadlock), run `f`, release.
    fn with_resources<R>(&self, devices: &[DeviceKind], f: impl FnOnce() -> R) -> R {
        let mut guards = Vec::with_capacity(devices.len());
        for d in DeviceKind::ALL {
            if devices.contains(&d) {
                guards.push(self.locks[&d].lock());
            }
        }
        let r = f();
        drop(guards);
        r
    }
}

/// A running pipeline over items of type `T`.
pub struct PipelineExecutor;

impl PipelineExecutor {
    /// Push `items` through the staged pipeline, returning the outputs in
    /// input order. Stages run on their own threads; device locks enforce
    /// exclusivity.
    pub fn run<T: Send + 'static>(stages: Vec<StageSpec<T>>, items: Vec<T>) -> Vec<T> {
        if stages.is_empty() {
            return items;
        }
        let locks = ResourceLocks::new();
        let cap = items.len().max(1);

        // Channel chain: source -> s0 -> s1 -> ... -> sink. Items carry a
        // sequence number so order is restored at the end.
        type Link<T> = (Sender<(usize, T)>, Receiver<(usize, T)>);
        let (src_tx, mut prev_rx): Link<T> = bounded(cap);
        let mut handles = Vec::new();
        for stage in stages {
            let (tx, rx) = bounded::<(usize, T)>(cap);
            let locks = locks.clone();
            let handle = thread::spawn(move || {
                while let Ok((seq, item)) = prev_rx.recv() {
                    let _span = tvmnp_telemetry::span!(
                        "scheduler.stage",
                        "stage" => stage.name,
                        "frame" => seq,
                    );
                    let out = locks.with_resources(&stage.resources, || (stage.work)(item));
                    if tx.send((seq, out)).is_err() {
                        break;
                    }
                }
            });
            handles.push(handle);
            prev_rx = rx;
        }

        let n = items.len();
        for (i, item) in items.into_iter().enumerate() {
            src_tx.send((i, item)).expect("pipeline source send");
        }
        drop(src_tx);

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (seq, item) = prev_rx.recv().expect("pipeline sink recv");
            out[seq] = Some(item);
        }
        for h in handles {
            h.join().expect("pipeline worker join");
        }
        out.into_iter()
            .map(|o| o.expect("every frame accounted for"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_and_applies_stages() {
        let stages = vec![
            StageSpec::new("double", &[DeviceKind::Cpu], |x: i64| x * 2),
            StageSpec::new("inc", &[DeviceKind::Apu], |x: i64| x + 1),
        ];
        let out = PipelineExecutor::run(stages, (0..64).collect());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as i64 * 2 + 1);
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let out = PipelineExecutor::run(Vec::<StageSpec<u8>>::new(), vec![1, 2, 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn exclusive_resource_never_concurrent() {
        // Two stages share the CPU: the lock must serialize their bodies.
        static IN_CPU: AtomicUsize = AtomicUsize::new(0);
        let body = |x: u64| {
            let now = IN_CPU.fetch_add(1, Ordering::SeqCst);
            assert_eq!(now, 0, "two stages inside the CPU section at once");
            std::thread::sleep(std::time::Duration::from_micros(200));
            IN_CPU.fetch_sub(1, Ordering::SeqCst);
            x + 1
        };
        let stages = vec![
            StageSpec::new("a", &[DeviceKind::Cpu], body),
            StageSpec::new("b", &[DeviceKind::Cpu], body),
        ];
        let out = PipelineExecutor::run(stages, (0..16).collect());
        assert_eq!(out.len(), 16);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 2));
    }

    #[test]
    fn disjoint_resources_do_overlap() {
        // Stage A (CPU) and stage B (APU) on a 2-deep pipeline should
        // overlap: total wall time well under the sequential sum.
        let d = std::time::Duration::from_millis(4);
        let stages = vec![
            StageSpec::new("a", &[DeviceKind::Cpu], move |x: u64| {
                std::thread::sleep(d);
                x
            }),
            StageSpec::new("b", &[DeviceKind::Apu], move |x: u64| {
                std::thread::sleep(d);
                x
            }),
        ];
        let n = 10u64;
        let t0 = std::time::Instant::now();
        let out = PipelineExecutor::run(stages, (0..n).collect());
        let elapsed = t0.elapsed();
        assert_eq!(out.len(), n as usize);
        // Sequential would be 2*n*d = 80 ms; pipelined ≈ (n+1)*d = 44 ms.
        assert!(
            elapsed < std::time::Duration::from_millis(70),
            "pipeline did not overlap: {elapsed:?}"
        );
    }
}
