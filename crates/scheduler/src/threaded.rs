//! A real multi-threaded pipeline executor.
//!
//! The simulators in [`crate::pipeline`] predict the schedule; this module
//! *runs* one: each stage gets its own worker thread, frames flow through
//! crossbeam channels, and per-device locks enforce the §5.2 exclusivity
//! constraint ("models could not utilize the same resources at the same
//! time"). The application showcase drives its three compiled models
//! through this executor.
//!
//! Failure handling is per-frame, not per-process: a stage body that
//! returns an [`ExecError`] or panics marks *that frame* failed (a typed
//! [`FrameFailure`] naming the stage and frame) and every other in-flight
//! frame completes normally. Channels are bounded by a small constant, so
//! memory stays O(pipeline depth), not O(stream length).

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use tvmnp_hwsim::DeviceKind;
use tvmnp_runtime::ExecError;

/// Per-stage channel capacity: enough for one frame in flight plus one
/// queued, independent of how many frames the stream carries.
const STAGE_DEPTH: usize = 2;

/// One pipeline stage: a work function plus the devices it occupies.
pub struct StageSpec<T> {
    /// Stage name (for diagnostics).
    pub name: String,
    /// Devices held exclusively while the stage body runs.
    pub resources: Vec<DeviceKind>,
    /// The stage body. An `Err` fails the current frame only.
    pub work: Box<dyn Fn(T) -> Result<T, ExecError> + Send>,
}

impl<T> StageSpec<T> {
    /// Convenience constructor for infallible stage bodies.
    pub fn new(
        name: &str,
        resources: &[DeviceKind],
        work: impl Fn(T) -> T + Send + 'static,
    ) -> Self {
        StageSpec {
            name: name.into(),
            resources: resources.to_vec(),
            work: Box::new(move |t| Ok(work(t))),
        }
    }

    /// A stage whose body may fail a frame with a typed [`ExecError`];
    /// the failure becomes a [`FrameFailure`] instead of a panic.
    pub fn fallible(
        name: &str,
        resources: &[DeviceKind],
        work: impl Fn(T) -> Result<T, ExecError> + Send + 'static,
    ) -> Self {
        StageSpec {
            name: name.into(),
            resources: resources.to_vec(),
            work: Box::new(work),
        }
    }
}

/// Why one frame did not make it through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFailure {
    /// Input sequence number of the frame.
    pub frame: usize,
    /// Stage the frame died at.
    pub stage: String,
    /// The stage's error ([`ExecErrorKind::General`] with a panic message
    /// when the stage body panicked).
    ///
    /// [`ExecErrorKind::General`]: tvmnp_runtime::ExecErrorKind::General
    pub error: ExecError,
    /// Whether the stage body panicked (vs returning an error).
    pub panicked: bool,
}

impl fmt::Display for FrameFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let how = if self.panicked { "panicked" } else { "failed" };
        write!(
            f,
            "frame {} {how} at stage '{}': {}",
            self.frame, self.stage, self.error
        )
    }
}

/// A frame's pipeline outcome: the transformed item, or a typed record of
/// where and why it was lost.
pub type FrameOutput<T> = Result<T, FrameFailure>;

/// Pipeline-level failure (as opposed to a single lost frame).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A stage body panicked while processing a frame. The panic was
    /// caught, every other in-flight frame completed, and all workers
    /// were joined before this was returned.
    StagePanic {
        /// Stage whose body panicked.
        stage: String,
        /// Frame being processed when it panicked.
        frame: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A stage body returned an error for a frame (strict mode only —
    /// [`PipelineExecutor::run_with_failures`] reports this per frame
    /// instead).
    FrameFailed {
        /// Stage that rejected the frame.
        stage: String,
        /// Frame that failed.
        frame: usize,
        /// The stage's error.
        error: ExecError,
    },
    /// A channel disconnected before every frame was accounted for —
    /// infrastructure failure, should not happen.
    Disconnected {
        /// Description of the broken link.
        detail: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::StagePanic {
                stage,
                frame,
                message,
            } => write!(f, "stage '{stage}' panicked on frame {frame}: {message}"),
            PipelineError::FrameFailed {
                stage,
                frame,
                error,
            } => write!(f, "stage '{stage}' failed frame {frame}: {error}"),
            PipelineError::Disconnected { detail } => {
                write!(f, "pipeline disconnected: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

thread_local! {
    /// Devices currently held by this thread, for lock-order auditing.
    static HELD: std::cell::RefCell<Vec<DeviceKind>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Device-lock table shared by all stages (and, through
/// [`ResourceLocks::clone`], by any concurrent serving layer on top).
/// Acquisition always follows the global `DeviceKind::ALL` order; taking a
/// device while already holding a later-ordered one is a lock-order
/// inversion and panics immediately rather than deadlocking eventually.
#[derive(Clone, Default)]
pub struct ResourceLocks {
    locks: Arc<HashMap<DeviceKind, Mutex<()>>>,
}

impl ResourceLocks {
    /// Fresh lock table covering every device.
    pub fn new() -> Self {
        let mut m = HashMap::new();
        for d in DeviceKind::ALL {
            m.insert(d, Mutex::new(()));
        }
        ResourceLocks { locks: Arc::new(m) }
    }

    /// Acquire all requested devices in the global `DeviceKind::ALL` order
    /// (total order ⇒ no deadlock), run `f`, release. Release is
    /// panic-safe: an unwinding `f` still drops the locks and the
    /// held-device audit trail for this thread.
    pub fn with_resources<R>(&self, devices: &[DeviceKind], f: impl FnOnce() -> R) -> R {
        /// Removes this call's devices from the audit trail even when the
        /// stage body unwinds (drop runs during the unwind).
        struct HeldGuard<'a>(&'a [DeviceKind]);
        impl Drop for HeldGuard<'_> {
            fn drop(&mut self) {
                HELD.with(|held| held.borrow_mut().retain(|h| !self.0.contains(h)));
            }
        }
        let order = |d: DeviceKind| DeviceKind::ALL.iter().position(|&x| x == d).unwrap_or(0);
        let _held = HeldGuard(devices);
        let mut guards = Vec::with_capacity(devices.len());
        for d in DeviceKind::ALL {
            if devices.contains(&d) {
                HELD.with(|held| {
                    let mut held = held.borrow_mut();
                    if let Some(&worst) = held.iter().max_by_key(|&&h| order(h)) {
                        assert!(
                            order(worst) < order(d),
                            "lock-order inversion: acquiring {d} while holding {worst}"
                        );
                    }
                    held.push(d);
                });
                guards.push(self.locks[&d].lock());
            }
        }
        f()
    }
}

/// A running pipeline over items of type `T`.
pub struct PipelineExecutor;

impl PipelineExecutor {
    /// Push `items` through the staged pipeline, returning the outputs in
    /// input order. Stages run on their own threads; device locks enforce
    /// exclusivity. Strict mode: the first lost frame surfaces as a
    /// [`PipelineError`] naming the stage and frame (after every worker
    /// is joined), so callers that expect total success need no per-frame
    /// bookkeeping.
    pub fn run<T: Send + 'static>(
        stages: Vec<StageSpec<T>>,
        items: Vec<T>,
    ) -> Result<Vec<T>, PipelineError> {
        let outputs = Self::run_with_failures(stages, items)?;
        outputs
            .into_iter()
            .map(|o| {
                o.map_err(|fail| {
                    if fail.panicked {
                        PipelineError::StagePanic {
                            stage: fail.stage,
                            frame: fail.frame,
                            message: fail.error.message().to_string(),
                        }
                    } else {
                        PipelineError::FrameFailed {
                            stage: fail.stage,
                            frame: fail.frame,
                            error: fail.error,
                        }
                    }
                })
            })
            .collect()
    }

    /// Like [`PipelineExecutor::run`] but with per-frame failure
    /// granularity: a stage error or panic fails *that frame only*
    /// (downstream stages skip it) and every other frame completes.
    /// Output order matches input order.
    pub fn run_with_failures<T: Send + 'static>(
        stages: Vec<StageSpec<T>>,
        items: Vec<T>,
    ) -> Result<Vec<FrameOutput<T>>, PipelineError> {
        let n = items.len();
        let mut out: Vec<Option<FrameOutput<T>>> = (0..n).map(|_| None).collect();
        Self::run_stream(stages, items, |seq, item| out[seq] = Some(item))?;
        out.into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.ok_or_else(|| PipelineError::Disconnected {
                    detail: format!("frame {i} was never delivered"),
                })
            })
            .collect()
    }

    /// Streaming core: feed `items` through the pipeline with
    /// constant-depth channels and hand each `(seq, outcome)` to `sink` as
    /// it arrives (in input order — the channel chain is FIFO). Memory
    /// stays O(stage count), independent of the stream length, so this is
    /// the entry point for long-running serving loops.
    pub fn run_stream<T: Send + 'static>(
        stages: Vec<StageSpec<T>>,
        items: impl IntoIterator<Item = T> + Send + 'static,
        mut sink: impl FnMut(usize, FrameOutput<T>),
    ) -> Result<(), PipelineError> {
        if stages.is_empty() {
            for (i, item) in items.into_iter().enumerate() {
                sink(i, Ok(item));
            }
            return Ok(());
        }
        let locks = ResourceLocks::new();

        type Link<T> = (
            Sender<(usize, FrameOutput<T>)>,
            Receiver<(usize, FrameOutput<T>)>,
        );
        let (src_tx, mut prev_rx): Link<T> = bounded(STAGE_DEPTH);
        let mut handles = Vec::new();
        for stage in stages {
            let (tx, rx) = bounded::<(usize, FrameOutput<T>)>(STAGE_DEPTH);
            let locks = locks.clone();
            let handle = thread::Builder::new()
                .name(format!("pipeline-{}", stage.name))
                .spawn(move || {
                    while let Ok((seq, item)) = prev_rx.recv() {
                        let out = match item {
                            // A frame already lost upstream flows through
                            // untouched so ordering and accounting hold.
                            Err(fail) => Err(fail),
                            Ok(item) => {
                                let _span = tvmnp_telemetry::span!(
                                    "scheduler.stage",
                                    "stage" => stage.name,
                                    "frame" => seq,
                                );
                                run_stage_body(&stage, &locks, seq, item)
                            }
                        };
                        if tx.send((seq, out)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn pipeline worker");
            handles.push(handle);
            prev_rx = rx;
        }

        // Feed from a dedicated thread: with constant-depth channels the
        // source blocks once the pipeline fills, so it cannot share the
        // draining thread (unlike the old cap-equals-stream-length design).
        let feeder = thread::Builder::new()
            .name("pipeline-source".into())
            .spawn(move || {
                let mut fed = 0usize;
                for (i, item) in items.into_iter().enumerate() {
                    if src_tx.send((i, Ok(item))).is_err() {
                        return fed;
                    }
                    fed += 1;
                }
                fed
            })
            .expect("spawn pipeline source");

        let mut delivered = 0usize;
        while let Ok((seq, item)) = prev_rx.recv() {
            delivered += 1;
            sink(seq, item);
        }
        let fed = feeder.join().map_err(|_| PipelineError::Disconnected {
            detail: "pipeline source thread panicked".into(),
        })?;
        for h in handles {
            h.join().map_err(|_| PipelineError::Disconnected {
                detail: "pipeline worker thread panicked outside a stage body".into(),
            })?;
        }
        if delivered != fed {
            return Err(PipelineError::Disconnected {
                detail: format!("fed {fed} frames but only {delivered} arrived at the sink"),
            });
        }
        Ok(())
    }
}

/// Run one stage body under its device locks, converting an `Err` return
/// or a panic into a [`FrameFailure`] for this frame.
fn run_stage_body<T>(
    stage: &StageSpec<T>,
    locks: &ResourceLocks,
    seq: usize,
    item: T,
) -> FrameOutput<T> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        locks.with_resources(&stage.resources, || (stage.work)(item))
    }));
    match result {
        Ok(Ok(item)) => Ok(item),
        Ok(Err(error)) => {
            tvmnp_telemetry::counter_add(
                "scheduler.frame_failures",
                &[("stage", &stage.name), ("kind", "error")],
                1,
            );
            Err(FrameFailure {
                frame: seq,
                stage: stage.name.clone(),
                error,
                panicked: false,
            })
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            tvmnp_telemetry::counter_add(
                "scheduler.frame_failures",
                &[("stage", &stage.name), ("kind", "panic")],
                1,
            );
            Err(FrameFailure {
                frame: seq,
                stage: stage.name.clone(),
                error: ExecError::new(format!("stage body panicked: {message}")),
                panicked: true,
            })
        }
    }
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_and_applies_stages() {
        let stages = vec![
            StageSpec::new("double", &[DeviceKind::Cpu], |x: i64| x * 2),
            StageSpec::new("inc", &[DeviceKind::Apu], |x: i64| x + 1),
        ];
        let out = PipelineExecutor::run(stages, (0..64).collect()).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as i64 * 2 + 1);
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let out = PipelineExecutor::run(Vec::<StageSpec<u8>>::new(), vec![1, 2, 3]).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn long_stream_runs_in_constant_depth_channels() {
        // 4096 frames through depth-2 channels: the old cap-equals-length
        // design would have allocated channel space for every frame.
        let stages = vec![
            StageSpec::new("a", &[DeviceKind::Cpu], |x: u32| x + 1),
            StageSpec::new("b", &[DeviceKind::Apu], |x: u32| x * 3),
        ];
        let mut seen = Vec::new();
        PipelineExecutor::run_stream(stages, 0..4096u32, |seq, out| {
            seen.push((seq, out.unwrap()));
        })
        .unwrap();
        assert_eq!(seen.len(), 4096);
        for (i, (seq, v)) in seen.iter().enumerate() {
            assert_eq!(*seq, i, "FIFO chain must deliver in order");
            assert_eq!(*v, (i as u32 + 1) * 3);
        }
    }

    #[test]
    fn stage_panic_fails_that_frame_only() {
        let stages = vec![
            StageSpec::new("pre", &[DeviceKind::Cpu], |x: u64| x + 100),
            StageSpec::new("explode-on-7", &[DeviceKind::Apu], |x: u64| {
                assert!(x != 107, "frame seven is cursed");
                x
            }),
        ];
        let out = PipelineExecutor::run_with_failures(stages, (0..16).collect()).unwrap();
        assert_eq!(out.len(), 16, "every frame accounted for");
        for (i, o) in out.iter().enumerate() {
            if i == 7 {
                let fail = o.as_ref().unwrap_err();
                assert_eq!(fail.frame, 7);
                assert_eq!(fail.stage, "explode-on-7");
                assert!(fail.panicked);
                assert!(fail.error.to_string().contains("cursed"));
            } else {
                assert_eq!(*o.as_ref().unwrap(), i as u64 + 100);
            }
        }
    }

    #[test]
    fn strict_run_surfaces_typed_panic_error() {
        let stages = vec![StageSpec::new("boom", &[DeviceKind::Cpu], |x: u64| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x
        })];
        let err = PipelineExecutor::run(stages, (0..8).collect()).unwrap_err();
        match err {
            PipelineError::StagePanic {
                stage,
                frame,
                message,
            } => {
                assert_eq!(stage, "boom");
                assert_eq!(frame, 3);
                assert!(message.contains("boom on 3"));
            }
            other => panic!("expected StagePanic, got {other}"),
        }
    }

    #[test]
    fn fallible_stage_error_becomes_frame_failure() {
        let stages = vec![StageSpec::fallible(
            "checked",
            &[DeviceKind::Cpu],
            |x: u64| {
                if x.is_multiple_of(5) {
                    Err(ExecError::new(format!("rejecting {x}"))
                        .with_op("checked")
                        .with_device("cpu"))
                } else {
                    Ok(x * 2)
                }
            },
        )];
        let out = PipelineExecutor::run_with_failures(stages, (0..10).collect()).unwrap();
        for (i, o) in out.iter().enumerate() {
            if i % 5 == 0 {
                let fail = o.as_ref().unwrap_err();
                assert!(!fail.panicked);
                assert_eq!(fail.stage, "checked");
                assert_eq!(fail.frame, i);
                assert!(fail.error.to_string().contains(&format!("rejecting {i}")));
            } else {
                assert_eq!(*o.as_ref().unwrap(), i as u64 * 2);
            }
        }
    }

    #[test]
    fn failed_frames_skip_downstream_stages() {
        static DOWNSTREAM_RAN: AtomicUsize = AtomicUsize::new(0);
        let stages = vec![
            StageSpec::fallible("gate", &[DeviceKind::Cpu], |x: u64| {
                if x < 4 {
                    Err(ExecError::new("gated"))
                } else {
                    Ok(x)
                }
            }),
            StageSpec::new("count", &[DeviceKind::Apu], |x: u64| {
                DOWNSTREAM_RAN.fetch_add(1, Ordering::SeqCst);
                x
            }),
        ];
        let out = PipelineExecutor::run_with_failures(stages, (0..10).collect()).unwrap();
        assert_eq!(DOWNSTREAM_RAN.load(Ordering::SeqCst), 6);
        assert_eq!(out.iter().filter(|o| o.is_err()).count(), 4);
        // Lost frames still report the *originating* stage.
        assert!(out[0].as_ref().unwrap_err().stage == "gate");
    }

    #[test]
    fn exclusive_resource_never_concurrent() {
        // Two stages share the CPU: the lock must serialize their bodies.
        static IN_CPU: AtomicUsize = AtomicUsize::new(0);
        let body = |x: u64| {
            let now = IN_CPU.fetch_add(1, Ordering::SeqCst);
            assert_eq!(now, 0, "two stages inside the CPU section at once");
            std::thread::sleep(std::time::Duration::from_micros(200));
            IN_CPU.fetch_sub(1, Ordering::SeqCst);
            x + 1
        };
        let stages = vec![
            StageSpec::new("a", &[DeviceKind::Cpu], body),
            StageSpec::new("b", &[DeviceKind::Cpu], body),
        ];
        let out = PipelineExecutor::run(stages, (0..16).collect()).unwrap();
        assert_eq!(out.len(), 16);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 2));
    }

    #[test]
    fn disjoint_resources_do_overlap() {
        // Stage A (CPU) and stage B (APU) on a 2-deep pipeline should
        // overlap: total wall time well under the sequential sum.
        let d = std::time::Duration::from_millis(4);
        let stages = vec![
            StageSpec::new("a", &[DeviceKind::Cpu], move |x: u64| {
                std::thread::sleep(d);
                x
            }),
            StageSpec::new("b", &[DeviceKind::Apu], move |x: u64| {
                std::thread::sleep(d);
                x
            }),
        ];
        let n = 10u64;
        let t0 = std::time::Instant::now();
        let out = PipelineExecutor::run(stages, (0..n).collect()).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(out.len(), n as usize);
        // Sequential would be 2*n*d = 80 ms; pipelined ≈ (n+1)*d = 44 ms.
        assert!(
            elapsed < std::time::Duration::from_millis(70),
            "pipeline did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn lock_order_inversion_is_detected() {
        let locks = ResourceLocks::new();
        // Correct order (ALL order) is fine, including nesting a later
        // device inside an earlier one.
        locks.with_resources(&[DeviceKind::Cpu], || {
            locks.with_resources(&[DeviceKind::Apu], || {});
        });
        // Acquiring an earlier-ordered device while holding a later one
        // must trip the auditor instead of risking a deadlock.
        let inverted = catch_unwind(AssertUnwindSafe(|| {
            locks.with_resources(&[DeviceKind::Apu], || {
                locks.with_resources(&[DeviceKind::Cpu], || {});
            });
        }));
        assert!(inverted.is_err(), "inversion must be detected");
        // The audit trail must be clean after the unwind: a fresh valid
        // acquisition on this thread succeeds.
        locks.with_resources(&[DeviceKind::Cpu, DeviceKind::Apu], || {});
    }
}
