//! # tvmnp-scheduler
//!
//! The scheduling layer of paper §5: once the application's three models
//! are compiled, *where* and *when* they run decides end-to-end
//! performance.
//!
//! * [`computation`] — §5.1 model-level computation scheduling: measure
//!   each model under every target permutation and assign it to its
//!   fastest one (the paper's "simple method ... on the model-level");
//! * [`pipeline`] — §5.2 pipeline scheduling: an event-driven simulator
//!   over the `tvmnp-hwsim` timeline honoring the intra-frame dependency
//!   chain (object detection → anti-spoofing → emotion) and the
//!   exclusive-resource constraint ("models could not utilize the same
//!   resources at the same time"), plus the automatic assignment search
//!   the paper lists as future work;
//! * [`threaded`] — a real multi-threaded pipeline executor (crossbeam
//!   channels + per-resource locks) used by the application showcase.

pub mod computation;
pub mod pipeline;
pub mod threaded;

pub use computation::{best_assignment, ModelProfile};
pub use pipeline::{
    account_dropped_frames, auto_schedule, simulate_pipelined, simulate_sequential,
    FrameAccounting, PipelineStage, ScheduleResult, StageRun,
};
pub use threaded::{
    FrameFailure, FrameOutput, PipelineError, PipelineExecutor, ResourceLocks, StageSpec,
};
