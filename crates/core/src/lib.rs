//! # tvm-neuropilot
//!
//! A from-scratch Rust reproduction of **"Application Showcases for TVM
//! with NeuroPilot on Mobile Devices"** (ICPP Workshops '22): the TVM BYOC
//! flow bridging a multi-frontend deep-learning compiler to a
//! NeuroPilot-style vendor stack, evaluated on a simulated
//! Dimensity-800-class SoC.
//!
//! The umbrella crate re-exports the full stack and provides the
//! user-facing API spelled the way the paper's listings spell it:
//!
//! ```
//! use tvm_neuropilot::prelude::*;
//!
//! // Listing 4: build a Keras model and import it.
//! let keras = tvm_neuropilot::models::emotion::keras_emotion_model(7);
//! let module = tvm_neuropilot::frontends::keras::from_keras(&keras).unwrap();
//!
//! // Listing 2/6: partition for NeuroPilot and build.
//! let (partitioned, report) = nir::partition_for_nir(&module).unwrap();
//! assert!(report.num_subgraphs >= 1);
//!
//! let mut m = relay_build(&module, TargetMode::Byoc(TargetPolicy::ApuPrefer),
//!                         CostModel::default()).unwrap();
//!
//! // GraphModule-style inference.
//! let model = tvm_neuropilot::models::emotion::emotion_model(7);
//! let (outputs, time_us) = m.run(&model.sample_inputs(1)).unwrap();
//! assert_eq!(outputs[0].shape().dims(), &[1, 7]);
//! assert!(time_us > 0.0);
//! # let _ = partitioned;
//! ```
//!
//! Layer map (one crate per subsystem):
//!
//! | crate | role |
//! |---|---|
//! | [`tensor`] | dense tensors + float/int8 kernels |
//! | [`relay`] | graph IR, passes, BYOC partitioner, QNN dialect |
//! | [`frontends`] | PyTorch / Keras / TFLite / Darknet / ONNX importers |
//! | [`runtime`] | graph executor, storage planner, artifacts, Android deploy |
//! | [`neuropilot`] | Neuron IR, Relay→Neuron converter, planner, runtime |
//! | [`hwsim`] | Dimensity 800 cost model, timelines |
//! | [`byoc`] | build pipeline + the seven target permutations |
//! | [`scheduler`] | §5.1 computation + §5.2 pipeline scheduling |
//! | [`models`] | showcase models + the Table 1 zoo |
//! | [`vision`] | synthetic video, detectors, the Fig. 1 application |
//! | [`serving`] | concurrent multi-frame session pool + throughput simulator |
//! | [`telemetry`] | spans, metrics, profile/Chrome-trace exporters |
//! | [`observe`] | live observability: trace trees, quantile sketches, flight recorder |
//! | [`profile`] | measured-profile store, differential attribution, calibrated cost models |

pub use tvmnp_byoc as byoc;
pub use tvmnp_frontends as frontends;
pub use tvmnp_hwsim as hwsim;
pub use tvmnp_models as models;
pub use tvmnp_neuropilot as neuropilot;
pub use tvmnp_observe as observe;
pub use tvmnp_profile as profile;
pub use tvmnp_relay as relay;
pub use tvmnp_report as report;
pub use tvmnp_runtime as runtime;
pub use tvmnp_scheduler as scheduler;
pub use tvmnp_serving as serving;
pub use tvmnp_telemetry as telemetry;
pub use tvmnp_tensor as tensor;
pub use tvmnp_vision as vision;

/// The paper's `nir` module: `mod = nir.partition_for_nir(mod, params)`.
pub mod nir {
    pub use tvmnp_byoc::build::partition_for_nir;
    pub use tvmnp_neuropilot::support::{neuron_supported, NeuronSupport};
}

/// Everything needed for the common flows.
pub mod prelude {
    pub use crate::nir;
    pub use tvmnp_byoc::{
        measure_all, measure_one, relay_build, ArtifactCache, Measurement, Permutation,
        ResilienceError, ResiliencePolicy, ResilientSession, RunOutcome, TargetMode,
    };
    pub use tvmnp_hwsim::{CostModel, DeviceKind, FaultInjector, FaultPlan, RetryPolicy, SocSpec};
    pub use tvmnp_neuropilot::TargetPolicy;
    pub use tvmnp_observe::{ObserveConfig, ObservePlane, StatsSnapshot};
    pub use tvmnp_profile::{
        diff_profiles, CalibratedCostModel, Profile, ProfileDiff, ProfileKey, ProfileStore,
    };
    pub use tvmnp_relay::expr::Module;
    pub use tvmnp_relay::interp::run_module;
    pub use tvmnp_scheduler::{simulate_pipelined, simulate_sequential};
    pub use tvmnp_serving::{frame_segments, serving_rotation, simulate_serve, SessionPool};
    pub use tvmnp_tensor::{DType, QuantParams, Shape, Tensor};
    pub use tvmnp_vision::{Showcase, ShowcaseAssignment, SyntheticVideo};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_flows_compose() {
        let model = crate::models::zoo::mobilenet_v1(5);
        let (partitioned, report) = crate::nir::partition_for_nir(&model.module).unwrap();
        assert!(report.num_subgraphs >= 1);
        assert!(partitioned.num_subgraphs() >= 1);
        let mut compiled = relay_build(
            &model.module,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            CostModel::default(),
        )
        .unwrap();
        let (outs, t) = compiled.run(&model.sample_inputs(1)).unwrap();
        assert_eq!(outs[0].shape().dims(), &[1, 10]);
        assert!(t > 0.0);
    }
}
