//! Golden test: the Chrome trace exporter emits byte-identical,
//! schema-valid JSON for a fixed snapshot.

use serde_json::Value;
use tvmnp_telemetry::{chrome_trace, record_sim_span, snapshot, SpanEvent, TimeDomain};

/// The exact document expected for one sim-domain span: a process_name
/// metadata record plus one complete ("X") event, keys sorted.
const GOLDEN: &str = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
{\"args\":{\"name\":\"simulated-time\"},\"cat\":\"__metadata\",\"name\":\"process_name\",\
\"ph\":\"M\",\"pid\":2,\"tid\":0,\"ts\":0.0},\
{\"args\":{\"device\":\"apu\",\"op\":\"conv2d\"},\"cat\":\"executor\",\"dur\":5.5,\
\"name\":\"executor.node\",\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":10.0}]}";

fn fixed_snapshot() -> tvmnp_telemetry::Snapshot {
    tvmnp_telemetry::Snapshot {
        events: vec![SpanEvent {
            name: "executor.node".to_string(),
            ts_us: 10.0,
            dur_us: 5.5,
            tid: 0,
            domain: TimeDomain::Sim,
            args: vec![
                ("device".to_string(), "apu".to_string()),
                ("op".to_string(), "conv2d".to_string()),
            ],
        }],
        metrics: vec![],
    }
}

#[test]
fn chrome_trace_matches_golden_and_is_deterministic() {
    let once = chrome_trace(&fixed_snapshot()).to_string();
    let twice = chrome_trace(&fixed_snapshot()).to_string();
    assert_eq!(once, twice, "export must be deterministic");
    assert_eq!(once, GOLDEN);

    // The same bytes must come out of the full global-collector path.
    tvmnp_telemetry::enable();
    tvmnp_telemetry::reset();
    record_sim_span(
        "executor.node",
        10.0,
        5.5,
        vec![
            ("device".to_string(), "apu".to_string()),
            ("op".to_string(), "conv2d".to_string()),
        ],
    );
    tvmnp_telemetry::disable();
    let via_collector = chrome_trace(&snapshot()).to_string();
    assert_eq!(via_collector, GOLDEN);
}

#[test]
fn trace_events_are_schema_valid() {
    let doc = chrome_trace(&fixed_snapshot());
    let parsed: Value = serde_json::from_str(&doc.to_string()).expect("valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for event in events {
        let ph = event["ph"].as_str().expect("ph present");
        assert!(ph == "X" || ph == "M", "known phase, got {ph}");
        assert!(event["ts"].as_f64().is_some(), "ts numeric");
        assert!(event["pid"].as_u64().is_some(), "pid numeric");
        assert!(event["tid"].as_u64().is_some(), "tid numeric");
        assert!(event["name"].as_str().is_some(), "name string");
        if ph == "X" {
            assert!(event["dur"].as_f64().is_some(), "complete events carry dur");
        }
    }
}
