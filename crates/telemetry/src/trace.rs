//! Causal request tracing: per-request trace contexts propagated through
//! worker threads, resilient re-dispatch, and executor node dispatch.
//!
//! A *trace* groups every span recorded on behalf of one request (one
//! served frame): the serving pool opens a [`TraceGuard`] on the worker
//! thread before processing a frame, and every span recorded while the
//! guard is alive — executor nodes, retries, fallback transitions —
//! carries three extra attributes:
//!
//! * `trace`  — the trace id (stable per request, chosen by the caller);
//! * `span`   — a process-unique id for this span;
//! * `parent` — the `span` id of the innermost enclosing span (`0` for
//!   trace roots).
//!
//! Together they let `tvmnp-observe` reassemble a complete causal span
//! tree per request even when spans from many concurrent requests
//! interleave in the collector. Propagation is thread-local (requests
//! never migrate threads mid-frame in this codebase); cross-thread
//! hand-off is explicit via [`begin_trace`] with a pre-allocated root id.
//!
//! Everything here is off unless a guard is alive on the current thread:
//! the instrumented span paths ask [`active`] (one thread-local read)
//! only after the global enabled flag already passed, so untraced runs
//! stay on the pre-existing fast path and produce byte-identical output.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Span ids are process-unique and never zero (zero = "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique span id. Exposed so callers can
/// pre-allocate root ids before fanning frames out to worker threads and
/// stitch summary spans onto the finished trace afterwards (see
/// [`crate::record_sim_span_traced`]).
pub fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

struct TraceState {
    trace_id: u64,
    /// Open span ids, innermost last. The last entry is the parent of
    /// the next span opened on this thread.
    stack: Vec<u64>,
    /// Ambient labels stamped on every span recorded in this trace.
    labels: Vec<(String, String)>,
}

thread_local! {
    static CURRENT: RefCell<Option<TraceState>> = const { RefCell::new(None) };
    static LANE: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Whether a trace is active on the current thread.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// RAII guard for one trace on the current thread; restores the previous
/// trace (if any) when dropped.
pub struct TraceGuard {
    prev: Option<TraceState>,
}

/// Open a trace on this thread. `trace_id` is caller-chosen (the serving
/// pool derives it from the frame index so re-runs produce the same
/// ids); `root_span` is the parent every top-level span attaches to —
/// allocate it with [`alloc_span_id`] and record the root itself later
/// via [`crate::record_sim_span_traced`]. `labels` are stamped on every
/// span recorded while the guard lives (tenant / model / permutation).
pub fn begin_trace(trace_id: u64, root_span: u64, labels: Vec<(String, String)>) -> TraceGuard {
    let prev = CURRENT.with(|c| {
        c.borrow_mut().replace(TraceState {
            trace_id,
            stack: vec![root_span],
            labels,
        })
    });
    TraceGuard { prev }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Identity a span records under: `(trace, span, parent)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanIds {
    /// Trace the span belongs to.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Enclosing span's id (`0` = trace root).
    pub parent: u64,
}

/// Open a nested span: allocate an id with the current innermost span as
/// parent and push it as the new innermost. Returns `None` (and pushes
/// nothing) when no trace is active. Callers must pass the ids back to
/// [`close_span`] exactly once.
pub(crate) fn open_span() -> Option<SpanIds> {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let state = cur.as_mut()?;
        let parent = state.stack.last().copied().unwrap_or(0);
        let span = alloc_span_id();
        state.stack.push(span);
        Some(SpanIds {
            trace: state.trace_id,
            span,
            parent,
        })
    })
}

/// Pop a span opened with [`open_span`]. Tolerates the trace having
/// ended early (guard dropped before an escaped span guard).
pub(crate) fn close_span(ids: SpanIds) {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if let Some(state) = cur.as_mut() {
            if state.stack.last() == Some(&ids.span) {
                state.stack.pop();
            } else if let Some(pos) = state.stack.iter().rposition(|&s| s == ids.span) {
                // A child guard outlived its parent guard (should not
                // happen with lexical scoping, but stay consistent).
                state.stack.truncate(pos);
            }
        }
    })
}

/// Ids for an instantaneous (leaf) span: fresh id, current innermost
/// span as parent, nothing pushed. `None` when no trace is active.
pub(crate) fn leaf_ids() -> Option<SpanIds> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let state = cur.as_ref()?;
        Some(SpanIds {
            trace: state.trace_id,
            span: alloc_span_id(),
            parent: state.stack.last().copied().unwrap_or(0),
        })
    })
}

/// Append the trace identity and ambient labels of the active trace to a
/// span's attribute list.
pub(crate) fn stamp(args: &mut Vec<(String, String)>, ids: SpanIds) {
    args.push(("trace".to_string(), ids.trace.to_string()));
    args.push(("span".to_string(), ids.span.to_string()));
    args.push(("parent".to_string(), ids.parent.to_string()));
    CURRENT.with(|c| {
        if let Some(state) = c.borrow().as_ref() {
            for (k, v) in &state.labels {
                if !args.iter().any(|(ak, _)| ak == k) {
                    args.push((k.clone(), v.clone()));
                }
            }
        }
    });
}

/// The current trace id, if a trace is active on this thread.
pub fn current_trace_id() -> Option<u64> {
    CURRENT.with(|c| c.borrow().as_ref().map(|s| s.trace_id))
}

/// Base of the thread-id namespace used for explicit worker lanes (see
/// [`set_worker_lane`]): lane `n` records as tid `WORKER_LANE_BASE + n`,
/// far above any dense per-thread id the collector assigns.
pub const WORKER_LANE_BASE: u64 = 1000;

/// Pin this thread's spans to an explicit worker lane: spans record with
/// `tid = WORKER_LANE_BASE + lane` instead of the dense first-event
/// thread id, so concurrent serving workers render as stable,
/// non-interleaved lanes in the Chrome trace (lane = worker index, not
/// whichever thread happened to record first). `None` restores the
/// default dense ids.
pub fn set_worker_lane(lane: Option<u64>) {
    LANE.with(|l| l.set(lane));
}

/// The lane pinned on this thread, if any.
pub(crate) fn worker_lane() -> Option<u64> {
    LANE.with(|l| l.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_means_inactive_and_no_ids() {
        assert!(!active());
        assert!(leaf_ids().is_none());
        assert!(open_span().is_none());
    }

    #[test]
    fn spans_nest_under_the_root() {
        let root = alloc_span_id();
        let _g = begin_trace(42, root, vec![("tenant".into(), "t0".into())]);
        assert!(active());
        assert_eq!(current_trace_id(), Some(42));

        let leaf = leaf_ids().unwrap();
        assert_eq!(leaf.trace, 42);
        assert_eq!(leaf.parent, root);

        let inner = open_span().unwrap();
        assert_eq!(inner.parent, root);
        let deeper = leaf_ids().unwrap();
        assert_eq!(deeper.parent, inner.span);
        close_span(inner);
        assert_eq!(leaf_ids().unwrap().parent, root);

        let mut args = vec![("op".to_string(), "conv2d".to_string())];
        stamp(&mut args, leaf);
        assert!(args.contains(&("trace".to_string(), "42".to_string())));
        assert!(args.contains(&("tenant".to_string(), "t0".to_string())));
    }

    #[test]
    fn guard_restores_previous_trace() {
        let r1 = alloc_span_id();
        let g1 = begin_trace(1, r1, vec![]);
        {
            let r2 = alloc_span_id();
            let _g2 = begin_trace(2, r2, vec![]);
            assert_eq!(current_trace_id(), Some(2));
        }
        assert_eq!(current_trace_id(), Some(1));
        drop(g1);
        assert!(!active());
    }

    #[test]
    fn span_ids_are_unique() {
        let a = alloc_span_id();
        let b = alloc_span_id();
        assert_ne!(a, b);
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn worker_lane_round_trips() {
        assert_eq!(worker_lane(), None);
        set_worker_lane(Some(3));
        assert_eq!(worker_lane(), Some(3));
        set_worker_lane(None);
        assert_eq!(worker_lane(), None);
    }
}
