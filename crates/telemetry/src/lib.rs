//! Lightweight observability for the TVM + NeuroPilot reproduction.
//!
//! Three pieces, all reachable through a process-global collector:
//!
//! * **Spans** — [`span!`] opens an RAII guard that records a named,
//!   attribute-tagged interval when dropped. Wall-clock spans time real
//!   work (pass pipelines, codegen, imports); *simulated-time* spans are
//!   recorded explicitly via [`record_sim_span`] with timestamps taken
//!   from the hwsim cost model, so a trace of a simulated run lines up on
//!   the simulated timeline rather than host wall time.
//! * **Metrics** — counters, gauges, and fixed-bucket histograms keyed by
//!   name plus sorted labels, e.g. `executor.node_us{device=apu,kernel=conv2d}`
//!   (see [`metrics`]).
//! * **Exporters** — a per-op profile table, Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`), and JSONL (see
//!   [`export`]).
//!
//! Collection is disabled by default: every instrumentation point first
//! checks an atomic flag, so the instrumented hot paths cost one relaxed
//! load when telemetry is off. Bench binaries flip it on for `--profile`
//! / `--trace-out`.

pub mod events;
pub mod export;
pub mod metrics;
pub mod trace;

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::ThreadId;
use std::time::Instant;

pub use events::{clear_event_sink, emit_event, set_event_sink, sink_active, EventSink};
pub use export::{chrome_trace, jsonl, profile_table, write_chrome_trace, ProfileOptions};
pub use metrics::{counter_add, gauge_set, histogram_observe, Histogram, MetricKey, MetricValue};
pub use trace::{alloc_span_id, begin_trace, set_worker_lane, TraceGuard, WORKER_LANE_BASE};

/// Which clock a span's timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TimeDomain {
    /// Host wall clock, microseconds since [`reset`] (or first use).
    Wall,
    /// Simulated time from the hwsim cost model, microseconds since the
    /// start of the simulated run.
    Sim,
}

/// One recorded span interval.
#[derive(Debug, Clone, Serialize)]
pub struct SpanEvent {
    /// Dotted span name, e.g. `byoc.partition` or `executor.node`.
    pub name: String,
    /// Start timestamp in microseconds within `domain`.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Dense per-process thread index (0 = first thread seen).
    pub tid: u64,
    /// Clock the timestamps belong to.
    pub domain: TimeDomain,
    /// Attribute key/value pairs, in the order given at the span site.
    pub args: Vec<(String, String)>,
}

struct Collector {
    events: Vec<SpanEvent>,
    /// Dense thread ids, assigned in order of each thread's first event.
    thread_ids: HashMap<ThreadId, u64>,
    epoch: Instant,
}

impl Collector {
    fn tid(&mut self) -> u64 {
        // An explicit worker lane (set by the serving pool) beats the
        // dense first-event id: concurrent workers then render as stable,
        // non-interleaved lanes in the Chrome trace.
        if let Some(lane) = trace::worker_lane() {
            return trace::WORKER_LANE_BASE + lane;
        }
        let next = self.thread_ids.len() as u64;
        *self
            .thread_ids
            .entry(std::thread::current().id())
            .or_insert(next)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: std::sync::OnceLock<Mutex<Collector>> = std::sync::OnceLock::new();
    COLLECTOR.get_or_init(|| {
        Mutex::new(Collector {
            events: Vec::new(),
            thread_ids: HashMap::new(),
            epoch: Instant::now(),
        })
    })
}

/// Turn collection on. Spans and metrics recorded while disabled are
/// dropped at the instrumentation site.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turn collection off.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether collection is currently on (one relaxed atomic load).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static DETAIL: AtomicBool = AtomicBool::new(false);

/// Turn profile-detail collection on or off. While on (and the
/// collector is enabled), the executor stamps its spans with work-kind,
/// energy, and analytic-reference attributes and emits per-kernel spans
/// for external modules, so a measured profile can be built from the
/// snapshot (`tvmnp-profile`). Off by default and off for every normal
/// run: the extra device-tagged spans would double-count in the
/// utilization report, which consumes every sim span carrying a
/// `device` arg. Only dedicated profile-collection passes flip this.
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Release);
}

/// Whether profile-detail collection is on *and* the collector is
/// enabled (detail spans are never recorded while collection is off).
#[inline]
pub fn detail_enabled() -> bool {
    is_enabled() && DETAIL.load(Ordering::Relaxed)
}

/// Clear all recorded spans and metrics and re-anchor the wall-clock
/// epoch at "now". Does not change the enabled flag.
pub fn reset() {
    let mut c = collector().lock();
    c.events.clear();
    c.thread_ids.clear();
    c.epoch = Instant::now();
    metrics::reset();
}

/// Everything recorded so far, for handing to the exporters.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    /// Recorded spans, in completion order.
    pub events: Vec<SpanEvent>,
    /// Metrics, sorted by key.
    pub metrics: Vec<(MetricKey, MetricValue)>,
}

impl Snapshot {
    /// Spans with the given name, in recorded order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanEvent> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Spans on the simulated timeline only.
    pub fn sim_spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter(|e| e.domain == TimeDomain::Sim)
    }

    /// Sum of durations of all spans with the given name.
    pub fn total_us(&self, name: &str) -> f64 {
        self.spans_named(name).map(|e| e.dur_us).sum()
    }
}

/// Copy out the recorded spans and metrics.
pub fn snapshot() -> Snapshot {
    let events = collector().lock().events.clone();
    Snapshot {
        events,
        metrics: metrics::snapshot(),
    }
}

/// Record a span on the simulated timeline with explicit timestamps
/// (microseconds of simulated time). No-op while disabled. Under an
/// active trace context the span is stamped with `trace`/`span`/`parent`
/// ids as a leaf of the innermost open span.
pub fn record_sim_span(name: &str, ts_us: f64, dur_us: f64, mut args: Vec<(String, String)>) {
    if !is_enabled() {
        return;
    }
    if let Some(ids) = trace::leaf_ids() {
        trace::stamp(&mut args, ids);
    }
    push_sim_event(name, ts_us, dur_us, args);
}

/// Record a simulated-time span with an *explicit* trace identity,
/// bypassing the thread-local context. This is how the serving pool
/// stitches post-hoc schedule spans (frame roots, stage summaries,
/// queue-wait intervals) onto traces whose worker-side spans were
/// already recorded: allocate ids with [`trace::alloc_span_id`] up
/// front, hand them to the workers as trace roots, and attach the
/// summary spans here once the simulated schedule is known.
pub fn record_sim_span_traced(
    ids: trace::SpanIds,
    name: &str,
    ts_us: f64,
    dur_us: f64,
    mut args: Vec<(String, String)>,
) {
    if !is_enabled() {
        return;
    }
    trace::stamp(&mut args, ids);
    push_sim_event(name, ts_us, dur_us, args);
}

fn push_sim_event(name: &str, ts_us: f64, dur_us: f64, args: Vec<(String, String)>) {
    // Forward interesting span ends to the flight recorder before moving
    // the args into the collector; emission happens outside its lock.
    let forward = (events::sink_active() && events::forward_span_end(name)).then(|| {
        let mut fields = vec![
            ("name".to_string(), name.to_string()),
            ("ts_us".to_string(), format!("{ts_us:.3}")),
            ("dur_us".to_string(), format!("{dur_us:.3}")),
        ];
        fields.extend(args.iter().cloned());
        fields
    });
    {
        let mut c = collector().lock();
        let tid = c.tid();
        c.events.push(SpanEvent {
            name: name.to_string(),
            ts_us,
            dur_us,
            tid,
            domain: TimeDomain::Sim,
            args,
        });
    }
    if let Some(fields) = forward {
        events::emit_event("span.end", fields);
    }
}

/// RAII wall-clock span; records an event when dropped. Construct through
/// the [`span!`] macro, which skips argument formatting while disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: String,
    args: Vec<(String, String)>,
    start: Instant,
    /// Trace identity when opened under an active trace context; spans
    /// recorded while this guard lives become its children.
    ids: Option<trace::SpanIds>,
}

impl SpanGuard {
    /// Open a live span (collection was enabled at entry).
    pub fn enter(name: &str, args: Vec<(String, String)>) -> SpanGuard {
        SpanGuard {
            active: Some(ActiveSpan {
                name: name.to_string(),
                args,
                start: Instant::now(),
                ids: trace::open_span(),
            }),
        }
    }

    /// A guard that records nothing.
    pub fn disabled() -> SpanGuard {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut span) = self.active.take() else {
            return;
        };
        // Still record if telemetry was disabled mid-span: the guard was
        // opened under an enabled collector, so the interval is wanted.
        let dur_us = span.start.elapsed().as_secs_f64() * 1e6;
        if let Some(ids) = span.ids {
            trace::close_span(ids);
            trace::stamp(&mut span.args, ids);
        }
        let forward = (events::sink_active() && events::forward_span_end(&span.name)).then(|| {
            let mut fields = vec![
                ("name".to_string(), span.name.clone()),
                ("dur_us".to_string(), format!("{dur_us:.3}")),
            ];
            fields.extend(span.args.iter().cloned());
            fields
        });
        {
            let mut c = collector().lock();
            let ts_us = span.start.duration_since(c.epoch).as_secs_f64() * 1e6;
            let tid = c.tid();
            c.events.push(SpanEvent {
                name: span.name,
                ts_us,
                dur_us,
                tid,
                domain: TimeDomain::Wall,
                args: span.args,
            });
        }
        if let Some(fields) = forward {
            events::emit_event("span.end", fields);
        }
    }
}

/// Open a wall-clock span guard for the enclosing scope.
///
/// ```
/// let _g = tvmnp_telemetry::span!("byoc.partition");
/// let _g = tvmnp_telemetry::span!("executor.node", "op" => "conv2d", "device" => "apu");
/// ```
///
/// Attribute values are formatted with `Display` only when collection is
/// enabled; otherwise the macro costs one atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::is_enabled() {
            $crate::SpanGuard::enter(
                $name,
                ::std::vec![$((::std::string::String::from($k), ::std::format!("{}", $v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global collector, so serialize them.
    pub(crate) fn lock_global() -> parking_lot::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock()
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = lock_global();
        disable();
        reset();
        {
            let _g = span!("unseen", "k" => 1);
        }
        record_sim_span("unseen.sim", 0.0, 1.0, vec![]);
        assert!(snapshot().events.is_empty());
    }

    #[test]
    fn span_nesting_orders_by_completion() {
        let _l = lock_global();
        enable();
        reset();
        {
            let _outer = span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("inner", "depth" => 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        // Inner drops first; outer must fully contain it on the timeline.
        let inner = &snap.events[0];
        let outer = &snap.events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert!(outer.ts_us <= inner.ts_us);
        assert!(outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us);
        assert_eq!(inner.args, vec![("depth".to_string(), "2".to_string())]);
    }

    #[test]
    fn spans_are_thread_safe_and_tids_dense() {
        let _l = lock_global();
        enable();
        reset();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..8 {
                        let _g = span!("worker", "t" => t, "i" => i);
                    }
                });
            }
        });
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 32);
        let mut tids: Vec<u64> = snap.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "one dense tid per thread");
        assert!(*tids.iter().max().unwrap() < 4);
    }

    #[test]
    fn sim_spans_keep_explicit_timestamps() {
        let _l = lock_global();
        enable();
        reset();
        record_sim_span(
            "executor.node",
            10.0,
            5.5,
            vec![("op".into(), "conv2d".into())],
        );
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].domain, TimeDomain::Sim);
        assert_eq!(snap.events[0].ts_us, 10.0);
        assert_eq!(snap.events[0].dur_us, 5.5);
    }
}
