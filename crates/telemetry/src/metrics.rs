//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Every metric is keyed by a name plus a sorted label set and renders as
//! `name{k=v,...}`, e.g. `executor.node_us{device=apu,kernel=conv2d}`.
//! Recording is a no-op while the collector is disabled.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;

/// Default histogram buckets for microsecond timings (upper bounds; an
/// implicit +Inf overflow bucket follows the last).
pub const DEFAULT_US_BUCKETS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10_000.0,
    20_000.0, 50_000.0, 100_000.0,
];

/// Metric identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct MetricKey {
    /// Metric name, e.g. `executor.node_us`.
    pub name: String,
    /// Label set, sorted by key.
    pub labels: BTreeMap<String, String>,
}

impl MetricKey {
    /// Build a key from a label slice (order-insensitive).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Current value of one metric.
#[derive(Debug, Clone, Serialize)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-set gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// Fixed-bucket histogram state.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive).
    pub buckets: Vec<f64>,
    /// Per-bucket counts; one extra trailing slot counts overflow (+Inf).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over `buckets` (upper bounds, ascending); an
    /// implicit +Inf overflow bucket is appended.
    pub fn new(buckets: &[f64]) -> Histogram {
        Histogram {
            buckets: buckets.to_vec(),
            counts: vec![0; buckets.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .buckets
            .iter()
            .position(|&ub| value <= ub)
            .unwrap_or(self.buckets.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

static REGISTRY: Mutex<BTreeMap<MetricKey, MetricValue>> = Mutex::new(BTreeMap::new());

/// Add `delta` to a counter (created at 0 on first use). No-op while
/// collection is disabled.
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !crate::is_enabled() {
        return;
    }
    let key = MetricKey::new(name, labels);
    let mut reg = REGISTRY.lock();
    match reg.entry(key).or_insert(MetricValue::Counter(0)) {
        MetricValue::Counter(c) => *c += delta,
        other => *other = MetricValue::Counter(delta),
    }
}

/// Set a gauge to `value`. No-op while collection is disabled.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if !crate::is_enabled() {
        return;
    }
    let key = MetricKey::new(name, labels);
    REGISTRY.lock().insert(key, MetricValue::Gauge(value));
}

/// Observe `value` in a histogram with [`DEFAULT_US_BUCKETS`]. No-op
/// while collection is disabled.
pub fn histogram_observe(name: &str, labels: &[(&str, &str)], value: f64) {
    histogram_observe_with_buckets(name, labels, value, DEFAULT_US_BUCKETS);
}

/// Observe `value` in a histogram with caller-chosen fixed buckets
/// (used on first creation; later observations reuse the existing
/// buckets). No-op while collection is disabled.
pub fn histogram_observe_with_buckets(
    name: &str,
    labels: &[(&str, &str)],
    value: f64,
    buckets: &[f64],
) {
    if !crate::is_enabled() {
        return;
    }
    let key = MetricKey::new(name, labels);
    let mut reg = REGISTRY.lock();
    let entry = reg
        .entry(key)
        .or_insert_with(|| MetricValue::Histogram(Histogram::new(buckets)));
    match entry {
        MetricValue::Histogram(h) => h.observe(value),
        other => {
            let mut h = Histogram::new(buckets);
            h.observe(value);
            *other = MetricValue::Histogram(h);
        }
    }
}

/// All metrics, sorted by key.
pub fn snapshot() -> Vec<(MetricKey, MetricValue)> {
    REGISTRY
        .lock()
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

pub(crate) fn reset() {
    REGISTRY.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let _l = crate::tests::lock_global();
        crate::enable();
        crate::reset();
        let buckets = [1.0, 10.0, 100.0];
        for v in [0.5, 1.0, 3.0, 10.0, 99.0, 100.5, 1e6] {
            histogram_observe_with_buckets("t_us", &[("k", "v")], v, &buckets);
        }
        crate::disable();
        let snap = snapshot();
        let (key, value) = &snap[0];
        assert_eq!(key.to_string(), "t_us{k=v}");
        let MetricValue::Histogram(h) = value else {
            panic!("expected histogram")
        };
        // <=1: {0.5, 1.0}; <=10: {3.0, 10.0}; <=100: {99.0}; overflow: {100.5, 1e6}.
        assert_eq!(h.counts, vec![2, 2, 1, 2]);
        assert_eq!(h.count, 7);
        assert!((h.sum - (0.5 + 1.0 + 3.0 + 10.0 + 99.0 + 100.5 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn counters_and_gauges() {
        let _l = crate::tests::lock_global();
        crate::enable();
        crate::reset();
        counter_add("runs", &[], 1);
        counter_add("runs", &[], 2);
        gauge_set("util", &[("device", "apu")], 0.75);
        crate::disable();
        // Disabled: must not record.
        counter_add("runs", &[], 100);
        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        assert!(matches!(snap[0].1, MetricValue::Counter(3)));
        assert_eq!(snap[1].0.to_string(), "util{device=apu}");
        assert!(matches!(snap[1].1, MetricValue::Gauge(v) if v == 0.75));
    }

    #[test]
    fn label_order_is_canonical() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "m{a=1,b=2}");
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(DEFAULT_US_BUCKETS);
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0.0);
        assert_eq!(h.mean(), 0.0, "empty mean must not divide by zero");
        assert!(h.counts.iter().all(|&c| c == 0));
        assert_eq!(h.counts.len(), DEFAULT_US_BUCKETS.len() + 1);
    }

    #[test]
    fn single_observation_histogram() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.observe(42.0);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42.0);
        assert_eq!(h.mean(), 42.0);
        // 42 lands in the (10, 100] bucket; boundary is inclusive.
        assert_eq!(h.counts, vec![0, 1, 0]);
        let mut boundary = Histogram::new(&[10.0, 100.0]);
        boundary.observe(10.0);
        assert_eq!(boundary.counts, vec![1, 0, 0]);
    }

    #[test]
    fn overflow_bucket_catches_out_of_range() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(f64::MAX);
        h.observe(3.0);
        assert_eq!(h.counts, vec![0, 0, 2], "both land in the +Inf bucket");
        assert_eq!(h.count, 2);
        assert!(h.mean() > 1.0);
    }

    #[test]
    fn metric_key_label_sort_is_stable_under_permutation_and_ordering() {
        // Every permutation of the same label set is the same key with
        // the same canonical rendering.
        let perms: [&[(&str, &str)]; 3] = [
            &[("z", "3"), ("a", "1"), ("m", "2")],
            &[("m", "2"), ("z", "3"), ("a", "1")],
            &[("a", "1"), ("m", "2"), ("z", "3")],
        ];
        let canonical = MetricKey::new("k", perms[0]);
        for p in perms {
            let key = MetricKey::new("k", p);
            assert_eq!(key, canonical);
            assert_eq!(key.to_string(), "k{a=1,m=2,z=3}");
        }
        // Keys sort by name first, then by label map — deterministic
        // ordering for snapshot output regardless of insertion order.
        let mut keys = [
            MetricKey::new("b", &[]),
            MetricKey::new("a", &[("x", "2")]),
            MetricKey::new("a", &[("x", "1")]),
        ];
        keys.sort();
        let shown: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        assert_eq!(shown, vec!["a{x=1}", "a{x=2}", "b"]);
    }
}
