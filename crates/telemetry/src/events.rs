//! Structured event fan-out to an installed sink (the flight recorder).
//!
//! Spans and metrics answer "how long / how many"; events answer "what
//! happened, in order": a fault was injected, a retry fired, a fallback
//! switched permutations, a cache entry was evicted, a stage was
//! dropped. `tvmnp-observe` installs an [`EventSink`] backed by its ring
//! buffer; instrumentation sites call [`emit_event`] which costs one
//! relaxed atomic load when no sink is installed.
//!
//! Interesting span ends are forwarded as `span.end` events too (see
//! [`forward_span_end`]) so the flight recorder's window shows causality
//! — which frame / stage / retry surrounded a fault — without drowning
//! in per-node executor spans (those stay in the stats registry).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Receiver for structured events. Implementations must be cheap and
/// non-blocking: sites emit while serving.
pub trait EventSink: Send + Sync {
    /// One event: a short dotted `kind` (e.g. `resilience.fallback`)
    /// plus key/value fields. Events carry a `trace` field when emitted
    /// under an active trace context.
    fn event(&self, kind: &str, fields: &[(String, String)]);
}

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Arc<dyn EventSink>>> {
    static SLOT: std::sync::OnceLock<Mutex<Option<Arc<dyn EventSink>>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install the process-global event sink (replacing any previous one).
pub fn set_event_sink(sink: Arc<dyn EventSink>) {
    *sink_slot().lock() = Some(sink);
    SINK_ACTIVE.store(true, Ordering::Release);
}

/// Remove the event sink; subsequent [`emit_event`] calls cost one load.
pub fn clear_event_sink() {
    SINK_ACTIVE.store(false, Ordering::Release);
    *sink_slot().lock() = None;
}

/// Whether a sink is installed (one relaxed atomic load).
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Relaxed)
}

/// Emit a structured event to the installed sink, if any. Tags the event
/// with the current trace id when a trace context is active, so flight
/// events tie back to the causal span tree of the frame that produced
/// them.
pub fn emit_event(kind: &str, mut fields: Vec<(String, String)>) {
    if !sink_active() {
        return;
    }
    let sink = sink_slot().lock().clone();
    let Some(sink) = sink else { return };
    if let Some(trace) = crate::trace::current_trace_id() {
        if !fields.iter().any(|(k, _)| k == "trace") {
            fields.push(("trace".to_string(), trace.to_string()));
        }
    }
    sink.event(kind, &fields);
}

/// Span names worth forwarding to the sink as `span.end` events. Frame,
/// stage, scheduler, and resilience spans carry post-mortem causality;
/// per-node executor spans are far too chatty for a small ring and are
/// aggregated in the stats registry instead.
pub(crate) fn forward_span_end(name: &str) -> bool {
    name.starts_with("serve.")
        || name.starts_with("resilience.")
        || name.starts_with("scheduler.")
        || name.starts_with("vision.")
        || name.starts_with("cache.")
}

#[cfg(test)]
mod tests {
    use super::*;

    type CapturedEvent = (String, Vec<(String, String)>);
    struct Capture(Mutex<Vec<CapturedEvent>>);
    impl EventSink for Capture {
        fn event(&self, kind: &str, fields: &[(String, String)]) {
            self.0.lock().push((kind.to_string(), fields.to_vec()));
        }
    }

    #[test]
    fn emit_reaches_sink_and_tags_trace() {
        let _l = crate::tests::lock_global();
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        set_event_sink(cap.clone());

        emit_event("fault.injected", vec![("device".into(), "apu".into())]);
        {
            let root = crate::trace::alloc_span_id();
            let _g = crate::trace::begin_trace(9, root, vec![]);
            emit_event(
                "resilience.fallback",
                vec![("from".into(), "np-apu".into())],
            );
        }
        clear_event_sink();
        emit_event("fault.injected", vec![]); // dropped: no sink

        let got = cap.0.lock();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "fault.injected");
        assert!(!got[0].1.iter().any(|(k, _)| k == "trace"));
        assert!(got[1].1.contains(&("trace".to_string(), "9".to_string())));
    }

    #[test]
    fn span_forwarding_filter_keeps_chatty_spans_out() {
        assert!(forward_span_end("serve.frame"));
        assert!(forward_span_end("resilience.retry"));
        assert!(forward_span_end("scheduler.stage"));
        assert!(!forward_span_end("executor.node"));
        assert!(!forward_span_end("byoc.codegen"));
    }
}
