//! Exporters: per-op profile table, Chrome trace-event JSON, and JSONL.

use crate::{Snapshot, SpanEvent, TimeDomain};
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;

/// How [`profile_table`] aggregates spans.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Only aggregate spans with this name (`None` = every span). Rows
    /// are keyed by the span's `op` attribute (falling back to the span
    /// name) and its `device` attribute.
    pub span_name: Option<String>,
    /// Denominator for the "% of run" column; `None` uses the sum of all
    /// aggregated rows.
    pub total_us: Option<f64>,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            span_name: Some("executor.node".to_string()),
            total_us: None,
        }
    }
}

fn arg<'e>(event: &'e SpanEvent, key: &str) -> Option<&'e str> {
    event
        .args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Render the per-op profile table: op name, device, call count, total
/// microseconds, and share of the run.
pub fn profile_table(snapshot: &Snapshot, opts: &ProfileOptions) -> String {
    // (op, device) -> (calls, total_us)
    let mut rows: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for event in &snapshot.events {
        if let Some(name) = &opts.span_name {
            if &event.name != name {
                continue;
            }
        }
        let op = arg(event, "op")
            .or_else(|| arg(event, "stage"))
            .unwrap_or(&event.name)
            .to_string();
        let device = arg(event, "device").unwrap_or("-").to_string();
        let entry = rows.entry((op, device)).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += event.dur_us;
    }
    let sum_us: f64 = rows.values().map(|(_, us)| us).sum();
    let total_us = opts.total_us.unwrap_or(sum_us).max(f64::MIN_POSITIVE);

    let mut sorted: Vec<((String, String), (u64, f64))> = rows.into_iter().collect();
    // Heaviest ops first; key order breaks exact ties deterministically.
    sorted.sort_by(|a, b| {
        b.1 .1
            .partial_cmp(&a.1 .1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let op_width = sorted
        .iter()
        .map(|((op, _), _)| op.len())
        .chain(["op".len(), "total".len()])
        .max()
        .unwrap_or(2)
        .max(2);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<op_width$}  {:<8}  {:>7}  {:>12}  {:>8}\n",
        "op", "device", "calls", "total_us", "% of run"
    ));
    for ((op, device), (calls, us)) in &sorted {
        out.push_str(&format!(
            "{:<op_width$}  {:<8}  {:>7}  {:>12.2}  {:>7.1}%\n",
            op,
            device,
            calls,
            us,
            100.0 * us / total_us
        ));
    }
    out.push_str(&format!(
        "{:<op_width$}  {:<8}  {:>7}  {:>12.2}  {:>7.1}%\n",
        "total",
        "",
        sorted.iter().map(|(_, (c, _))| c).sum::<u64>(),
        sum_us,
        100.0 * sum_us / total_us
    ));
    out
}

fn domain_pid(domain: TimeDomain) -> u64 {
    match domain {
        TimeDomain::Wall => 1,
        TimeDomain::Sim => 2,
    }
}

/// Render the snapshot as a Chrome trace-event JSON document, loadable in
/// Perfetto or `chrome://tracing`.
///
/// Wall-clock spans appear under the `wall-clock` process (pid 1) and
/// simulated-time spans under `simulated-time` (pid 2), so both timelines
/// coexist in one trace without mixing clocks. Threads pinned to an
/// explicit serving-pool lane (tid ≥ [`crate::WORKER_LANE_BASE`]) get
/// `thread_name` metadata (`worker-0`, `worker-1`, …) so a
/// `--concurrency N` serve renders as N stable, non-interleaved lanes.
/// Output is deterministic: events are sorted by (pid, tid, ts, name)
/// and all objects use sorted keys.
pub fn chrome_trace(snapshot: &Snapshot) -> Value {
    let mut events: Vec<Value> = Vec::new();
    let mut pids: Vec<u64> = snapshot
        .events
        .iter()
        .map(|e| domain_pid(e.domain))
        .collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        let process = if *pid == 1 {
            "wall-clock"
        } else {
            "simulated-time"
        };
        events.push(json!({
            "args": json!({ "name": process }),
            "cat": "__metadata",
            "name": "process_name",
            "ph": "M",
            "pid": *pid,
            "tid": 0u64,
            "ts": 0.0
        }));
    }
    let mut lanes: Vec<(u64, u64)> = snapshot
        .events
        .iter()
        .filter(|e| e.tid >= crate::WORKER_LANE_BASE)
        .map(|e| (domain_pid(e.domain), e.tid))
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    for (pid, tid) in &lanes {
        events.push(json!({
            "args": json!({ "name": format!("worker-{}", tid - crate::WORKER_LANE_BASE) }),
            "cat": "__metadata",
            "name": "thread_name",
            "ph": "M",
            "pid": *pid,
            "tid": *tid,
            "ts": 0.0
        }));
    }

    let mut spans: Vec<&SpanEvent> = snapshot.events.iter().collect();
    spans.sort_by(|a, b| {
        (domain_pid(a.domain), a.tid)
            .cmp(&(domain_pid(b.domain), b.tid))
            .then(
                a.ts_us
                    .partial_cmp(&b.ts_us)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then_with(|| a.name.cmp(&b.name))
    });
    for span in spans {
        let mut args = Map::new();
        for (k, v) in &span.args {
            args.insert(k.clone(), Value::String(v.clone()));
        }
        // Category = dotted-name prefix, so Perfetto can filter per layer.
        let cat = span.name.split('.').next().unwrap_or("span");
        events.push(json!({
            "args": Value::Object(args),
            "cat": cat,
            "dur": span.dur_us,
            "name": span.name.clone(),
            "ph": "X",
            "pid": domain_pid(span.domain),
            "tid": span.tid,
            "ts": span.ts_us
        }));
    }
    json!({ "displayTimeUnit": "ms", "traceEvents": Value::Array(events) })
}

/// Serialize the snapshot's Chrome trace to `path`.
pub fn write_chrome_trace(snapshot: &Snapshot, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(snapshot).to_string())
}

/// Render the snapshot as JSON Lines: one `{"type":"span",...}` object
/// per span, then one `{"type":"metric",...}` object per metric.
pub fn jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for event in &snapshot.events {
        let mut obj = match serde_json::to_value(event).expect("span serializes") {
            Value::Object(m) => m,
            _ => unreachable!("SpanEvent serializes to an object"),
        };
        obj.insert("type".to_string(), Value::String("span".to_string()));
        out.push_str(&Value::Object(obj).to_string());
        out.push('\n');
    }
    for (key, value) in &snapshot.metrics {
        let line = json!({
            "type": "metric",
            "key": key.to_string(),
            "value": serde_json::to_value(value).expect("metric serializes")
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;
    use crate::MetricValue;

    fn sim_event(name: &str, ts: f64, dur: f64, args: &[(&str, &str)]) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            ts_us: ts,
            dur_us: dur,
            tid: 0,
            domain: TimeDomain::Sim,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            events: vec![
                sim_event(
                    "executor.node",
                    0.0,
                    30.0,
                    &[("op", "conv2d"), ("device", "apu")],
                ),
                sim_event(
                    "executor.node",
                    30.0,
                    30.0,
                    &[("op", "conv2d"), ("device", "apu")],
                ),
                sim_event(
                    "executor.node",
                    60.0,
                    40.0,
                    &[("op", "softmax"), ("device", "cpu")],
                ),
                sim_event("executor.run", 0.0, 100.0, &[]),
            ],
            metrics: vec![(
                MetricKey::new("executor.nodes", &[("device", "apu")]),
                MetricValue::Counter(2),
            )],
        }
    }

    #[test]
    fn profile_table_aggregates_and_ranks() {
        let table = profile_table(
            &sample_snapshot(),
            &ProfileOptions {
                total_us: Some(100.0),
                ..Default::default()
            },
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 rows + total:\n{table}");
        assert!(lines[0].contains("op") && lines[0].contains("% of run"));
        // conv2d (60 µs) outranks softmax (40 µs); executor.run filtered out.
        assert!(lines[1].starts_with("conv2d"), "{table}");
        assert!(lines[1].contains("apu") && lines[1].contains('2') && lines[1].contains("60.0"));
        assert!(lines[2].starts_with("softmax"), "{table}");
        assert!(
            lines[3].starts_with("total") && lines[3].contains("100.0"),
            "{table}"
        );
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = jsonl(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines[..4] {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["type"].as_str(), Some("span"));
            assert!(v["dur_us"].as_f64().is_some());
        }
        let metric: Value = serde_json::from_str(lines[4]).unwrap();
        assert_eq!(metric["type"].as_str(), Some("metric"));
        assert_eq!(metric["key"].as_str(), Some("executor.nodes{device=apu}"));
    }

    #[test]
    fn chrome_trace_names_worker_lanes() {
        let mut snap = sample_snapshot();
        for event in snap.events.iter_mut().take(2) {
            event.tid = crate::WORKER_LANE_BASE + 3;
        }
        let doc = chrome_trace(&snap);
        let events = doc["traceEvents"].as_array().unwrap();
        let lane = events
            .iter()
            .find(|e| e["name"].as_str() == Some("thread_name"))
            .expect("lane metadata");
        assert_eq!(lane["args"]["name"].as_str(), Some("worker-3"));
        assert_eq!(lane["tid"].as_u64(), Some(crate::WORKER_LANE_BASE + 3));
    }

    #[test]
    fn chrome_trace_shape() {
        let doc = chrome_trace(&sample_snapshot());
        let events = doc["traceEvents"].as_array().unwrap();
        // 1 process_name metadata (sim only) + 4 spans.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        for e in &events[1..] {
            assert_eq!(e["ph"].as_str(), Some("X"));
            assert_eq!(e["pid"].as_u64(), Some(2));
            assert!(e["ts"].as_f64().is_some() && e["dur"].as_f64().is_some());
            assert!(e["tid"].as_u64().is_some());
        }
    }
}
