//! Criterion bench over the Figure 5 workload: the pipeline-schedule
//! simulator and the real threaded pipeline executor.

use criterion::{criterion_group, criterion_main, Criterion};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::scheduler::pipeline::{
    paper_prototype_stages, simulate_pipelined, simulate_sequential,
};

fn bench_simulators(c: &mut Criterion) {
    let stages = paper_prototype_stages(3000.0, 6000.0, 2000.0);
    c.bench_function("fig5/simulate_sequential_64", |b| {
        b.iter(|| simulate_sequential(&stages, 64))
    });
    c.bench_function("fig5/simulate_pipelined_64", |b| {
        b.iter(|| simulate_pipelined(&stages, 64))
    });
}

fn bench_threaded_application(c: &mut Criterion) {
    let cost = CostModel::default();
    let showcase = Showcase::new(900, ShowcaseAssignment::paper_prototype(), &cost);
    let mut group = c.benchmark_group("fig5/application");
    group.sample_size(10);
    group.bench_function("sequential_4_frames", |b| {
        b.iter_batched(
            || SyntheticVideo::new(901, 64, 64).frames(4),
            |frames| showcase.process_video(&frames),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("pipelined_4_frames", |b| {
        b.iter_batched(
            || SyntheticVideo::new(901, 64, 64).frames(4),
            |frames| showcase.process_video_pipelined(frames),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_simulators, bench_threaded_application);
criterion_main!(benches);
