//! Criterion bench over the Figure 6 workload: compile + inference cost
//! for the model zoo under representative permutations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvm_neuropilot::models::zoo;
use tvm_neuropilot::prelude::*;

fn bench_zoo_inference(c: &mut Criterion) {
    let cost = CostModel::default();
    let mut group = c.benchmark_group("fig6/run");
    group.sample_size(10);
    for model in zoo::zoo(600) {
        let inputs = model.sample_inputs(601);
        let Ok(mut compiled) =
            relay_build(&model.module, Permutation::ByocCpuApu.mode(), cost.clone())
        else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::new("byoc-cpu+apu", &model.name),
            &inputs,
            |b, inputs| b.iter(|| compiled.run(inputs).unwrap()),
        );
    }
    group.finish();
}

fn bench_zoo_compile(c: &mut Criterion) {
    let cost = CostModel::default();
    let mut group = c.benchmark_group("fig6/compile");
    group.sample_size(10);
    for model in [
        zoo::mobilenet_v2(600),
        zoo::inception_v4(600),
        zoo::densenet(600),
    ] {
        group.bench_with_input(
            BenchmarkId::new("partition+codegen", &model.name),
            &model.module,
            |b, module| {
                b.iter(|| {
                    relay_build(module, Permutation::ByocCpuApu.mode(), cost.clone()).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_zoo_inference, bench_zoo_compile);
criterion_main!(benches);
