//! Criterion bench over the Figure 4 workload: host wall-time of running
//! the three showcase models under each target permutation (the
//! *simulated* device times are printed by the `fig4` binary; this bench
//! tracks the reproduction's own execution cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection, Model};
use tvm_neuropilot::prelude::*;

fn bench_showcase(c: &mut Criterion) {
    let cost = CostModel::default();
    let models: Vec<Model> = vec![
        anti_spoofing::anti_spoofing_model(101),
        object_detection::mobilenet_ssd_model(102),
        emotion::emotion_model(103),
    ];
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for model in &models {
        let inputs = model.sample_inputs(104);
        for p in [
            Permutation::TvmOnly,
            Permutation::ByocCpu,
            Permutation::ByocCpuApu,
        ] {
            let Ok(mut compiled) = relay_build(&model.module, p.mode(), cost.clone()) else {
                continue;
            };
            group.bench_with_input(
                BenchmarkId::new(model.name.clone(), p.label()),
                &inputs,
                |b, inputs| b.iter(|| compiled.run(inputs).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_showcase);
criterion_main!(benches);
