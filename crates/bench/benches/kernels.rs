//! Criterion bench over the kernel substrate: the float vs int8 kernels
//! every backend of the reproduction executes.

use criterion::{criterion_group, criterion_main, Criterion};
use tvm_neuropilot::tensor::kernels::{
    conv2d_f32, dense_f32, max_pool2d, qconv2d, softmax_f32, Conv2dParams, Pool2dParams, QConvQuant,
};
use tvm_neuropilot::tensor::rng::TensorRng;
use tvm_neuropilot::tensor::{DType, QuantParams};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = TensorRng::new(7);
    let x = rng.uniform_f32([1, 16, 32, 32], -1.0, 1.0);
    let w = rng.uniform_f32([32, 16, 3, 3], -0.5, 0.5);
    c.bench_function("kernels/conv2d_f32_16x32x32", |b| {
        b.iter(|| conv2d_f32(&x, &w, None, &Conv2dParams::same(1)).unwrap())
    });

    let qx = QuantParams::new(0.02, 128);
    let qw = QuantParams::new(0.01, 0);
    let xq = x.quantize(qx, DType::U8).unwrap();
    let wq = w.quantize(qw, DType::I8).unwrap();
    let quant = QConvQuant {
        input: qx,
        weight: qw,
        output: qx,
        out_dtype: DType::U8,
    };
    c.bench_function("kernels/qconv2d_u8_16x32x32", |b| {
        b.iter(|| qconv2d(&xq, &wq, None, &Conv2dParams::same(1), &quant).unwrap())
    });

    let a = rng.uniform_f32([8, 256], -1.0, 1.0);
    let wd = rng.uniform_f32([128, 256], -0.5, 0.5);
    c.bench_function("kernels/dense_f32_8x256x128", |b| {
        b.iter(|| dense_f32(&a, &wd, None).unwrap())
    });

    c.bench_function("kernels/max_pool2d_16x32x32", |b| {
        b.iter(|| max_pool2d(&x, &Pool2dParams::square(2)).unwrap())
    });

    let logits = rng.uniform_f32([64, 1000], -5.0, 5.0);
    c.bench_function("kernels/softmax_64x1000", |b| {
        b.iter(|| softmax_f32(&logits).unwrap())
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
