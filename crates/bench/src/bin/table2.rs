//! Table 2: specifications of the experiment environment (OPPO Reno4 Z
//! 5G / MediaTek Dimensity 800), as modelled by the simulator.
//!
//! `cargo run --release -p tvmnp-bench --bin table2 [--profile] [--trace-out <path>]`

use tvm_neuropilot::hwsim::{KernelClass, SocSpec};
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let soc = SocSpec::dimensity_800();
    println!("== Table 2: experiment environment ==\n");
    for (label, value) in soc.table2_rows() {
        println!("{label:<8} | {value}");
    }
    println!("\nsimulator calibration (effective throughput after derating):");
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>12}",
        "device", "f32 tvm", "f32 vendor", "int8 vendor", "dispatch"
    );
    for d in &soc.devices {
        println!(
            "{:<6} {:>11.1} GF {:>11.1} GF {:>11.1} GOP {:>9.0} us",
            d.kind.name(),
            d.effective_gops(false, KernelClass::TvmUntuned),
            d.effective_gops(false, KernelClass::VendorTuned),
            d.effective_gops(true, KernelClass::VendorTuned),
            d.subgraph_dispatch_us,
        );
    }
    println!(
        "\ntransfer: {:.0} us latency + {:.0} GB/s",
        soc.transfer.latency_us, soc.transfer.bandwidth_gbps
    );
    // The spec dump runs nothing; trace one model against this SoC so
    // --profile / --trace-out have an execute phase to show.
    if telem.active() {
        let cost = tvm_neuropilot::prelude::CostModel::default();
        telem.trace_model(&tvm_neuropilot::models::zoo::mobilenet_v2(600), &cost);
    }
    telem.finish();
}
