//! Benchmark baseline/regression harness.
//!
//! Runs one of the figure workloads N times, records median/p95/min/max
//! simulated latency plus report aggregates in a stable JSON schema, and
//! optionally gates against a checked-in baseline:
//!
//! ```text
//! cargo run --release -p tvmnp-bench --bin bench -- \
//!     --workload fig6 --runs 5 --bench-out BENCH_fig6.json
//! cargo run --release -p tvmnp-bench --bin bench -- \
//!     --workload fig6 --check-against BENCH_fig6.json [--threshold 0.05] [--warn-only]
//! ```
//!
//! The simulation is fully deterministic, so recording twice on the same
//! commit produces byte-identical `BENCH_*.json` files; `--check-against`
//! exits nonzero when any latency metric's median regresses beyond the
//! noise threshold (default 5%). `--inject-slowdown <kind>=<factor>`
//! scales one hwsim work kind (`mac`, `elementwise`, `data-movement`,
//! `reduction`) — the hook the regression-detection test uses.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection, zoo, Model};
use tvm_neuropilot::observe::ObservePlane;
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::report::{self, BenchRecord};
use tvm_neuropilot::vision::{FrameResult, ShowcaseFaults};
use tvmnp_bench::profiling::{build_fault_plan, ObserveCli, ProfileCli};
use tvmnp_hwsim::WorkKind;

const WORKLOADS: &[&str] = &["fig4", "fig5", "fig6", "sched", "serve"];

struct Args {
    workload: String,
    runs: usize,
    bench_out: Option<PathBuf>,
    check_against: Option<PathBuf>,
    threshold: f64,
    warn_only: bool,
    inject: Option<(WorkKind, f64)>,
    fault_plan: Option<FaultPlan>,
    concurrency: usize,
    cache_dir: Option<PathBuf>,
    observe: ObserveCli,
    profile: ProfileCli,
    fail_on_missing: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench --workload <fig4|fig5|fig6|sched|serve> [--runs N] \
         [--bench-out <path>] [--check-against <baseline>] \
         [--threshold F] [--warn-only] [--fail-on-missing] \
         [--inject-slowdown <kind>=<factor>] \
         [--inject-fault <spec>]... [--fault-seed <n>] \
         [--concurrency N] [--cache-dir <path>] \
         [--stats-out <path>] [--flight-out <dir>] \
         [--flight-buffer <n>] [--slo-ms <f>] \
         [--profile-store <dir>] [--profile-diff <path>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut workload = None;
    let mut runs = 5usize;
    let mut bench_out = None;
    let mut check_against = None;
    let mut threshold = 0.05f64;
    let mut warn_only = false;
    let mut inject = None;
    let mut fault_specs: Vec<String> = Vec::new();
    let mut fault_seed = 0u64;
    let mut concurrency = 4usize;
    let mut cache_dir = None;
    let mut observe = ObserveCli::default();
    let mut profile = ProfileCli::default();
    let mut fail_on_missing = false;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} requires a value");
            usage();
        })
    };
    while let Some(a) = args.next() {
        if observe.consume(a.as_str(), &mut args) {
            continue;
        }
        if profile.consume(a.as_str(), &mut args) {
            continue;
        }
        match a.as_str() {
            "--workload" => workload = Some(value(&mut args, "--workload")),
            "--runs" => {
                let v = value(&mut args, "--runs");
                runs = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --runs expects a positive integer, got '{v}'");
                    usage();
                });
                if runs == 0 {
                    eprintln!("error: --runs must be at least 1");
                    usage();
                }
            }
            "--bench-out" => bench_out = Some(PathBuf::from(value(&mut args, "--bench-out"))),
            "--check-against" => {
                check_against = Some(PathBuf::from(value(&mut args, "--check-against")))
            }
            "--threshold" => {
                let v = value(&mut args, "--threshold");
                threshold = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --threshold expects a float, got '{v}'");
                    usage();
                });
            }
            "--warn-only" => warn_only = true,
            "--fail-on-missing" => fail_on_missing = true,
            "--inject-slowdown" => {
                let v = value(&mut args, "--inject-slowdown");
                let Some((kind, factor)) = v.split_once('=') else {
                    eprintln!("error: --inject-slowdown expects <kind>=<factor>, got '{v}'");
                    usage();
                };
                let Some(kind) = WorkKind::parse(kind) else {
                    eprintln!(
                        "error: unknown work kind '{kind}' (expected one of: {})",
                        WorkKind::ALL.map(WorkKind::name).join(", ")
                    );
                    usage();
                };
                let factor: f64 = factor.parse().unwrap_or_else(|_| {
                    eprintln!("error: --inject-slowdown factor must be a float, got '{factor}'");
                    usage();
                });
                inject = Some((kind, factor));
            }
            "--concurrency" => {
                let v = value(&mut args, "--concurrency");
                concurrency = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --concurrency expects a positive integer, got '{v}'");
                    usage();
                });
                if concurrency == 0 {
                    eprintln!("error: --concurrency must be at least 1");
                    usage();
                }
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(value(&mut args, "--cache-dir"))),
            "--inject-fault" => fault_specs.push(value(&mut args, "--inject-fault")),
            "--fault-seed" => {
                let v = value(&mut args, "--fault-seed");
                fault_seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --fault-seed expects an integer, got '{v}'");
                    usage();
                });
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage();
            }
        }
    }
    let Some(workload) = workload else {
        eprintln!("error: --workload is required");
        usage();
    };
    if !WORKLOADS.contains(&workload.as_str()) {
        eprintln!(
            "error: unknown workload '{workload}' (expected one of: {})",
            WORKLOADS.join(", ")
        );
        usage();
    }
    if bench_out.is_none() && check_against.is_none() && !profile.active() {
        eprintln!(
            "error: nothing to do — pass --bench-out, --check-against, \
             --profile-store, and/or --profile-diff"
        );
        usage();
    }
    Args {
        workload,
        runs,
        bench_out,
        check_against,
        threshold,
        warn_only,
        inject,
        fault_plan: build_fault_plan(&fault_specs, fault_seed),
        concurrency,
        cache_dir,
        observe,
        profile,
        fail_on_missing,
    }
}

/// Lowercase a label into a dotted-metric-safe key part.
fn key_part(s: &str) -> String {
    s.to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect::<String>()
        .split('-')
        .filter(|p| !p.is_empty())
        .collect::<Vec<_>>()
        .join("-")
}

/// One repetition of a workload: `(metric key, sample)` pairs. Keys
/// ending in `.ms`/`.us` are latency metrics and gate regressions.
/// `plane` (serve only) routes the concurrent pass through
/// [`SessionPool::serve_observed`].
fn run_workload(
    args: &Args,
    cost: &CostModel,
    plane: Option<&Arc<ObservePlane>>,
) -> Vec<(String, f64)> {
    let workload = args.workload.as_str();
    let mut out = Vec::new();
    match workload {
        "fig4" | "sched" => {
            let seeds: [u64; 3] = if workload == "fig4" {
                [101, 102, 103]
            } else {
                [80, 81, 82]
            };
            let models = [
                anti_spoofing::anti_spoofing_model(seeds[0]),
                object_detection::mobilenet_ssd_model(seeds[1]),
                emotion::emotion_model(seeds[2]),
            ];
            for model in &models {
                let ms = measure_all(&model.module, cost).expect("measure");
                if workload == "sched" {
                    // §5.1 assignment quality: only the best target gates.
                    let best = ms
                        .iter()
                        .filter_map(|m| m.time_ms)
                        .fold(f64::INFINITY, f64::min);
                    out.push((format!("sched.{}.best.ms", key_part(&model.name)), best));
                } else {
                    permutation_metrics(&mut out, workload, model, &ms);
                }
            }
        }
        "fig6" => {
            for model in zoo::zoo(600) {
                let ms = measure_all(&model.module, cost).expect("measure");
                permutation_metrics(&mut out, workload, &model, &ms);
            }
        }
        "fig5" => {
            let showcase = Showcase::new(900, ShowcaseAssignment::paper_prototype(), cost);
            let stages = showcase.stage_profile(901);
            let frames = 8;
            let seq = simulate_sequential(&stages, frames);
            let pipe = simulate_pipelined(&stages, frames);
            out.push(("fig5.sequential.makespan.ms".into(), seq.makespan_us / 1e3));
            out.push(("fig5.pipelined.makespan.ms".into(), pipe.makespan_us / 1e3));
            out.push(("fig5.pipelined.period.ms".into(), pipe.period_us() / 1e3));
            let sched_report = report::analyze_schedule(&pipe);
            for d in &sched_report.utilization.devices {
                out.push((format!("fig5.util.{}", d.device), d.utilization()));
            }
            out.push((
                "fig5.overlap_frac".into(),
                sched_report.utilization.overlap_us / sched_report.makespan_us,
            ));
            out.push((
                "fig5.critical_path.steps".into(),
                sched_report.critical_path.len() as f64,
            ));
        }
        "serve" => {
            // Fresh in-memory cache per repetition (byte-determinism);
            // `--cache-dir` additionally spills artifacts to disk so a
            // later bench invocation starts warm.
            let mut cache = ArtifactCache::new(16 << 20);
            if let Some(dir) = &args.cache_dir {
                cache = cache.with_disk_dir(dir);
            }
            let cache = Arc::new(cache);
            // Stand the pool up twice: the second build exercises the
            // cache-hit path (zero recompilation) and is the pool that
            // serves.
            drop(SessionPool::new(
                910,
                &serving_rotation(),
                cost,
                cache.clone(),
            ));
            // With a fault plan, the pool itself is faulted: every model
            // dispatch consults the shared injector, so transient faults
            // hit the retry path (and the flight recorder) in-band.
            let pool = match &args.fault_plan {
                None => SessionPool::new(910, &serving_rotation(), cost, cache.clone()),
                Some(plan) => SessionPool::new_with_faults(
                    910,
                    &serving_rotation(),
                    cost,
                    cache.clone(),
                    ShowcaseFaults {
                        injector: Arc::new(FaultInjector::new(plan.clone())),
                        retry: RetryPolicy {
                            max_attempts: 3,
                            ..RetryPolicy::default()
                        },
                    },
                ),
            };
            let frames = SyntheticVideo::new(911, 64, 64).frames(64);
            let sequential = pool.serve(&frames, 1);
            let concurrent = match plane {
                None => pool.serve(&frames, args.concurrency),
                Some(plane) => pool.serve_observed(&frames, args.concurrency, plane),
            };
            if args.fault_plan.is_none() {
                if sequential != concurrent {
                    eprintln!(
                        "error: concurrent serving (concurrency {}) diverged from sequential",
                        args.concurrency
                    );
                    std::process::exit(1);
                }
            } else {
                // Under faults, retry backoff lands on whichever dispatch
                // consumed a fault (schedule-dependent), so only the
                // numeric outputs must agree; metrics below come from the
                // sequential pass, which is deterministic either way.
                let numerics = |r: &FrameResult| {
                    (
                        r.frame_index,
                        r.objects.clone(),
                        r.faces.clone(),
                        r.dropped.clone(),
                    )
                };
                if sequential
                    .iter()
                    .map(numerics)
                    .ne(concurrent.iter().map(numerics))
                {
                    eprintln!(
                        "error: concurrent serving (concurrency {}) changed numeric outputs \
                         under the fault plan",
                        args.concurrency
                    );
                    std::process::exit(1);
                }
            }
            let per_frame: Vec<Vec<tvm_neuropilot::serving::SimSegment>> = sequential
                .iter()
                .map(|r| frame_segments(pool.assignment_for(r.frame_index), r))
                .collect();
            let sim = simulate_serve(&per_frame, args.concurrency);
            out.push(("serve.sequential.total.ms".into(), sim.sequential_us / 1e3));
            out.push((
                "serve.concurrent.makespan.ms".into(),
                sim.concurrent_us / 1e3,
            ));
            out.push(("serve.speedup".into(), sim.speedup()));
            out.push(("serve.fps".into(), sim.fps_concurrent()));
            let stats = pool.cache().stats();
            out.push(("serve.cache.hit_rate".into(), stats.hit_rate()));
            out.push(("serve.cache.hits".into(), stats.hits as f64));
            out.push(("serve.cache.misses".into(), stats.misses as f64));
        }
        other => unreachable!("workload '{other}' validated in parse_args"),
    }
    out
}

fn permutation_metrics(
    out: &mut Vec<(String, f64)>,
    workload: &str,
    model: &Model,
    ms: &[Measurement],
) {
    let model_key = key_part(&model.name);
    for m in ms {
        if let Some(t) = m.time_ms {
            out.push((
                format!(
                    "{workload}.{model_key}.{}.ms",
                    key_part(m.permutation.label())
                ),
                t,
            ));
        }
    }
    let subgraphs = ms.iter().map(|m| m.subgraphs).max().unwrap_or(0);
    out.push((
        format!("{workload}.{model_key}.subgraphs"),
        subgraphs as f64,
    ));
}

/// Report-layer aggregates for one representative model: partition
/// coverage plus device utilization from a traced BYOC CPU+APU run.
/// Computed once per record (deterministic, so repetition buys nothing).
fn report_aggregates(workload: &str, cost: &CostModel) -> Vec<(String, f64)> {
    let representative = match workload {
        "fig4" => anti_spoofing::anti_spoofing_model(101),
        "sched" => anti_spoofing::anti_spoofing_model(80),
        "fig6" => zoo::mobilenet_v2(600),
        _ => return Vec::new(), // fig5 aggregates come from the schedule
    };
    let mut out = Vec::new();
    let prefix = format!("{workload}.report");
    let (partitioned, _) =
        nir::partition_for_nir(&representative.module).expect("partition representative");
    let cov = report::coverage(&partitioned);
    out.push((format!("{prefix}.offload_frac"), cov.offload_fraction()));
    out.push((format!("{prefix}.subgraphs"), cov.num_subgraphs as f64));
    out.push((
        format!("{prefix}.offloaded_calls"),
        cov.offloaded_calls as f64,
    ));
    out.push((format!("{prefix}.host_calls"), cov.host_calls as f64));

    tvm_neuropilot::telemetry::enable();
    tvm_neuropilot::telemetry::reset();
    let mut compiled = relay_build(
        &representative.module,
        TargetMode::Byoc(TargetPolicy::CpuApu),
        cost.clone(),
    )
    .expect("build representative");
    compiled
        .run(&representative.sample_inputs(7))
        .expect("run representative");
    tvm_neuropilot::telemetry::disable();
    let snap = tvm_neuropilot::telemetry::snapshot();
    let util = report::utilization_from_snapshot(&snap);
    for d in &util.devices {
        out.push((format!("{prefix}.util.{}", d.device), d.utilization()));
    }
    out
}

/// Deterministic resilience metrics: run the showcase models through
/// shared-injector resilient sessions under the fault plan and record the
/// outcome (final latency, fallback depth, injected faults). Computed
/// once per record — the plan is seeded, so repetition buys nothing and
/// re-running with the same seed is byte-identical.
fn resilience_metrics(plan: &FaultPlan, cost: &CostModel) -> Vec<(String, f64)> {
    let injector = Arc::new(FaultInjector::new(plan.clone()));
    let policy = ResiliencePolicy {
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..ResiliencePolicy::default()
    };
    let mut out = Vec::new();
    let models = [
        anti_spoofing::anti_spoofing_model(80),
        object_detection::mobilenet_ssd_model(81),
        emotion::emotion_model(82),
    ];
    let mut recovered = 0u64;
    for model in &models {
        let mut session = ResilientSession::with_injector(
            model.module.clone(),
            cost.clone(),
            injector.clone(),
            policy,
        );
        match session.run(&model.name, Permutation::NpApu, &model.sample_inputs(7)) {
            Ok(outcome) => {
                let key = key_part(&model.name);
                out.push((format!("resilience.{key}.final.us"), outcome.time_us));
                out.push((
                    format!("resilience.{key}.fallbacks"),
                    outcome.fallbacks.len() as f64,
                ));
                if outcome.degraded() {
                    recovered += 1;
                }
            }
            Err(e) => {
                eprintln!("error: resilience run of '{}' failed: {e}", model.name);
                std::process::exit(1);
            }
        }
    }
    out.push((
        "resilience.faults_injected".into(),
        injector.faults_injected() as f64,
    ));
    out.push(("resilience.recovered_models".into(), recovered as f64));
    out
}

/// Dedicated measured-profile pass: execute the workload's showcase
/// models once through the BYOC CPU+APU flow with telemetry detail mode
/// on, and bin the per-kernel executor spans into a [`Profile`]. Runs
/// after everything else so the detail spans cannot leak into the
/// report-layer utilization aggregates.
fn collect_profile(workload: &str, cost: &CostModel) -> Profile {
    tvm_neuropilot::telemetry::enable();
    tvm_neuropilot::telemetry::reset();
    tvm_neuropilot::telemetry::set_detail(true);
    let seeds: [u64; 3] = match workload {
        "fig4" | "fig6" => [101, 102, 103],
        "sched" => [80, 81, 82],
        "fig5" => [900, 901, 902],
        _ => [910, 911, 912], // serve
    };
    let models = [
        anti_spoofing::anti_spoofing_model(seeds[0]),
        object_detection::mobilenet_ssd_model(seeds[1]),
        emotion::emotion_model(seeds[2]),
    ];
    for model in &models {
        let mut compiled = relay_build(
            &model.module,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            cost.clone(),
        )
        .expect("profile build");
        compiled.run(&model.sample_inputs(7)).expect("profile run");
    }
    tvm_neuropilot::telemetry::set_detail(false);
    tvm_neuropilot::telemetry::disable();
    let snap = tvm_neuropilot::telemetry::snapshot();
    let mut profile = Profile::new(ProfileKey {
        workload: workload.to_string(),
        permutation: "byoc-cpu-apu".to_string(),
        quant: "f32".to_string(),
        soc: "dimensity-800".to_string(),
    });
    profile.ingest_snapshot(&snap);
    profile
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cost = CostModel::default();
    if let Some((kind, factor)) = args.inject {
        eprintln!(
            "note: injecting {factor}x slowdown into '{}' work",
            kind.name()
        );
        cost = cost.with_kind_scale(kind, factor);
    }

    // The observability plane (when any --stats-out/--flight-*/--slo-ms
    // flag is given) watches the serve workload live. Per-frame trace
    // ids repeat across repetitions, so trace trees are per-rep: use
    // `--runs 1` when inspecting traces; sketches and counters
    // accumulate across reps by design.
    let plane = args.observe.build_plane();
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for _ in 0..args.runs {
        for (key, v) in run_workload(&args, &cost, plane.as_ref()) {
            samples.entry(key).or_default().push(v);
        }
    }
    for (key, v) in report_aggregates(&args.workload, &cost) {
        samples.entry(key).or_default().push(v);
    }
    if let Some(plan) = &args.fault_plan {
        eprintln!(
            "note: injecting seeded faults ({} rule(s))",
            plan.rules.len()
        );
        for (key, v) in resilience_metrics(plan, &cost) {
            samples.entry(key).or_default().push(v);
        }
    }

    if let Some(plane) = &plane {
        args.observe.finish_plane(plane);
        tvm_neuropilot::telemetry::disable();
    }

    // Measured-profile pass, after every analytic/aggregate pass so the
    // detail-mode spans stay confined to their own snapshot.
    let profile_diff = if args.profile.active() {
        let mut profile = collect_profile(&args.workload, &cost);
        args.profile.report(&mut profile)
    } else {
        None
    };

    let mut record = BenchRecord::new(args.workload.clone(), args.runs);
    for (key, vals) in &samples {
        record.insert(key.clone(), vals);
    }
    println!(
        "workload '{}': {} metrics over {} run(s)",
        args.workload,
        record.metrics.len(),
        args.runs
    );

    if let Some(path) = &args.bench_out {
        if let Err(e) = record.write(path) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench record written to {}", path.display());
    }

    if let Some(path) = &args.check_against {
        let baseline = match BenchRecord::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = report::compare(&baseline, &record, args.threshold);
        print!("{}", cmp.render());
        // Silently-dropped workload metrics must hard-fail even under
        // --warn-only: a baseline key the current run never produced is a
        // harness break, not a latency regression to be waved through.
        let missing_failure = args.fail_on_missing && cmp.missing() > 0;
        if !cmp.ok() || missing_failure {
            if args.warn_only && !missing_failure {
                println!(
                    "WARN: regressions beyond {:.1}% vs {} (ignored: --warn-only)",
                    args.threshold * 100.0,
                    path.display()
                );
            } else {
                if missing_failure {
                    eprintln!(
                        "error: {} baseline metric(s) missing from the current run \
                         (--fail-on-missing)",
                        cmp.missing()
                    );
                }
                if !cmp.regressions.is_empty() {
                    eprintln!(
                        "error: regression beyond {:.1}% vs {}",
                        args.threshold * 100.0,
                        path.display()
                    );
                    if let Some(top) = profile_diff.as_ref().and_then(|d| d.top()) {
                        eprintln!(
                            "likely cause: {} (ratio {:.2}x, {:+.1} us total)",
                            top.cell, top.ratio, top.delta_total_us
                        );
                    }
                }
                return ExitCode::FAILURE;
            }
        } else {
            println!(
                "OK: within {:.1}% of {}",
                args.threshold * 100.0,
                path.display()
            );
        }
    }
    ExitCode::SUCCESS
}
