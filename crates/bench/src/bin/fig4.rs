//! Figure 4: inference time for the three application-showcase models
//! under the seven target permutations.
//!
//! Expected shape (checked): TVM-only is the slowest bar of every group;
//! NeuroPilot-only bars are missing for anti-spoofing (unfused batch
//! norm) and the SSD (exp box decode) but present for the emotion model;
//! the emotion model is fastest on the APU alone; anti-spoofing carries
//! the most subgraphs and the largest absolute time.
//!
//! `cargo run --release -p tvmnp-bench --bin fig4 [--profile] [--trace-out <path>]`

use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection};
use tvm_neuropilot::prelude::*;
use tvmnp_bench::profiling::TelemetryCli;
use tvmnp_bench::{check_figure_shape, figure_group};

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Figure 4: showcase-model inference time (simulated ms) ==\n");

    let models = [
        anti_spoofing::anti_spoofing_model(101),
        object_detection::mobilenet_ssd_model(102),
        emotion::emotion_model(103),
    ];

    let mut groups = Vec::new();
    for model in &models {
        let (ms, text) = figure_group(model, &cost);
        check_figure_shape(&model.name, &ms);
        println!("{text}");
        groups.push((model.name.clone(), ms));
        telem.trace_model(model, &cost);
    }

    // Paper-shape assertions beyond the per-group checks.
    let time = |model: &str, p: Permutation| -> Option<f64> {
        groups
            .iter()
            .find(|(n, _)| n == model)
            .and_then(|(_, ms)| ms.iter().find(|m| m.permutation == p))
            .and_then(|m| m.time_ms)
    };

    // NP-only bars exist only for the emotion model.
    assert!(time("anti-spoofing", Permutation::NpCpu).is_none());
    assert!(time("mobilenet-ssd-quant", Permutation::NpApu).is_none());
    assert!(time("emotion-detection", Permutation::NpApu).is_some());

    // Emotion is fastest on APU alone (paper 5.1); the float anti-spoofing
    // model favors CPU+APU (its fragmented subgraphs are too small to
    // amortize the APU driver). For the int8 SSD the APU permutations tie
    // or win — consistent with 4.2's "performance similar to the original
    // flow" (EXPERIMENTS.md discusses the deviation from the figure).
    let emo_apu = time("emotion-detection", Permutation::NpApu).unwrap();
    let emo_cpu_apu = time("emotion-detection", Permutation::NpCpuApu).unwrap();
    assert!(
        emo_apu < emo_cpu_apu,
        "emotion: APU {emo_apu} vs CPU+APU {emo_cpu_apu}"
    );
    {
        let apu = time("anti-spoofing", Permutation::ByocApu).unwrap();
        let both = time("anti-spoofing", Permutation::ByocCpuApu).unwrap();
        assert!(
            both < apu,
            "anti-spoofing: CPU+APU {both} must beat APU-prefer {apu}"
        );
    }
    {
        let cpu = time("mobilenet-ssd-quant", Permutation::ByocCpu).unwrap();
        let both = time("mobilenet-ssd-quant", Permutation::ByocCpuApu).unwrap();
        assert!(
            both <= cpu * 1.01,
            "ssd: CPU+APU {both} must not lose to CPU {cpu}"
        );
    }

    // Anti-spoofing is the slowest model (most subgraphs).
    let best = |model: &str| {
        groups
            .iter()
            .find(|(n, _)| n == model)
            .unwrap()
            .1
            .iter()
            .filter_map(|m| m.time_ms)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(best("anti-spoofing") > best("mobilenet-ssd-quant"));
    assert!(best("anti-spoofing") > best("emotion-detection"));

    println!("shape checks passed: TVM-only slowest; NP-only bars missing for");
    println!("anti-spoofing and SSD; emotion fastest on APU alone; anti-spoofing");
    println!("slowest overall (subgraph fragmentation); CPU+APU best for the");
    println!("fragmented float model.");
    telem.finish();
}
