//! Ablations of the reproduction's design choices (DESIGN.md §4 calls
//! these out) plus the paper's what-ifs:
//!
//! 1. **BN folding** — the counterfactual for Fig. 4's anti-spoofing
//!    story: folding batch norms before partitioning collapses the
//!    subgraph count and unlocks NeuroPilot-only compilation.
//! 2. **Post-training quantization** — quantize a float showcase model
//!    with the `relay.quantize`-style pass and compare APU times.
//! 3. **Operator fusion** — dispatch-count effect on TVM-only times.
//! 4. **Transfer latency sweep** — how the BYOC win erodes as the
//!    CPU↔APU boundary gets more expensive (the I/O-cost discussion of
//!    §5.1).
//! 5. **Op-level scheduling** — the paper's future work vs its fixed
//!    policies.
//!
//! `cargo run --release -p tvmnp-bench --bin ablation [--profile] [--trace-out <path>]`

use tvm_neuropilot::models::{anti_spoofing, emotion, zoo};
use tvm_neuropilot::neuropilot::{convert_function, plan_op_level, CompiledNetwork};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::relay::passes::{
    count_batch_norms, fold_batch_norm, quantize_with_calibration, simplify,
};
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();

    // ---- 1. BN folding ---------------------------------------------------
    println!("== ablation 1: batch-norm folding vs the Fig. 4 fragmentation ==\n");
    let spoof = anti_spoofing::anti_spoofing_model(800);
    let before = measure_all(&spoof.module, &cost).unwrap();
    let folded_module = fold_batch_norm(&spoof.module);
    assert_eq!(count_batch_norms(&folded_module), 0);
    let after = measure_all(&folded_module, &cost).unwrap();
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "permutation", "unfused (ms)", "folded (ms)", "subgraphs"
    );
    for (b, a) in before.iter().zip(&after) {
        println!(
            "{:<18} {:>12} {:>12} {:>6} -> {:<3}",
            b.permutation.label(),
            b.time_ms.map(|t| format!("{t:.3}")).unwrap_or("--".into()),
            a.time_ms.map(|t| format!("{t:.3}")).unwrap_or("--".into()),
            b.subgraphs,
            a.subgraphs
        );
    }
    let b_sub = before.iter().map(|m| m.subgraphs).max().unwrap();
    let a_sub = after.iter().map(|m| m.subgraphs).max().unwrap();
    assert!(
        a_sub < b_sub,
        "folding must collapse subgraphs ({b_sub} -> {a_sub})"
    );
    assert!(
        before.iter().any(|m| m.time_ms.is_none()) && after.iter().all(|m| m.time_ms.is_some()),
        "folding must unlock NeuroPilot-only compilation"
    );
    let best = |ms: &[Measurement]| {
        ms.iter()
            .filter_map(|m| m.time_ms)
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "\nbest bar: unfused {:.3} ms -> folded {:.3} ms (subgraphs {} -> {})\n",
        best(&before),
        best(&after),
        b_sub,
        a_sub
    );
    assert!(best(&after) < best(&before));

    // ---- 2. Post-training quantization -----------------------------------
    println!("== ablation 2: post-training quantization of the emotion model ==\n");
    let emo = emotion::emotion_model(801);
    let simplified = simplify(&emo.module);
    let cal: Vec<_> = (0..4).map(|i| emo.sample_inputs(900 + i)).collect();
    let quantized = quantize_with_calibration(&simplified, &cal).expect("emotion quantizes");
    for (label, module) in [("float32", &simplified), ("int8 (PTQ)", &quantized)] {
        let apu = measure_one(module, Permutation::ByocApu, &cost)
            .unwrap()
            .time_ms
            .unwrap();
        let cpu = measure_one(module, Permutation::ByocCpu, &cost)
            .unwrap()
            .time_ms
            .unwrap();
        println!("{label:<12} BYOC CPU {cpu:>8.3} ms   BYOC APU {apu:>8.3} ms");
    }
    let f_apu = measure_one(&simplified, Permutation::ByocApu, &cost)
        .unwrap()
        .time_ms
        .unwrap();
    let q_apu = measure_one(&quantized, Permutation::ByocApu, &cost)
        .unwrap()
        .time_ms
        .unwrap();
    assert!(q_apu < f_apu, "PTQ must pay off on the APU");
    println!();

    // ---- 3. Fusion -------------------------------------------------------
    println!("== ablation 3: operator fusion (TVM dispatch grouping) ==\n");
    for model in [zoo::mobilenet_v1(802), zoo::inception_v3(803)] {
        use tvm_neuropilot::relay::passes::fuse_analysis;
        let prepared = tvm_neuropilot::relay::passes::fold_constants(&simplify(&model.module));
        let groups = fuse_analysis(&prepared.main().body).len();
        let calls = prepared.main().num_calls();
        let launch = cost.soc().device(DeviceKind::Cpu).kernel_launch_us;
        let saved_us = (calls - groups) as f64 * launch;
        println!(
            "{:<16} {calls:>3} ops -> {groups:>3} dispatch groups (saves {saved_us:>6.1} us/inference on TVM)",
            model.name
        );
        assert!(groups < calls);
    }
    println!();

    // ---- 4. Transfer-latency sweep ----------------------------------------
    println!("== ablation 4: CPU<->APU transfer latency vs the BYOC win ==\n");
    let model = zoo::mobilenet_v2(804);
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "latency (us)", "tvm (ms)", "byoc-apu", "speedup"
    );
    let mut last_speedup = f64::INFINITY;
    for latency in [5.0, 15.0, 60.0, 240.0, 960.0] {
        let mut soc = tvm_neuropilot::hwsim::SocSpec::dimensity_800();
        soc.transfer.latency_us = latency;
        let c = CostModel::new(soc);
        let tvm = measure_one(&model.module, Permutation::TvmOnly, &c)
            .unwrap()
            .time_ms
            .unwrap();
        let apu = measure_one(&model.module, Permutation::ByocApu, &c)
            .unwrap()
            .time_ms
            .unwrap();
        let speedup = tvm / apu;
        println!("{latency:<14} {tvm:>12.3} {apu:>12.3} {speedup:>8.2}x");
        assert!(
            speedup < last_speedup + 1e-9,
            "speedup must erode with latency"
        );
        last_speedup = speedup;
    }
    println!();

    // ---- 5. Op-level scheduling -------------------------------------------
    println!("== ablation 5: op-level scheduling (paper future work) ==\n");
    let emo = emotion::emotion_model(805);
    let prepared = simplify(&emo.module);
    let graph = convert_function(prepared.main()).expect("emotion converts");
    println!("{:<18} {:>12}", "planner", "time (ms)");
    let mut fixed_best = f64::INFINITY;
    for policy in [
        TargetPolicy::CpuOnly,
        TargetPolicy::ApuPrefer,
        TargetPolicy::CpuApu,
    ] {
        let t = CompiledNetwork::compile(graph.clone(), policy, cost.clone())
            .unwrap()
            .estimate_time_us()
            / 1000.0;
        println!("{:<18} {t:>12.3}", policy.label());
        fixed_best = fixed_best.min(t);
    }
    let plan = plan_op_level(&graph, &cost).unwrap();
    let t_op = CompiledNetwork::from_plan(graph, plan, cost.clone()).estimate_time_us() / 1000.0;
    println!("{:<18} {t_op:>12.3}", "op-level DP");
    assert!(
        t_op <= fixed_best * 1.001,
        "op-level must match or beat fixed policies"
    );
    println!("\nall ablation checks passed");
    telem.trace_model(&emotion::emotion_model(806), &cost);
    telem.finish();
}
