//! Observability artifact checker for CI.
//!
//! Three modes, composable in one invocation:
//!
//! ```text
//! obs_check --stats <stats.jsonl>            # schema-check the JSONL stats stream
//! obs_check --flight-dir <dir> [--expect-kind <kind>]...
//!                                            # schema-check every flight-*.json,
//!                                            # assert the expected event kinds appear
//! obs_check --compare <a.json> <b.json> --metric <key> [--warn-at F]
//!                                            # warn (never fail) when b's median
//!                                            # exceeds a's by more than F (default 0.05)
//! obs_check --profile <profile.json>         # schema-check a measured-profile file
//!                                            # (repeatable)
//! ```
//!
//! Exit code 0 means every requested check passed (the `--compare` gate
//! is warn-only by design: observability overhead on the *simulated*
//! metrics is structurally zero — observation never charges simulated
//! time — so a regression there signals a bug, but the wall-clock cost
//! of the instrumented path is environment-dependent and must not turn
//! CI red on a loaded runner).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tvm_neuropilot::observe::validate_dump;
use tvm_neuropilot::profile::{validate_profile, Profile};
use tvm_neuropilot::report::BenchRecord;

struct Args {
    stats: Option<PathBuf>,
    flight_dir: Option<PathBuf>,
    expect_kinds: Vec<String>,
    compare: Option<(PathBuf, PathBuf)>,
    metric: Option<String>,
    warn_at: f64,
    profiles: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_check [--stats <stats.jsonl>] \
         [--flight-dir <dir>] [--expect-kind <kind>]... \
         [--compare <a.json> <b.json> --metric <key> [--warn-at F]] \
         [--profile <profile.json>]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut stats = None;
    let mut flight_dir = None;
    let mut expect_kinds = Vec::new();
    let mut compare = None;
    let mut metric = None;
    let mut warn_at = 0.05f64;
    let mut profiles = Vec::new();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} requires a value");
            usage();
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stats" => stats = Some(PathBuf::from(value(&mut args, "--stats"))),
            "--flight-dir" => flight_dir = Some(PathBuf::from(value(&mut args, "--flight-dir"))),
            "--expect-kind" => expect_kinds.push(value(&mut args, "--expect-kind")),
            "--compare" => {
                let a = PathBuf::from(value(&mut args, "--compare"));
                let b = PathBuf::from(value(&mut args, "--compare"));
                compare = Some((a, b));
            }
            "--metric" => metric = Some(value(&mut args, "--metric")),
            "--profile" => profiles.push(PathBuf::from(value(&mut args, "--profile"))),
            "--warn-at" => {
                let v = value(&mut args, "--warn-at");
                warn_at = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --warn-at expects a float, got '{v}'");
                    usage();
                });
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage();
            }
        }
    }
    if stats.is_none() && flight_dir.is_none() && compare.is_none() && profiles.is_empty() {
        eprintln!("error: nothing to do — pass --stats, --flight-dir, --compare, and/or --profile");
        usage();
    }
    if compare.is_some() && metric.is_none() {
        eprintln!("error: --compare requires --metric <key>");
        usage();
    }
    Args {
        stats,
        flight_dir,
        expect_kinds,
        compare,
        metric,
        warn_at,
        profiles,
    }
}

/// Validate the JSONL stats stream: every line parses, carries the
/// stats-line envelope, has monotonically increasing `seq`, and the last
/// line is the `final` flush.
fn check_stats(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{}: stats stream is empty", path.display()));
    }
    let mut last_seq = 0u64;
    let mut last_reason = String::new();
    for (i, line) in lines.iter().enumerate() {
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("{}: line {}: invalid JSON: {e}", path.display(), i + 1))?;
        if v["type"].as_str() != Some("stats") {
            return Err(format!(
                "{}: line {}: type != \"stats\"",
                path.display(),
                i + 1
            ));
        }
        let seq = v["seq"]
            .as_u64()
            .ok_or_else(|| format!("{}: line {}: missing seq", path.display(), i + 1))?;
        if seq <= last_seq {
            return Err(format!(
                "{}: line {}: seq {seq} not increasing (prev {last_seq})",
                path.display(),
                i + 1
            ));
        }
        last_seq = seq;
        if v["stats"]["series"].as_array().is_none() {
            return Err(format!(
                "{}: line {}: stats.series is not an array",
                path.display(),
                i + 1
            ));
        }
        // Internal consistency: every series must satisfy
        // min <= p50 <= p95 <= p99 <= max.
        if let Some(series) = v["stats"]["series"].as_array() {
            for s in series {
                let q = |k: &str| s[k].as_f64().unwrap_or(0.0);
                let key = s["key"].as_str().unwrap_or("<unkeyed>");
                let slack = 1e-9;
                if !(q("min_us") <= q("p50_us") + slack
                    && q("p50_us") <= q("p95_us") + slack
                    && q("p95_us") <= q("p99_us") + slack
                    && q("p99_us") <= q("max_us") + slack)
                {
                    return Err(format!(
                        "{}: line {}: series '{key}' quantiles not monotone",
                        path.display(),
                        i + 1
                    ));
                }
            }
        }
        last_reason = v["reason"].as_str().unwrap_or_default().to_string();
    }
    if last_reason != "final" {
        return Err(format!(
            "{}: last line's reason is '{last_reason}', expected 'final'",
            path.display()
        ));
    }
    println!(
        "stats OK: {} ({} line(s), final seq {})",
        path.display(),
        lines.len(),
        last_seq
    );
    Ok(())
}

/// Schema-check every `flight-*.json` in `dir` and assert each
/// `--expect-kind` appears in at least one dump's event window.
fn check_flight(dir: &Path, expect_kinds: &[String]) -> Result<(), String> {
    let mut dumps = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: unreadable: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("flight-") && name.ends_with(".json") {
            dumps.push(entry.path());
        }
    }
    if dumps.is_empty() {
        return Err(format!("{}: no flight-*.json dumps found", dir.display()));
    }
    dumps.sort();
    let mut seen_kinds: Vec<String> = Vec::new();
    for path in &dumps {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
        let doc: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        if let Some(problem) = validate_dump(&doc) {
            return Err(format!("{}: schema violation: {problem}", path.display()));
        }
        if let Some(events) = doc["events"].as_array() {
            for e in events {
                if let Some(kind) = e["kind"].as_str() {
                    if !seen_kinds.iter().any(|k| k == kind) {
                        seen_kinds.push(kind.to_string());
                    }
                }
            }
        }
        println!("flight OK: {}", path.display());
    }
    for want in expect_kinds {
        if !seen_kinds.iter().any(|k| k == want) {
            return Err(format!(
                "{}: no dump contains an event of kind '{want}' (saw: {})",
                dir.display(),
                seen_kinds.join(", ")
            ));
        }
    }
    if !expect_kinds.is_empty() {
        println!("flight kinds OK: {}", expect_kinds.join(", "));
    }
    Ok(())
}

/// Warn-only median comparison of one metric across two bench records.
fn check_compare(a: &Path, b: &Path, metric: &str, warn_at: f64) -> Result<(), String> {
    let rec_a = BenchRecord::read(a).map_err(|e| e.to_string())?;
    let rec_b = BenchRecord::read(b).map_err(|e| e.to_string())?;
    let median = |rec: &BenchRecord, path: &Path| {
        rec.metrics
            .get(metric)
            .map(|m| m.median)
            .ok_or_else(|| format!("{}: metric '{metric}' not found", path.display()))
    };
    let ma = median(&rec_a, a)?;
    let mb = median(&rec_b, b)?;
    if ma <= 0.0 {
        println!("compare: baseline median for '{metric}' is {ma}; nothing to compare");
        return Ok(());
    }
    let delta = (mb - ma) / ma;
    if delta > warn_at {
        println!(
            "WARN: '{metric}' median {mb:.4} is {:.1}% over baseline {ma:.4} \
             (threshold {:.1}%; warn-only)",
            delta * 100.0,
            warn_at * 100.0
        );
    } else {
        println!(
            "compare OK: '{metric}' median {mb:.4} vs baseline {ma:.4} ({:+.1}%)",
            delta * 100.0
        );
    }
    Ok(())
}

/// Schema-check one measured-profile file: valid JSON, the
/// `tvmnp-profile` schema validator passes, and the file round-trips
/// through the typed loader.
fn check_profile(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
    let doc: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    if let Some(problem) = validate_profile(&doc) {
        return Err(format!("{}: schema violation: {problem}", path.display()));
    }
    let profile = Profile::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "profile OK: {} ({} cell(s), {} sample(s))",
        path.display(),
        profile.cells.len(),
        profile.total_count()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut checks: Vec<Result<(), String>> = Vec::new();
    if let Some(path) = &args.stats {
        checks.push(check_stats(path));
    }
    if let Some(dir) = &args.flight_dir {
        checks.push(check_flight(dir, &args.expect_kinds));
    }
    if let (Some((a, b)), Some(metric)) = (&args.compare, &args.metric) {
        checks.push(check_compare(a, b, metric, args.warn_at));
    }
    for path in &args.profiles {
        checks.push(check_profile(path));
    }
    let mut ok = true;
    for check in checks {
        if let Err(e) = check {
            eprintln!("error: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
