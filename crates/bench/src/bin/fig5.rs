//! Figure 5: the early pipeline-scheduling prototype.
//!
//! Yellow = CPU+APU (anti-spoofing), green = APU-only (emotion), blue =
//! CPU-only (object detection, deliberately moved off the APU so it can
//! overlap emotion across frames).
//!
//! `cargo run --release -p tvmnp-bench --bin fig5 [--profile] [--trace-out <path>]`

use tvm_neuropilot::prelude::*;
use tvm_neuropilot::scheduler::pipeline::{simulate_pipelined, simulate_sequential};
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    // The pipeline bin executes no graph; its profile aggregates the
    // simulated stage spans instead of per-node executor spans.
    telem.profile_span = "scheduler.stage";
    let cost = CostModel::default();
    println!("== Figure 5: pipeline scheduling prototype ==\n");

    // Stage latencies measured from the real application under the
    // paper's assignment.
    let proto = Showcase::new(900, ShowcaseAssignment::paper_prototype(), &cost);
    let stages = proto.stage_profile(901);
    println!("measured stages:");
    for s in &stages {
        let res: Vec<&str> = s.resources.iter().map(|d| d.name()).collect();
        println!(
            "  {:<12} {:>9.3} ms on {}",
            s.name,
            s.duration_us / 1000.0,
            res.join("+")
        );
    }

    let frames = 8;
    let seq = simulate_sequential(&stages, frames);
    let pipe = simulate_pipelined(&stages, frames);
    assert!(
        pipe.timeline.check_exclusive().is_none(),
        "exclusive-resource invariant"
    );
    assert!(pipe.makespan_us < seq.makespan_us, "pipelining must help");

    println!(
        "\nsequential: {:9.3} ms for {frames} frames ({:.3} ms/frame)",
        seq.makespan_us / 1000.0,
        seq.period_us() / 1000.0
    );
    println!(
        "pipelined : {:9.3} ms for {frames} frames ({:.3} ms/frame)",
        pipe.makespan_us / 1000.0,
        pipe.period_us() / 1000.0
    );
    println!("gain      : {:9.3}x", seq.makespan_us / pipe.makespan_us);

    println!("\nsequential schedule:");
    print!("{}", seq.timeline.ascii_gantt(72));
    println!("\npipelined schedule (obj-det of frame k+1 overlaps emotion of frame k):");
    print!("{}", pipe.timeline.ascii_gantt(72));

    // Contrast with the greedy assignment that shares CPU+APU everywhere:
    // pipelining cannot overlap and degenerates toward sequential.
    let greedy = Showcase::new(900, ShowcaseAssignment::greedy(), &cost);
    let greedy_stages = greedy.stage_profile(901);
    let greedy_pipe = simulate_pipelined(&greedy_stages, frames);
    println!(
        "\ngreedy (obj-det on CPU+APU) pipelined: {:9.3} ms — {}",
        greedy_pipe.makespan_us / 1000.0,
        if greedy_pipe.makespan_us > pipe.makespan_us {
            "worse than the prototype ✓"
        } else {
            "?"
        }
    );
    assert!(greedy_pipe.makespan_us > pipe.makespan_us);
    telem.finish();
}
