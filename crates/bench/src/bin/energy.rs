//! Extension: inference *energy* per target permutation.
//!
//! The paper motivates NeuroPilot with the edge's "physical limitations,
//! such as power and heat problems" (§2.1) but reports only time. This
//! harness adds the energy column: per-op silicon energy (inefficient
//! codegen burns proportionally more) plus DRAM-boundary traffic.
//!
//! Expected (asserted): TVM-only burns the most energy everywhere; for
//! every model the APU permutation is the most frugal; int8 variants burn
//! less than their float32 twins.
//!
//! `cargo run --release -p tvmnp-bench --bin energy [--profile] [--trace-out <path>]
//! [--stats-out <path>] [--flight-out <dir>] [--slo-ms <f>]
//! [--profile-store <dir>] [--profile-diff <path>]`
//!
//! The observe flags stand up the live plane over the traced runs (each
//! traced model counts as one observed frame); the profile flags collect
//! a measured per-kernel cost/energy profile from the same runs.

use tvm_neuropilot::models::zoo;
use tvm_neuropilot::prelude::*;
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Extension: simulated inference energy (microjoules) ==\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "model", "tvm-only", "byoc-cpu", "byoc-gpu", "byoc-apu"
    );

    let models = [
        zoo::inception_v3(610),
        zoo::mobilenet_v1(611),
        zoo::mobilenet_v2(612),
        zoo::mobilenet_v1_quant(613),
        zoo::mobilenet_v2_quant(614),
    ];
    for model in &models {
        telem.trace_model(model, &cost);
        let e = |mode: TargetMode| {
            relay_build(&model.module, mode, cost.clone())
                .unwrap()
                .estimate_energy_uj()
        };
        let tvm = e(TargetMode::TvmOnly);
        let cpu = e(TargetMode::Byoc(TargetPolicy::CpuOnly));
        let gpu = e(TargetMode::Byoc(TargetPolicy::GpuPrefer));
        let apu = e(TargetMode::Byoc(TargetPolicy::ApuPrefer));
        println!(
            "{:<22} {tvm:>10.1} {cpu:>10.1} {gpu:>10.1} {apu:>10.1}",
            model.name
        );
        assert!(
            tvm > cpu && tvm > gpu && tvm > apu,
            "{}: TVM-only burns most",
            model.name
        );
        assert!(
            apu < cpu && apu < gpu,
            "{}: APU is the most frugal",
            model.name
        );
    }

    // Same-architecture int8 vs float on the APU.
    let pairs = [
        (zoo::mobilenet_v1(611), zoo::mobilenet_v1_quant(613)),
        (zoo::mobilenet_v2(612), zoo::mobilenet_v2_quant(614)),
    ];
    println!();
    for (f, q) in pairs {
        let ef = relay_build(
            &f.module,
            TargetMode::Byoc(TargetPolicy::ApuPrefer),
            cost.clone(),
        )
        .unwrap()
        .estimate_energy_uj();
        let eq = relay_build(
            &q.module,
            TargetMode::Byoc(TargetPolicy::ApuPrefer),
            cost.clone(),
        )
        .unwrap()
        .estimate_energy_uj();
        println!(
            "{:<22} APU energy: float {ef:>8.1} uJ vs int8 {eq:>8.1} uJ",
            f.name
        );
        assert!(eq < ef, "int8 must save energy");
    }
    println!("\nenergy checks passed: the power argument behind NeuroPilot holds.");
    telem.finish();
}
