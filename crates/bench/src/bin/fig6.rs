//! Figure 6: inference time for the evaluation zoo (Table 1's models)
//! under the seven target permutations.
//!
//! Expected shape (checked): the Fig. 4 pattern repeats — TVM-only
//! slowest everywhere, NeuroPilot-only bars missing exactly for the
//! models with NP-unsupported ops (densenet, inception-resnet-v2,
//! nasnet), quantized models gaining the most from the APU.
//!
//! `cargo run --release -p tvmnp-bench --bin fig6 [--profile] [--trace-out <path>]`

use tvm_neuropilot::models::zoo;
use tvm_neuropilot::prelude::*;
use tvmnp_bench::profiling::TelemetryCli;
use tvmnp_bench::{check_figure_shape, figure_group};

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Figure 6: model-zoo inference time (simulated ms) ==\n");

    let missing_expected = ["densenet", "inception resnet v2", "nasnet"];

    for model in zoo::zoo(600) {
        let (ms, text) = figure_group(&model, &cost);
        check_figure_shape(&model.name, &ms);
        println!("{text}");

        let np_missing = ms.iter().filter(|m| m.time_ms.is_none()).count();
        let expect_missing = missing_expected.contains(&model.name.as_str());
        assert_eq!(
            np_missing > 0,
            expect_missing,
            "{}: NP-only coverage mismatch",
            model.name
        );

        telem.trace_model(&model, &cost);
    }

    // Same-architecture int8 vs float on the APU (the QNN-flow payoff).
    let apu_ms = |module: &Module| {
        measure_one(module, Permutation::ByocApu, &cost)
            .unwrap()
            .time_ms
            .unwrap()
    };
    let pairs = [
        (zoo::mobilenet_v1(600), zoo::mobilenet_v1_quant(600)),
        (zoo::mobilenet_v2(600), zoo::mobilenet_v2_quant(600)),
    ];
    for (f, q) in pairs {
        let tf = apu_ms(&f.module);
        let tq = apu_ms(&q.module);
        println!(
            "{:<22} BYOC APU: float {tf:.3} ms vs int8 {tq:.3} ms",
            f.name
        );
        assert!(tq < tf, "int8 must beat float on the APU");
    }
    println!("shape checks passed: same pattern as Fig. 4 across the zoo.");
    telem.finish();
}
