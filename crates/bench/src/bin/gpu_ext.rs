//! Extension: the mobile-GPU back-end the paper mentions but does not
//! evaluate ("the numerous back-ends provided by Mediatek NeuroPilot,
//! including mobile CPU, GPU or AI accelerators" — §1).
//!
//! Expected (asserted): for compute-dominated float models the Mali-class
//! GPU lands between the vendor CPU and the APU; quantized models skip
//! the GPU entirely (the APU's int8 advantage is too large).
//!
//! `cargo run --release -p tvmnp-bench --bin gpu_ext [--profile] [--trace-out <path>]
//! [--stats-out <path>] [--flight-out <dir>] [--slo-ms <f>]
//! [--profile-store <dir>] [--profile-diff <path>]`
//!
//! The observe flags stand up the live plane over the traced runs (each
//! traced model counts as one observed frame); the profile flags collect
//! a measured per-kernel cost/energy profile from the same runs.

use tvm_neuropilot::models::zoo;
use tvm_neuropilot::prelude::*;
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Extension: BYOC with the mobile GPU back-end (simulated ms) ==\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "model", "byoc-cpu", "byoc-gpu", "byoc-apu"
    );

    let gpu_mode = TargetMode::Byoc(TargetPolicy::GpuPrefer);
    for model in [
        zoo::inception_v3(601),
        zoo::inception_v4(602),
        zoo::mobilenet_v2(603),
        zoo::densenet(604),
    ] {
        telem.trace_model(&model, &cost);
        let t = |mode: TargetMode| {
            relay_build(&model.module, mode, cost.clone())
                .unwrap()
                .estimate_us()
                / 1000.0
        };
        let cpu = t(TargetMode::Byoc(TargetPolicy::CpuOnly));
        let gpu = t(gpu_mode);
        let apu = t(TargetMode::Byoc(TargetPolicy::ApuPrefer));
        println!("{:<22} {cpu:>10.3} {gpu:>10.3} {apu:>10.3}", model.name);
        assert!(
            gpu < cpu && apu < gpu,
            "{}: expected apu < gpu < cpu, got {apu:.3} / {gpu:.3} / {cpu:.3}",
            model.name
        );
    }
    println!("\nfloat models: APU < GPU < vendor CPU, as the device peaks predict.");
    telem.finish();
}
