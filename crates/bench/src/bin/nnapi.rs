//! Figure 3's lineage quantified: the team's previous NNAPI BYOC flow vs
//! the NeuroPilot-direct flow this paper contributes, over the showcase
//! models.
//!
//! Expected (asserted): NeuroPilot-direct offloads at least as much and
//! is never slower — the introduction's motivation for the new flow.
//!
//! `cargo run --release -p tvmnp-bench --bin nnapi [--profile] [--trace-out <path>]`

use tvm_neuropilot::byoc::nnapi::relay_build_nnapi;
use tvm_neuropilot::byoc::partition_for_nir;
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection};
use tvm_neuropilot::prelude::*;
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== NNAPI flow (prior work [11]) vs NeuroPilot-direct (this paper) ==\n");
    println!(
        "{:<22} {:>13} {:>13} {:>11} {:>11}",
        "model", "offload nnapi", "offload nir", "t nnapi ms", "t nir ms"
    );

    let models = [
        anti_spoofing::anti_spoofing_model(701),
        object_detection::mobilenet_ssd_model(702),
        emotion::emotion_model(703),
        // YOLO's leaky activations are exactly the NNAPI gap that splits
        // the offload.
        object_detection::yolo_model(704),
    ];
    for model in &models {
        telem.trace_model(model, &cost);
        let (nnapi_compiled, nnapi_report) =
            relay_build_nnapi(&model.module, TargetPolicy::CpuApu, cost.clone()).unwrap();
        let (_, nir_report) = partition_for_nir(&model.module).unwrap();
        let nir_compiled = relay_build(
            &model.module,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            cost.clone(),
        )
        .unwrap();
        let t_nnapi = nnapi_compiled.estimate_us() / 1000.0;
        let t_nir = nir_compiled.estimate_us() / 1000.0;
        println!(
            "{:<22} {:>12.0}% {:>12.0}% {:>11.3} {:>11.3}",
            model.name,
            nnapi_report.offload_fraction() * 100.0,
            nir_report.offload_fraction() * 100.0,
            t_nnapi,
            t_nir
        );
        assert!(nir_report.offload_fraction() >= nnapi_report.offload_fraction());
        assert!(
            t_nir <= t_nnapi + 1e-9,
            "{}: direct flow must not lose",
            model.name
        );
    }
    println!("\nNeuroPilot-direct offloads >= NNAPI and never runs slower — the");
    println!("win the paper's introduction claims over the prior NNAPI flow.");
    telem.finish();
}
