//! Table 1: models used for testing and their data types.
//!
//! `cargo run --release -p tvmnp-bench --bin table1 [--profile] [--trace-out <path>]`

use tvm_neuropilot::models::zoo;
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    println!("== Table 1: models used for testing and their data types ==\n");
    println!("{:<22} | Data Type", "Model");
    println!("{:-<22}-+-{:-<9}", "", "");
    for (name, dtype) in zoo::table1(600) {
        println!("{name:<22} | {dtype}");
    }
    // The table itself runs nothing; trace one zoo model so --profile /
    // --trace-out show where its simulated time goes.
    if telem.active() {
        let cost = tvm_neuropilot::prelude::CostModel::default();
        telem.trace_model(&zoo::mobilenet_v2(600), &cost);
    }
    telem.finish();
}
