//! Table 1: models used for testing and their data types.
//!
//! `cargo run --release -p tvmnp-bench --bin table1`

use tvm_neuropilot::models::zoo;

fn main() {
    println!("== Table 1: models used for testing and their data types ==\n");
    println!("{:<22} | Data Type", "Model");
    println!("{:-<22}-+-{:-<9}", "", "");
    for (name, dtype) in zoo::table1(600) {
        println!("{name:<22} | {dtype}");
    }
}
