//! §5.1 computation scheduling: measure the three showcase models under
//! all permutations and print the fastest-target assignment.
//!
//! `cargo run --release -p tvmnp-bench --bin sched [--profile] [--trace-out <path>]`
//!
//! With `--inject-fault <spec>` (plus `--fault-seed <n>`) the binary also
//! runs the three models through a [`ResilientSession`] sharing one fault
//! injector, starting each at NP-only APU and degrading down the fallback
//! chain as the injected faults demand, then prints the resilience
//! report. Exit code 0 means every model was served (possibly degraded);
//! an exhausted fallback chain exits nonzero.

use std::sync::Arc;
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection, Model};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::report::ResilienceReport;
use tvm_neuropilot::scheduler::computation::{best_assignment, ModelProfile};
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Computation scheduling (paper 5.1) ==\n");
    let models = [
        anti_spoofing::anti_spoofing_model(80),
        object_detection::mobilenet_ssd_model(81),
        emotion::emotion_model(82),
    ];
    let profiles: Vec<ModelProfile> = models
        .iter()
        .map(|m| ModelProfile {
            name: m.name.clone(),
            measurements: measure_all(&m.module, &cost).unwrap(),
        })
        .collect();

    for p in &profiles {
        let (best, t) = p.best().unwrap();
        println!("{:<22} -> {:<16} ({t:.3} ms)", p.name, best.label());
    }

    let assignment = best_assignment(&profiles);
    assert_eq!(assignment.len(), 3);
    println!("\nassignment complete; every model avoids TVM-only, as in the paper.");
    for p in &profiles {
        assert_ne!(assignment[&p.name], Permutation::TvmOnly);
    }

    if let Some(plan) = telem.fault_plan.clone() {
        run_resilient_showcase(&plan, &models, &cost);
    }

    for model in &models {
        telem.trace_model(model, &cost);
    }
    telem.finish();
}

/// Run the showcase models through shared-injector resilient sessions and
/// print the resilience report. The injector is shared so fault history
/// carries across models: a device that died serving model 1 is known
/// dead when models 2 and 3 plan.
fn run_resilient_showcase(plan: &FaultPlan, models: &[Model], cost: &CostModel) {
    println!("\n== Resilient showcase under injected faults ==\n");
    let injector = Arc::new(FaultInjector::new(plan.clone()));
    // Two dispatch attempts per segment: a single transient fault is
    // retried and absorbed, a burst exhausts the budget and degrades the
    // model down the fallback chain instead of failing the run.
    let policy = ResiliencePolicy {
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..ResiliencePolicy::default()
    };
    for model in models {
        let mut session = ResilientSession::with_injector(
            model.module.clone(),
            cost.clone(),
            injector.clone(),
            policy,
        );
        match session.run(&model.name, Permutation::NpApu, &model.sample_inputs(7)) {
            Ok(out) => {
                let via = if out.degraded() {
                    format!(" via {} fallback step(s)", out.fallbacks.len())
                } else {
                    String::new()
                };
                println!(
                    "{:<22} served by {:<16} in {:>10.1} us{via}",
                    model.name,
                    out.permutation.label(),
                    out.time_us
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let report = ResilienceReport::from_snapshot(&tvm_neuropilot::telemetry::snapshot());
    println!();
    print!("{}", report.render_text());
}
