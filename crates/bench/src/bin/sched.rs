//! §5.1 computation scheduling: measure the three showcase models under
//! all permutations and print the fastest-target assignment.
//!
//! `cargo run --release -p tvmnp-bench --bin sched [--profile] [--trace-out <path>]`

use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::scheduler::computation::{best_assignment, ModelProfile};
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Computation scheduling (paper 5.1) ==\n");
    let models = [
        anti_spoofing::anti_spoofing_model(80),
        object_detection::mobilenet_ssd_model(81),
        emotion::emotion_model(82),
    ];
    let profiles: Vec<ModelProfile> = models
        .iter()
        .map(|m| ModelProfile {
            name: m.name.clone(),
            measurements: measure_all(&m.module, &cost).unwrap(),
        })
        .collect();

    for p in &profiles {
        let (best, t) = p.best().unwrap();
        println!("{:<22} -> {:<16} ({t:.3} ms)", p.name, best.label());
    }

    let assignment = best_assignment(&profiles);
    assert_eq!(assignment.len(), 3);
    println!("\nassignment complete; every model avoids TVM-only, as in the paper.");
    for p in &profiles {
        assert_ne!(assignment[&p.name], Permutation::TvmOnly);
    }
    for model in &models {
        telem.trace_model(model, &cost);
    }
    telem.finish();
}
