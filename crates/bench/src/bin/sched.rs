//! §5.1 computation scheduling: measure the three showcase models under
//! all permutations and print the fastest-target assignment.
//!
//! `cargo run --release -p tvmnp-bench --bin sched [--profile] [--trace-out <path>]`
//!
//! With `--inject-fault <spec>` (plus `--fault-seed <n>`) the binary also
//! runs the three models through a [`ResilientSession`] sharing one fault
//! injector, starting each at NP-only APU and degrading down the fallback
//! chain as the injected faults demand, then prints the resilience
//! report. Exit code 0 means every model was served (possibly degraded);
//! an exhausted fallback chain exits nonzero.

use std::sync::Arc;
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection, Model};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::report::ResilienceReport;
use tvm_neuropilot::scheduler::computation::{best_assignment, ModelProfile};
use tvmnp_bench::profiling::TelemetryCli;

fn main() {
    let mut telem = TelemetryCli::from_env();
    let cost = CostModel::default();
    println!("== Computation scheduling (paper 5.1) ==\n");
    let models = [
        anti_spoofing::anti_spoofing_model(80),
        object_detection::mobilenet_ssd_model(81),
        emotion::emotion_model(82),
    ];
    let profiles: Vec<ModelProfile> = models
        .iter()
        .map(|m| ModelProfile {
            name: m.name.clone(),
            measurements: measure_all(&m.module, &cost).unwrap(),
        })
        .collect();

    for p in &profiles {
        let (best, t) = p.best().unwrap();
        println!("{:<22} -> {:<16} ({t:.3} ms)", p.name, best.label());
    }

    let assignment = best_assignment(&profiles);
    assert_eq!(assignment.len(), 3);
    println!("\nassignment complete; every model avoids TVM-only, as in the paper.");
    for p in &profiles {
        assert_ne!(assignment[&p.name], Permutation::TvmOnly);
    }

    let cache = run_serving_pool(
        &cost,
        telem.concurrency,
        telem.cache_dir.clone(),
        telem.plane.as_deref(),
    );

    if let Some(plan) = telem.fault_plan.clone() {
        run_resilient_showcase(&plan, &models, &cost, &cache);
    }

    for model in &models {
        telem.trace_model(model, &cost);
    }
    telem.finish();
}

/// Serve a clip through the concurrent session pool and print simulated
/// throughput versus sequential, plus artifact-cache statistics. With an
/// observability plane the concurrent pass runs observed (per-frame
/// traces, live sketches) and a p99 tail-attribution table follows the
/// throughput lines. Returns the cache so downstream sections (resilient
/// fallback re-dispatch) reuse the compiled artifacts.
fn run_serving_pool(
    cost: &CostModel,
    concurrency: usize,
    cache_dir: Option<std::path::PathBuf>,
    plane: Option<&tvm_neuropilot::observe::ObservePlane>,
) -> Arc<ArtifactCache> {
    println!("\n== Concurrent serving (session pool) ==\n");
    let mut cache = ArtifactCache::new(16 << 20);
    if let Some(dir) = cache_dir {
        cache = cache.with_disk_dir(dir);
    }
    let cache = Arc::new(cache);
    let pool = SessionPool::new(83, &serving_rotation(), cost, cache.clone());
    let frames = SyntheticVideo::new(84, 64, 64).frames(64);
    let sequential = pool.serve(&frames, 1);
    let concurrent = match plane {
        None => pool.serve(&frames, concurrency),
        Some(plane) => pool.serve_observed(&frames, concurrency, plane),
    };
    assert_eq!(
        sequential, concurrent,
        "concurrent serving must match sequential bitwise"
    );
    let per_frame: Vec<_> = sequential
        .iter()
        .map(|r| frame_segments(pool.assignment_for(r.frame_index), r))
        .collect();
    let sim = simulate_serve(&per_frame, concurrency);
    println!(
        "{} frames at concurrency {concurrency}: {:.1} ms sequential -> {:.1} ms \
         ({:.2}x, {:.0} frames/s simulated)",
        sim.frames,
        sim.sequential_us / 1e3,
        sim.concurrent_us / 1e3,
        sim.speedup(),
        sim.fps_concurrent()
    );
    let stats = pool.cache().stats();
    println!(
        "artifact cache: {} hit(s) / {} miss(es) ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    if let Some(plane) = plane {
        // Reassemble the per-frame trace trees recorded above and name
        // what the p99 tail frames actually spent their time on.
        let trees = tvm_neuropilot::observe::assemble(&tvm_neuropilot::telemetry::snapshot());
        if let Some(attribution) = tvm_neuropilot::observe::attribute(
            &plane.snapshot(),
            &trees,
            tvm_neuropilot::serving::PIPELINE,
        ) {
            println!("\n{}", attribution.render_text());
        }
    }
    cache
}

/// Run the showcase models through shared-injector resilient sessions and
/// print the resilience report. The injector is shared so fault history
/// carries across models: a device that died serving model 1 is known
/// dead when models 2 and 3 plan. Compiled artifacts come from `cache`,
/// so fallback re-dispatch reuses any permutation built before.
fn run_resilient_showcase(
    plan: &FaultPlan,
    models: &[Model],
    cost: &CostModel,
    cache: &Arc<ArtifactCache>,
) {
    println!("\n== Resilient showcase under injected faults ==\n");
    let injector = Arc::new(FaultInjector::new(plan.clone()));
    // Two dispatch attempts per segment: a single transient fault is
    // retried and absorbed, a burst exhausts the budget and degrades the
    // model down the fallback chain instead of failing the run.
    let policy = ResiliencePolicy {
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..ResiliencePolicy::default()
    };
    for model in models {
        let mut session = ResilientSession::with_injector(
            model.module.clone(),
            cost.clone(),
            injector.clone(),
            policy,
        )
        .with_cache(cache.clone(), ArtifactCache::quant_label(model.input_quant));
        match session.run(&model.name, Permutation::NpApu, &model.sample_inputs(7)) {
            Ok(out) => {
                let via = if out.degraded() {
                    format!(" via {} fallback step(s)", out.fallbacks.len())
                } else {
                    String::new()
                };
                println!(
                    "{:<22} served by {:<16} in {:>10.1} us{via}",
                    model.name,
                    out.permutation.label(),
                    out.time_us
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let report = ResilienceReport::from_snapshot(&tvm_neuropilot::telemetry::snapshot());
    println!();
    print!("{}", report.render_text());
    let stats = cache.stats();
    println!(
        "artifact cache after fallback re-dispatch: {} hit(s) / {} miss(es)",
        stats.hits, stats.misses
    );
}
