//! Differential conformance CLI: seeded generative runs across the seven
//! target permutations, plus `.repro` replay.
//!
//! ```text
//! # Fixed-seed smoke (CI): 200 cases, fail on any divergence/invariant.
//! cargo run --release -p tvmnp-bench --bin conformance -- --cases 200 --seed 1
//!
//! # Longer hunt, writing shrunk .repro files for every failure.
//! cargo run --release -p tvmnp-bench --bin conformance -- \
//!     --cases 5000 --seed 7 --out-dir target/conformance
//!
//! # Replay a captured case. Exit 0 = no longer fails (fixed),
//! # exit 1 = still fails.
//! cargo run --release -p tvmnp-bench --bin conformance -- \
//!     --replay target/conformance/divergence-BYOC-APU-seed42.repro
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tvmnp_conformance::{read_repro, run_suite, write_repro, CheckOptions, SuiteConfig};

struct Args {
    cases: usize,
    seed: u64,
    quant_every: usize,
    out_dir: Option<PathBuf>,
    replay: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: conformance [--cases N] [--seed S] [--quant-every K] \
         [--out-dir <dir>] | --replay <file.repro>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        cases: 200,
        seed: 1,
        quant_every: 3,
        out_dir: None,
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} requires a value");
            usage();
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cases" => {
                parsed.cases = value(&mut args, "--cases").parse().unwrap_or_else(|_| {
                    eprintln!("error: --cases expects an integer");
                    usage();
                })
            }
            "--seed" => {
                parsed.seed = value(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed expects an integer");
                    usage();
                })
            }
            "--quant-every" => {
                parsed.quant_every =
                    value(&mut args, "--quant-every")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("error: --quant-every expects an integer");
                            usage();
                        })
            }
            "--out-dir" => parsed.out_dir = Some(PathBuf::from(value(&mut args, "--out-dir"))),
            "--replay" => parsed.replay = Some(PathBuf::from(value(&mut args, "--replay"))),
            _ => {
                eprintln!("error: unknown argument '{a}'");
                usage();
            }
        }
    }
    parsed
}

fn replay(path: &Path) -> ExitCode {
    let repro = match read_repro(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conformance: cannot load {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} (captured kind: {}, spec: {})",
        path.display(),
        repro.kind,
        repro.spec
    );
    match repro.replay() {
        Ok(outcome) => {
            println!(
                "PASS: case no longer fails ({} compared, {} skipped)",
                outcome.permutations_compared, outcome.permutations_skipped
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            println!("FAIL: {failure}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.replay {
        return replay(path);
    }

    let cfg = SuiteConfig {
        cases: args.cases,
        base_seed: args.seed,
        quant_every: args.quant_every,
        options: CheckOptions::default(),
    };
    let report = run_suite(&cfg);
    println!(
        "conformance: {} cases ({} quantized), {} permutations compared, {} skipped, {} subgraphs",
        report.cases_run,
        report.quant_cases,
        report.permutations_compared,
        report.permutations_skipped,
        report.total_subgraphs
    );
    if report.passed() {
        println!("conformance: all cases bit-identical across the seven permutations");
        return ExitCode::SUCCESS;
    }
    eprintln!("conformance: {} FAILING case(s)", report.failures.len());
    for f in &report.failures {
        eprintln!(
            "  seed {}: {} (shrunk to {} nodes)",
            f.case_seed,
            f.failure,
            f.repro.spec.num_nodes()
        );
        if let Some(dir) = &args.out_dir {
            let path = dir.join(format!("{}.repro", f.repro.file_stem()));
            match write_repro(&path, &f.repro) {
                Ok(()) => eprintln!("    wrote {}", path.display()),
                Err(e) => eprintln!("    failed to write {}: {e}", path.display()),
            }
        }
    }
    ExitCode::FAILURE
}
