//! # tvmnp-bench
//!
//! The experiment harness: one binary per paper table/figure (run with
//! `cargo run --release -p tvmnp-bench --bin <figN|tableN|sched>`) plus
//! Criterion benches over the same workloads.
//!
//! Mapping (see DESIGN.md §4 for the full index):
//! * `fig4`   — inference time of the three showcase models × 7 permutations
//! * `fig5`   — the pipeline schedule prototype
//! * `fig6`   — inference time of the model zoo × 7 permutations
//! * `table1` — zoo models and data types
//! * `table2` — testbed specification
//! * `sched`  — §5.1 computation-scheduling assignment

use tvm_neuropilot::prelude::*;

pub mod profiling;

/// Render one figure group (a model's seven bars) as an aligned text row
/// set, using `--` for missing bars as the paper's figures do.
pub fn render_permutation_rows(model: &str, measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{model}\n"));
    for m in measurements {
        let bar = match m.time_ms {
            Some(t) => format!("{t:10.3} ms"),
            None => format!("{:>10}   ", "--"),
        };
        let sub = if m.subgraphs > 0 {
            format!("  [{} subgraph(s)]", m.subgraphs)
        } else {
            String::new()
        };
        out.push_str(&format!("  {:<16} {bar}{sub}\n", m.permutation.label()));
    }
    out
}

/// Measure one model across the seven permutations and render it.
pub fn figure_group(
    model: &tvm_neuropilot::models::Model,
    cost: &CostModel,
) -> (Vec<Measurement>, String) {
    let ms = measure_all(&model.module, cost).expect("measure");
    let rendered = render_permutation_rows(&model.name, &ms);
    (ms, rendered)
}

/// Shape checks shared by the figure harnesses: TVM-only slowest among
/// compiling bars; missing bars only in NP-only modes.
pub fn check_figure_shape(model: &str, ms: &[Measurement]) {
    let tvm = ms[0].time_ms.expect("TVM-only always compiles");
    for r in &ms[1..] {
        if let Some(t) = r.time_ms {
            assert!(
                tvm > t,
                "{model}: TVM-only ({tvm:.3}) must exceed {} ({t:.3})",
                r.permutation
            );
        }
    }
    for r in ms {
        if r.time_ms.is_none() {
            assert!(
                matches!(
                    r.permutation,
                    Permutation::NpCpu | Permutation::NpApu | Permutation::NpCpuApu
                ),
                "{model}: only NP-only bars may be missing"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_neuropilot::models::zoo;

    #[test]
    fn figure_group_renders_and_checks() {
        let cost = CostModel::default();
        let model = zoo::mobilenet_v1(1);
        let (ms, text) = figure_group(&model, &cost);
        check_figure_shape(&model.name, &ms);
        assert!(text.contains("TVM-only"));
        assert!(text.contains("mobilenet v1"));
    }

    #[test]
    fn missing_bars_render_as_dashes() {
        let cost = CostModel::default();
        let model = zoo::nasnet(1);
        let (ms, text) = figure_group(&model, &cost);
        check_figure_shape(&model.name, &ms);
        assert!(text.contains("--"));
    }
}
