//! `--profile` / `--trace-out <path>` / fault-injection support for the
//! bench binaries.
//!
//! Every figure/table binary accepts:
//!
//! * `--profile` — print a per-op profile table (op, device, calls, total
//!   µs, % of run) after the figure output;
//! * `--trace-out <path>` — write a Chrome trace-event JSON file
//!   (loadable in Perfetto / `chrome://tracing`) covering the compile,
//!   partition, and execute phases of the run;
//! * `--inject-fault <spec>` (repeatable) — add one deterministic fault
//!   rule, `<device>:<site>:<kind>[=<value>][@<work>]`, e.g.
//!   `apu:dispatch:transient` or `apu:kernel:throttle=2.5@mac`;
//! * `--fault-seed <n>` — seed for the fault plan's deterministic draws
//!   (default 0).
//!
//! The live-observability flags stand up an
//! [`ObservePlane`](tvm_neuropilot::observe::ObservePlane) for the run:
//!
//! * `--stats-out <path>` — stream periodic quantile-sketch snapshots as
//!   JSONL;
//! * `--flight-out <dir>` — write flight-recorder dumps into `dir` on
//!   fault exhaustion, SLO breach, or worker panic;
//! * `--flight-buffer <n>` — flight-recorder ring capacity (default 1024);
//! * `--slo-ms <f>` — per-frame latency SLO; a breach triggers a dump.
//!
//! The measured-profile flags collect a `tvmnp-profile` cost database
//! from the run (telemetry detail mode):
//!
//! * `--profile-store <dir>` — save the measured profile into the
//!   content-addressed store at `dir`;
//! * `--profile-diff <path>` — diff the measured profile against a
//!   baseline (a store directory or a single profile file) and print the
//!   ranked attribution table.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tvm_neuropilot::models::Model;
use tvm_neuropilot::observe::{ObserveConfig, ObservePlane};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::profile::{diff_profiles, DiffOptions, ProfileDiff};
use tvmnp_telemetry::{profile_table, write_chrome_trace, ProfileOptions};

/// Parsed live-observability flags, shared by the bench binaries.
#[derive(Debug, Clone, Default)]
pub struct ObserveCli {
    /// JSONL stats-stream path (`--stats-out`).
    pub stats_out: Option<PathBuf>,
    /// Flight-dump directory (`--flight-out`).
    pub flight_out: Option<PathBuf>,
    /// Flight-recorder ring capacity (`--flight-buffer`, default 1024).
    pub flight_buffer: Option<usize>,
    /// Per-frame SLO in milliseconds (`--slo-ms`).
    pub slo_ms: Option<f64>,
}

impl ObserveCli {
    /// Whether any observability output was requested.
    pub fn active(&self) -> bool {
        self.stats_out.is_some()
            || self.flight_out.is_some()
            || self.flight_buffer.is_some()
            || self.slo_ms.is_some()
    }

    /// Try to consume one observability flag at `arg`, pulling values
    /// from `args`. Returns whether the flag was recognized; exits with
    /// a usage error on a malformed value.
    pub fn consume(&mut self, arg: &str, args: &mut dyn Iterator<Item = String>) -> bool {
        let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg {
            "--stats-out" => {
                self.stats_out = Some(PathBuf::from(value(args, "--stats-out")));
            }
            "--flight-out" => {
                self.flight_out = Some(PathBuf::from(value(args, "--flight-out")));
            }
            "--flight-buffer" => {
                let v = value(args, "--flight-buffer");
                let n: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --flight-buffer expects a positive integer, got '{v}'");
                    std::process::exit(2);
                });
                if n == 0 {
                    eprintln!("error: --flight-buffer must be at least 1");
                    std::process::exit(2);
                }
                self.flight_buffer = Some(n);
            }
            "--slo-ms" => {
                let v = value(args, "--slo-ms");
                let ms: f64 = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --slo-ms expects a float, got '{v}'");
                    std::process::exit(2);
                });
                if !ms.is_finite() || ms <= 0.0 {
                    eprintln!("error: --slo-ms must be positive");
                    std::process::exit(2);
                }
                self.slo_ms = Some(ms);
            }
            _ => return false,
        }
        true
    }

    /// Stand up (and install) the observability plane these flags
    /// describe; `None` when no flag was given. Also enables the
    /// telemetry collector — traced spans are the plane's raw material.
    pub fn build_plane(&self) -> Option<Arc<ObservePlane>> {
        if !self.active() {
            return None;
        }
        let config = ObserveConfig {
            slo_us: self.slo_ms.map(|ms| ms * 1e3),
            flight_capacity: self.flight_buffer.unwrap_or(1024),
            flight_dir: self.flight_out.clone(),
            stats_path: self.stats_out.clone(),
            ..ObserveConfig::default()
        };
        let plane = match ObservePlane::new(config) {
            Ok(p) => Arc::new(p),
            Err(e) => {
                eprintln!("error: failed to stand up observability plane: {e}");
                std::process::exit(1);
            }
        };
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        plane.install();
        Some(plane)
    }

    /// Finish the plane: final stats line, stream flush, sink removal,
    /// and a one-line summary of what was written where.
    pub fn finish_plane(&self, plane: &Arc<ObservePlane>) {
        if let Err(e) = plane.finish() {
            eprintln!("error: failed to flush stats stream: {e}");
            std::process::exit(1);
        }
        ObservePlane::uninstall();
        if let Some(path) = &self.stats_out {
            println!(
                "stats stream written to {} ({} frame(s) observed)",
                path.display(),
                plane.frames()
            );
        }
        let dumps = plane.dump_paths();
        if !dumps.is_empty() {
            for p in &dumps {
                println!("flight dump written to {}", p.display());
            }
        } else if self.flight_out.is_some() {
            println!("no flight dump triggered (no fault exhaustion, SLO breach, or panic)");
        }
    }
}

/// Parsed measured-profile flags (`--profile-store` / `--profile-diff`),
/// shared by the bench binaries and the `bench` regression harness.
#[derive(Debug, Clone, Default)]
pub struct ProfileCli {
    /// Store directory to save the measured profile into.
    pub store_dir: Option<PathBuf>,
    /// Baseline to diff against: a store directory or a profile file.
    pub diff_base: Option<PathBuf>,
}

impl ProfileCli {
    /// Whether measured-profile collection was requested.
    pub fn active(&self) -> bool {
        self.store_dir.is_some() || self.diff_base.is_some()
    }

    /// Try to consume one profile flag at `arg`, pulling values from
    /// `args`. Returns whether the flag was recognized.
    pub fn consume(&mut self, arg: &str, args: &mut dyn Iterator<Item = String>) -> bool {
        let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a path");
                std::process::exit(2);
            })
        };
        match arg {
            "--profile-store" => {
                self.store_dir = Some(PathBuf::from(value(args, "--profile-store")));
            }
            "--profile-diff" => {
                self.diff_base = Some(PathBuf::from(value(args, "--profile-diff")));
            }
            _ => return false,
        }
        true
    }

    /// Resolve the baseline profile for `key`: a directory is treated as
    /// a profile store (looked up by key), a file as one profile.
    fn load_baseline(path: &Path, key: &ProfileKey) -> Result<Profile, String> {
        if path.is_dir() {
            let store = ProfileStore::open(path).map_err(|e| e.to_string())?;
            store.load(key).map_err(|e| e.to_string())
        } else {
            Profile::read(path).map_err(|e| e.to_string())
        }
    }

    /// Save and/or diff the collected profile per the flags, printing the
    /// store path, the ranked attribution table, and the greppable
    /// `top regression cell:` line. Returns the diff when one was made.
    pub fn report(&self, profile: &mut Profile) -> Option<ProfileDiff> {
        if profile.total_count() == 0 {
            eprintln!("warning: measured profile is empty (no detail-mode executor spans)");
        }
        if let Some(dir) = &self.store_dir {
            let store = tvm_neuropilot::profile::ProfileStore::open(dir).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            match store.save(profile) {
                Ok(path) => println!(
                    "measured profile written to {} ({} cells, {} samples)",
                    path.display(),
                    profile.cells.len(),
                    profile.total_count()
                ),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        let base_path = self.diff_base.as_ref()?;
        let baseline = match Self::load_baseline(base_path, &profile.key) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: --profile-diff: {e}");
                std::process::exit(1);
            }
        };
        let diff = diff_profiles(&baseline, profile, &DiffOptions::default());
        println!();
        print!("{}", diff.render());
        match diff.top() {
            Some(top) => println!(
                "top regression cell: {} (ratio {:.2}x, {:+.1} us total)",
                top.cell, top.ratio, top.delta_total_us
            ),
            None => println!("no significant cell movement vs baseline"),
        }
        Some(diff)
    }
}

/// Parsed telemetry flags plus the state accumulated while profiling.
pub struct TelemetryCli {
    /// Print the per-op profile table at the end.
    pub profile: bool,
    /// Write a Chrome trace to this path at the end.
    pub trace_out: Option<PathBuf>,
    /// Seeded fault plan from `--inject-fault`/`--fault-seed`; `None`
    /// when no fault was requested.
    pub fault_plan: Option<FaultPlan>,
    /// Span name the profile table aggregates (bins that execute no graph
    /// override this, e.g. `scheduler.stage` for fig5).
    pub profile_span: &'static str,
    /// Frames in flight for the serving pool (`--concurrency N`).
    pub concurrency: usize,
    /// Compiled-artifact cache directory (`--cache-dir <path>`); `None`
    /// keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Parsed live-observability flags.
    pub observe: ObserveCli,
    /// The installed observability plane, when any observe flag was
    /// given. Finished and uninstalled by [`TelemetryCli::finish`].
    pub plane: Option<Arc<ObservePlane>>,
    /// Parsed measured-profile flags (`--profile-store`/`--profile-diff`).
    pub profile_cli: ProfileCli,
    /// Workload name stamped into the measured profile's key (the
    /// binary's file stem, e.g. `fig4`).
    workload: String,
    /// Frames run so far via [`TelemetryCli::trace_model`]; feeds
    /// [`ObservePlane::frame_done`].
    frames: usize,
    total_run_us: f64,
}

impl TelemetryCli {
    /// Parse `--profile` / `--trace-out <path>` / `--inject-fault <spec>`
    /// / `--fault-seed <n>` from the process args and enable the
    /// telemetry collector if any is present (fault-injected runs are
    /// always traced so the resilience report has data).
    pub fn from_env() -> TelemetryCli {
        let mut profile = false;
        let mut trace_out = None;
        let mut fault_specs: Vec<String> = Vec::new();
        let mut fault_seed = 0u64;
        let mut concurrency = 4usize;
        let mut cache_dir = None;
        let mut observe = ObserveCli::default();
        let mut profile_cli = ProfileCli::default();
        let workload = std::env::args()
            .next()
            .and_then(|p| {
                Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_string());
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if observe.consume(a.as_str(), &mut args) {
                continue;
            }
            if profile_cli.consume(a.as_str(), &mut args) {
                continue;
            }
            match a.as_str() {
                "--profile" => profile = true,
                "--concurrency" => {
                    let Some(v) = args.next() else {
                        eprintln!("error: --concurrency requires an integer argument");
                        std::process::exit(2);
                    };
                    concurrency = v.parse().unwrap_or_else(|_| {
                        eprintln!("error: --concurrency expects a positive integer, got '{v}'");
                        std::process::exit(2);
                    });
                    if concurrency == 0 {
                        eprintln!("error: --concurrency must be at least 1");
                        std::process::exit(2);
                    }
                }
                "--cache-dir" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --cache-dir requires a path argument");
                        std::process::exit(2);
                    };
                    cache_dir = Some(PathBuf::from(path));
                }
                "--trace-out" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --trace-out requires a path argument");
                        std::process::exit(2);
                    };
                    trace_out = Some(PathBuf::from(path));
                }
                "--inject-fault" => {
                    let Some(spec) = args.next() else {
                        eprintln!("error: --inject-fault requires a spec argument");
                        std::process::exit(2);
                    };
                    fault_specs.push(spec);
                }
                "--fault-seed" => {
                    let Some(v) = args.next() else {
                        eprintln!("error: --fault-seed requires an integer argument");
                        std::process::exit(2);
                    };
                    fault_seed = v.parse().unwrap_or_else(|_| {
                        eprintln!("error: --fault-seed expects an integer, got '{v}'");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "error: unknown argument '{other}' \
                         (supported: --profile, --trace-out <path>, \
                         --inject-fault <spec>, --fault-seed <n>, \
                         --concurrency <n>, --cache-dir <path>, \
                         --stats-out <path>, --flight-out <dir>, \
                         --flight-buffer <n>, --slo-ms <f>, \
                         --profile-store <dir>, --profile-diff <path>)"
                    );
                    std::process::exit(2);
                }
            }
        }
        let fault_plan = build_fault_plan(&fault_specs, fault_seed);
        let mut cli = TelemetryCli {
            profile,
            trace_out,
            fault_plan,
            profile_span: "executor.node",
            concurrency,
            cache_dir,
            observe,
            plane: None,
            profile_cli,
            workload,
            frames: 0,
            total_run_us: 0.0,
        };
        if cli.active() || cli.fault_plan.is_some() || cli.profile_cli.active() {
            tvmnp_telemetry::enable();
            tvmnp_telemetry::reset();
        }
        // Last: the plane's build enables + resets the collector itself,
        // so any prior enable above is subsumed, not double-counted.
        cli.plane = cli.observe.build_plane();
        if cli.profile_cli.active() {
            // Detail mode stamps kind/energy/analytic args onto executor
            // spans so the profile store can bin them. Confined to this
            // run: finish() clears it before any report is rendered.
            tvmnp_telemetry::set_detail(true);
        }
        cli
    }

    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.profile || self.trace_out.is_some()
    }

    /// Compile `model` through the BYOC flow and execute one inference so
    /// the trace gains an execute phase with per-node timings, the
    /// observability plane sees a frame, and the measured profile gains
    /// samples. No-op when no telemetry, observe, or profile output was
    /// requested (the figure harnesses measure analytically and never
    /// execute).
    pub fn trace_model(&mut self, model: &Model, cost: &CostModel) {
        if !(self.active() || self.profile_cli.active() || self.plane.is_some()) {
            return;
        }
        let mut compiled = relay_build(
            &model.module,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            cost.clone(),
        )
        .expect("profiling build");
        let (_, us) = compiled
            .run(&model.sample_inputs(7))
            .expect("profiling run");
        if let Some(plane) = &self.plane {
            plane.frame_done(&model.name, self.frames, us);
        }
        self.frames += 1;
        self.total_run_us += us;
    }

    /// Emit the requested outputs and disable collection.
    pub fn finish(mut self) {
        if let Some(plane) = &self.plane {
            self.observe.finish_plane(plane);
        }
        if self.profile_cli.active() {
            tvmnp_telemetry::set_detail(false);
            tvmnp_telemetry::disable();
            let snap = tvmnp_telemetry::snapshot();
            let mut profile = Profile::new(ProfileKey {
                workload: std::mem::take(&mut self.workload),
                permutation: "byoc-cpu-apu".to_string(),
                quant: "f32".to_string(),
                soc: "dimensity-800".to_string(),
            });
            profile.ingest_snapshot(&snap);
            self.profile_cli.report(&mut profile);
        }
        if !self.active() {
            if self.fault_plan.is_some() || self.plane.is_some() || self.profile_cli.active() {
                tvmnp_telemetry::disable();
            }
            return;
        }
        tvmnp_telemetry::disable();
        let snap = tvmnp_telemetry::snapshot();
        if self.profile {
            let opts = ProfileOptions {
                span_name: Some(self.profile_span.to_string()),
                total_us: (self.total_run_us > 0.0).then_some(self.total_run_us),
            };
            println!("\n== per-op profile (simulated time) ==\n");
            print!("{}", profile_table(&snap, &opts));
        }
        if let Some(path) = &self.trace_out {
            if let Err(e) = write_chrome_trace(&snap, path) {
                eprintln!(
                    "error: {}: failed to write chrome trace: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
            println!(
                "\nchrome trace written to {} (open in Perfetto)",
                path.display()
            );
        }
    }
}

/// Fold `--inject-fault` specs into a seeded [`FaultPlan`]; `None` when
/// no spec was given. Exits with a usage error on a malformed spec (same
/// contract as the binaries' other flag errors).
pub fn build_fault_plan(specs: &[String], seed: u64) -> Option<FaultPlan> {
    if specs.is_empty() {
        return None;
    }
    let mut plan = FaultPlan::seeded(seed);
    for spec in specs {
        plan = plan.with_spec(spec).unwrap_or_else(|e| {
            eprintln!("error: --inject-fault: {e}");
            std::process::exit(2);
        });
    }
    Some(plan)
}
