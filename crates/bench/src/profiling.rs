//! `--profile` / `--trace-out <path>` / fault-injection support for the
//! bench binaries.
//!
//! Every figure/table binary accepts:
//!
//! * `--profile` — print a per-op profile table (op, device, calls, total
//!   µs, % of run) after the figure output;
//! * `--trace-out <path>` — write a Chrome trace-event JSON file
//!   (loadable in Perfetto / `chrome://tracing`) covering the compile,
//!   partition, and execute phases of the run;
//! * `--inject-fault <spec>` (repeatable) — add one deterministic fault
//!   rule, `<device>:<site>:<kind>[=<value>][@<work>]`, e.g.
//!   `apu:dispatch:transient` or `apu:kernel:throttle=2.5@mac`;
//! * `--fault-seed <n>` — seed for the fault plan's deterministic draws
//!   (default 0).

use std::path::PathBuf;
use tvm_neuropilot::models::Model;
use tvm_neuropilot::prelude::*;
use tvmnp_telemetry::{profile_table, write_chrome_trace, ProfileOptions};

/// Parsed telemetry flags plus the state accumulated while profiling.
pub struct TelemetryCli {
    /// Print the per-op profile table at the end.
    pub profile: bool,
    /// Write a Chrome trace to this path at the end.
    pub trace_out: Option<PathBuf>,
    /// Seeded fault plan from `--inject-fault`/`--fault-seed`; `None`
    /// when no fault was requested.
    pub fault_plan: Option<FaultPlan>,
    /// Span name the profile table aggregates (bins that execute no graph
    /// override this, e.g. `scheduler.stage` for fig5).
    pub profile_span: &'static str,
    /// Frames in flight for the serving pool (`--concurrency N`).
    pub concurrency: usize,
    /// Compiled-artifact cache directory (`--cache-dir <path>`); `None`
    /// keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    total_run_us: f64,
}

impl TelemetryCli {
    /// Parse `--profile` / `--trace-out <path>` / `--inject-fault <spec>`
    /// / `--fault-seed <n>` from the process args and enable the
    /// telemetry collector if any is present (fault-injected runs are
    /// always traced so the resilience report has data).
    pub fn from_env() -> TelemetryCli {
        let mut profile = false;
        let mut trace_out = None;
        let mut fault_specs: Vec<String> = Vec::new();
        let mut fault_seed = 0u64;
        let mut concurrency = 4usize;
        let mut cache_dir = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--profile" => profile = true,
                "--concurrency" => {
                    let Some(v) = args.next() else {
                        eprintln!("error: --concurrency requires an integer argument");
                        std::process::exit(2);
                    };
                    concurrency = v.parse().unwrap_or_else(|_| {
                        eprintln!("error: --concurrency expects a positive integer, got '{v}'");
                        std::process::exit(2);
                    });
                    if concurrency == 0 {
                        eprintln!("error: --concurrency must be at least 1");
                        std::process::exit(2);
                    }
                }
                "--cache-dir" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --cache-dir requires a path argument");
                        std::process::exit(2);
                    };
                    cache_dir = Some(PathBuf::from(path));
                }
                "--trace-out" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --trace-out requires a path argument");
                        std::process::exit(2);
                    };
                    trace_out = Some(PathBuf::from(path));
                }
                "--inject-fault" => {
                    let Some(spec) = args.next() else {
                        eprintln!("error: --inject-fault requires a spec argument");
                        std::process::exit(2);
                    };
                    fault_specs.push(spec);
                }
                "--fault-seed" => {
                    let Some(v) = args.next() else {
                        eprintln!("error: --fault-seed requires an integer argument");
                        std::process::exit(2);
                    };
                    fault_seed = v.parse().unwrap_or_else(|_| {
                        eprintln!("error: --fault-seed expects an integer, got '{v}'");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "error: unknown argument '{other}' \
                         (supported: --profile, --trace-out <path>, \
                         --inject-fault <spec>, --fault-seed <n>, \
                         --concurrency <n>, --cache-dir <path>)"
                    );
                    std::process::exit(2);
                }
            }
        }
        let fault_plan = build_fault_plan(&fault_specs, fault_seed);
        let cli = TelemetryCli {
            profile,
            trace_out,
            fault_plan,
            profile_span: "executor.node",
            concurrency,
            cache_dir,
            total_run_us: 0.0,
        };
        if cli.active() || cli.fault_plan.is_some() {
            tvmnp_telemetry::enable();
            tvmnp_telemetry::reset();
        }
        cli
    }

    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.profile || self.trace_out.is_some()
    }

    /// Compile `model` through the BYOC flow and execute one inference so
    /// the trace gains an execute phase with per-node timings. No-op when
    /// telemetry is off (the figure harnesses measure analytically and
    /// never execute).
    pub fn trace_model(&mut self, model: &Model, cost: &CostModel) {
        if !self.active() {
            return;
        }
        let mut compiled = relay_build(
            &model.module,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            cost.clone(),
        )
        .expect("profiling build");
        let (_, us) = compiled
            .run(&model.sample_inputs(7))
            .expect("profiling run");
        self.total_run_us += us;
    }

    /// Emit the requested outputs and disable collection.
    pub fn finish(self) {
        if !self.active() {
            if self.fault_plan.is_some() {
                tvmnp_telemetry::disable();
            }
            return;
        }
        tvmnp_telemetry::disable();
        let snap = tvmnp_telemetry::snapshot();
        if self.profile {
            let opts = ProfileOptions {
                span_name: Some(self.profile_span.to_string()),
                total_us: (self.total_run_us > 0.0).then_some(self.total_run_us),
            };
            println!("\n== per-op profile (simulated time) ==\n");
            print!("{}", profile_table(&snap, &opts));
        }
        if let Some(path) = &self.trace_out {
            if let Err(e) = write_chrome_trace(&snap, path) {
                eprintln!(
                    "error: {}: failed to write chrome trace: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
            println!(
                "\nchrome trace written to {} (open in Perfetto)",
                path.display()
            );
        }
    }
}

/// Fold `--inject-fault` specs into a seeded [`FaultPlan`]; `None` when
/// no spec was given. Exits with a usage error on a malformed spec (same
/// contract as the binaries' other flag errors).
pub fn build_fault_plan(specs: &[String], seed: u64) -> Option<FaultPlan> {
    if specs.is_empty() {
        return None;
    }
    let mut plan = FaultPlan::seeded(seed);
    for spec in specs {
        plan = plan.with_spec(spec).unwrap_or_else(|e| {
            eprintln!("error: --inject-fault: {e}");
            std::process::exit(2);
        });
    }
    Some(plan)
}
