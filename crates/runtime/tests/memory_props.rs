//! Property tests for the storage planner and the executor's analytic
//! time estimate.

use proptest::prelude::*;
use tvmnp_hwsim::CostModel;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::{Conv2dAttrs, OpKind, TensorType};
use tvmnp_runtime::{plan_memory, ExecutorGraph, GraphExecutor, ModuleRegistry};
use tvmnp_tensor::rng::TensorRng;

fn random_graph(choices: &[u8], seed: u64) -> Module {
    let mut rng = TensorRng::new(seed);
    let x = var("x", TensorType::f32([1, 4, 8, 8]));
    let mut nodes: Vec<Expr> = vec![x.clone()];
    for (i, &c) in choices.iter().enumerate() {
        let pick = |k: usize| nodes[(c as usize + k * 3 + i) % nodes.len()].clone();
        let new = match c % 6 {
            0 => builder::relu(pick(0)),
            1 => builder::sigmoid(pick(0)),
            2 => builder::add(pick(0), pick(1)),
            3 => builder::multiply(pick(0), pick(1)),
            4 => builder::conv2d(
                pick(0),
                rng.uniform_f32([4, 4, 3, 3], -0.3, 0.3),
                Conv2dAttrs::same(1),
            ),
            _ => call(OpKind::Tanh, vec![pick(0)]),
        };
        nodes.push(new);
    }
    Module::from_main(Function::new(vec![x], nodes.last().unwrap().clone()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The storage plan never aliases two simultaneously-live values, and
    /// peak memory is bounded by the no-reuse total.
    #[test]
    fn memory_plan_sound(choices in prop::collection::vec(0u8..=255, 1..24), seed in 0u64..10_000) {
        let m = random_graph(&choices, seed);
        let g = ExecutorGraph::build(&m).unwrap();
        let plan = plan_memory(&g);
        prop_assert!(plan.check_no_alias(&g).is_none());
        // Upper bound: sum of all op-output sizes (no reuse at all).
        let no_reuse: usize = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, tvmnp_runtime::NodeKind::Op { .. }))
            .flat_map(|n| n.out_types.iter().map(|t| t.size_bytes()))
            .sum();
        prop_assert!(plan.peak_bytes <= no_reuse.max(1));
        // Lower bound: at least the largest single output.
        let largest = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, tvmnp_runtime::NodeKind::Op { .. }))
            .flat_map(|n| n.out_types.iter().map(|t| t.size_bytes()))
            .max()
            .unwrap_or(0);
        prop_assert!(plan.peak_bytes >= largest);
    }

    /// The executor's analytic estimate equals the time accounted during a
    /// real run (one timing source of truth).
    #[test]
    fn estimate_matches_run(choices in prop::collection::vec(0u8..=255, 1..12), seed in 0u64..10_000) {
        let m = random_graph(&choices, seed);
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        let est = ex.estimate_time_us();
        let mut rng = TensorRng::new(seed);
        ex.set_input("x", rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0)).unwrap();
        let ran = ex.run().unwrap();
        prop_assert!((est - ran).abs() < 1e-6, "estimate {est} vs run {ran}");
    }

    /// Lowering and executing equals the interpreter for random graphs.
    #[test]
    fn executor_matches_interpreter(choices in prop::collection::vec(0u8..=255, 1..12), seed in 0u64..10_000) {
        let m = random_graph(&choices, seed);
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        let mut rng = TensorRng::new(seed ^ 0xabcd);
        let input = rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0);
        ex.set_input("x", input.clone()).unwrap();
        ex.run().unwrap();
        let mut ins = std::collections::HashMap::new();
        ins.insert("x".to_string(), input);
        let reference = tvmnp_relay::interp::run_module(&m, &ins).unwrap();
        prop_assert!(ex.get_output(0).unwrap().bit_eq(&reference));
    }
}
