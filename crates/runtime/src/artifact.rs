//! Deployable artifacts and the simulated Android deployment of §4.5.
//!
//! `relay.build(...)` + `lib.export_library(dylib_path, ndk.create_shared)`
//! become: serialize the executor graph, params, and every linked external
//! module into one JSON artifact; "push" it to an [`AndroidDevice`], which
//! holds only the *runtime* (a [`LoaderRegistry`] of external-module
//! deserializers — no compiler), loads the artifact, and runs inference.

use crate::executor::{ExecError, GraphExecutor};
use crate::graph::ExecutorGraph;
use crate::module::{ExternalModule, ModuleRegistry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use tvmnp_hwsim::CostModel;

/// What went wrong exporting or loading an artifact, naming the file
/// involved so deployment scripts can report actionable errors.
#[derive(Debug)]
pub enum ArtifactError {
    /// The artifact could not be serialized to JSON.
    Serialize {
        /// Destination file.
        path: PathBuf,
        /// Underlying serde error.
        source: serde_json::Error,
    },
    /// Reading or writing the artifact file failed.
    Io {
        /// File involved.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The file exists but does not parse as an artifact.
    Parse {
        /// Source file.
        path: PathBuf,
        /// Underlying serde error.
        source: serde_json::Error,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Serialize { path, source } => {
                write!(
                    f,
                    "{}: artifact does not serialize: {source}",
                    path.display()
                )
            }
            ArtifactError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ArtifactError::Parse { path, source } => {
                write!(f, "{}: not a valid artifact: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Serialize { source, .. } | ArtifactError::Parse { source, .. } => {
                Some(source)
            }
            ArtifactError::Io { source, .. } => Some(source),
        }
    }
}

/// One serialized external module inside an artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExternalBlob {
    /// Global symbol.
    pub symbol: String,
    /// Producing compiler (selects the loader).
    pub compiler: String,
    /// Opaque serialized payload.
    pub payload: serde_json::Value,
}

/// The exported library: everything a runtime-only device needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Artifact {
    /// Artifact format version.
    pub version: u32,
    /// The lowered host graph (with params embedded).
    pub graph: ExecutorGraph,
    /// Serialized external modules.
    pub externals: Vec<ExternalBlob>,
}

impl Artifact {
    /// Bundle a lowered graph with its linked external modules.
    pub fn export(graph: &ExecutorGraph, modules: &[&dyn ExternalModule]) -> Artifact {
        let externals = modules
            .iter()
            .map(|m| ExternalBlob {
                symbol: m.symbol().to_string(),
                compiler: m.compiler().to_string(),
                payload: m.serialize(),
            })
            .collect();
        Artifact {
            version: 1,
            graph: graph.clone(),
            externals,
        }
    }

    /// Write to disk (the `export_library` call of Listing 6).
    pub fn export_library(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self).map_err(|source| ArtifactError::Serialize {
            path: path.to_path_buf(),
            source,
        })?;
        std::fs::write(path, json).map_err(|source| ArtifactError::Io {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Read back from disk.
    pub fn load_library(path: impl AsRef<Path>) -> Result<Artifact, ArtifactError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|source| ArtifactError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        serde_json::from_str(&json).map_err(|source| ArtifactError::Parse {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Artifact size in bytes when serialized (model-size discussions of
    /// §4.2 — quantized models produce much smaller artifacts).
    pub fn size_bytes(&self) -> usize {
        serde_json::to_string(self).map(|s| s.len()).unwrap_or(0)
    }
}

/// Deserializer for one compiler's external modules.
pub type ModuleLoader =
    Box<dyn Fn(&str, &serde_json::Value) -> Result<Box<dyn ExternalModule>, String> + Send + Sync>;

/// Compiler name → loader. The runtime-only side of the BYOC contract.
#[derive(Default)]
pub struct LoaderRegistry {
    loaders: HashMap<String, ModuleLoader>,
}

impl LoaderRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        LoaderRegistry::default()
    }

    /// Register a loader for `compiler`.
    pub fn register(&mut self, compiler: impl Into<String>, loader: ModuleLoader) {
        self.loaders.insert(compiler.into(), loader);
    }

    /// Instantiate every external module of an artifact.
    pub fn load_all(&self, artifact: &Artifact) -> Result<ModuleRegistry, String> {
        let mut registry = ModuleRegistry::new();
        for blob in &artifact.externals {
            let loader = self
                .loaders
                .get(&blob.compiler)
                .ok_or_else(|| format!("no runtime loader for compiler '{}'", blob.compiler))?;
            registry.register(loader(&blob.symbol, &blob.payload)?);
        }
        Ok(registry)
    }
}

/// A simulated Android phone: it owns a runtime (loaders + cost model) but
/// no compiler, mirroring §4.5's "the only thing we need to build from TVM
/// is the TVM runtime".
pub struct AndroidDevice {
    /// Device name for logs.
    pub name: String,
    loaders: LoaderRegistry,
    cost: CostModel,
}

impl AndroidDevice {
    /// New device with the given runtime loaders.
    pub fn new(name: impl Into<String>, loaders: LoaderRegistry, cost: CostModel) -> Self {
        AndroidDevice {
            name: name.into(),
            loaders,
            cost,
        }
    }

    /// Load a pushed artifact into a ready executor.
    pub fn load(&self, artifact: &Artifact) -> Result<GraphExecutor, ExecError> {
        let modules = self.loaders.load_all(artifact).map_err(ExecError::new)?;
        GraphExecutor::new(artifact.graph.clone(), modules, self.cost.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::test_support::NegateModule;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{call_global, var, Function, Module};
    use tvmnp_relay::TensorType;
    use tvmnp_tensor::Tensor;

    fn partitioned_module() -> Module {
        let x = var("x", TensorType::f32([2]));
        let y = call_global("nir_0", vec![x.clone()]);
        let px = var("p", TensorType::f32([2]));
        let ext = Function::new(vec![px.clone()], builder::relu(px)).with_attr("Compiler", "fake");
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        m
    }

    fn fake_loaders() -> LoaderRegistry {
        let mut l = LoaderRegistry::new();
        l.register(
            "fake",
            Box::new(|_sym, payload| {
                let symbol = payload["symbol"]
                    .as_str()
                    .ok_or("missing symbol")?
                    .to_string();
                let time_us = payload["time_us"].as_f64().ok_or("missing time")?;
                Ok(Box::new(NegateModule { symbol, time_us }) as Box<dyn ExternalModule>)
            }),
        );
        l
    }

    #[test]
    fn export_load_run_roundtrip() {
        let m = partitioned_module();
        let graph = ExecutorGraph::build(&m).unwrap();
        let module = NegateModule {
            symbol: "nir_0".into(),
            time_us: 7.0,
        };
        let artifact = Artifact::export(&graph, &[&module]);

        let dir = std::env::temp_dir().join("tvmnp_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lib.json");
        artifact.export_library(&path).unwrap();
        let loaded = Artifact::load_library(&path).unwrap();
        assert_eq!(loaded.version, 1);
        assert_eq!(loaded.externals.len(), 1);

        let phone = AndroidDevice::new("oppo-reno4z", fake_loaders(), CostModel::default());
        let mut ex = phone.load(&loaded).unwrap();
        ex.set_input("x", Tensor::from_f32([2], vec![3.0, -4.0]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.get_output(0).unwrap().as_f32().unwrap(), &[-3.0, 4.0]);
    }

    #[test]
    fn missing_loader_fails() {
        let m = partitioned_module();
        let graph = ExecutorGraph::build(&m).unwrap();
        let module = NegateModule {
            symbol: "nir_0".into(),
            time_us: 7.0,
        };
        let artifact = Artifact::export(&graph, &[&module]);
        let phone = AndroidDevice::new("bare", LoaderRegistry::new(), CostModel::default());
        assert!(phone.load(&artifact).is_err());
    }

    #[test]
    fn artifact_size_reported() {
        let m = partitioned_module();
        let graph = ExecutorGraph::build(&m).unwrap();
        let artifact = Artifact::export(&graph, &[]);
        assert!(artifact.size_bytes() > 0);
    }

    #[test]
    fn load_errors_name_the_file() {
        let missing = std::env::temp_dir().join("tvmnp_artifact_test_missing.json");
        let err = Artifact::load_library(&missing).unwrap_err();
        assert!(matches!(err, ArtifactError::Io { .. }));
        assert!(err.to_string().contains("tvmnp_artifact_test_missing.json"));

        let garbled = std::env::temp_dir().join("tvmnp_artifact_test_garbled.json");
        std::fs::write(&garbled, "{not json").unwrap();
        let err = Artifact::load_library(&garbled).unwrap_err();
        assert!(matches!(err, ArtifactError::Parse { .. }));
        assert!(err.to_string().contains("not a valid artifact"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
