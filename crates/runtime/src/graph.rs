//! Lowering a Relay module into a flat executor graph.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::expr::{CallTarget, ExprKind, Module};
use tvmnp_relay::infer::infer_types;
use tvmnp_relay::passes::fuse_analysis;
use tvmnp_relay::visit::topo_order;
use tvmnp_relay::{OpKind, TensorType, Type};
use tvmnp_tensor::Tensor;

/// Reference to one output of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeRef {
    /// Producing node index.
    pub node: usize,
    /// Which of its outputs.
    pub output: usize,
}

/// Executor node payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeKind {
    /// A named graph input.
    Input {
        /// Input name (for `set_input`).
        name: String,
    },
    /// A weight/constant, stored in the artifact's param table.
    Param {
        /// Index into [`ExecutorGraph::params`].
        index: usize,
    },
    /// A host-side primitive op, executed by TVM codegen.
    Op {
        /// Operator and attributes.
        op: OpKind,
        /// Argument references.
        inputs: Vec<NodeRef>,
        /// Fusion group id (nodes sharing a group dispatch as one kernel).
        group: usize,
    },
    /// A call into an external (BYOC) module.
    External {
        /// Global symbol of the external module.
        symbol: String,
        /// Argument references.
        inputs: Vec<NodeRef>,
    },
}

/// One node with its checked output types.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphNode {
    /// Payload.
    pub kind: NodeKind,
    /// Output types (usually one; external calls may produce several).
    pub out_types: Vec<TensorType>,
}

/// The flat executor graph — the analogue of TVM's `graph.json` +
/// `params` pair.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct ExecutorGraph {
    /// Nodes in execution order.
    pub nodes: Vec<GraphNode>,
    /// Graph outputs.
    pub outputs: Vec<NodeRef>,
    /// Weight table referenced by `NodeKind::Param`.
    pub params: Vec<Tensor>,
    /// Input name → node index.
    pub input_index: HashMap<String, usize>,
}

/// Failure while lowering a module to an executor graph.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

impl ExecutorGraph {
    /// Lower the `main` function of a (possibly partitioned) module.
    ///
    /// External functions are *not* lowered here — they are compiled by
    /// their external codegen and linked at executor construction, matching
    /// the BYOC build flow.
    pub fn build(module: &Module) -> Result<Self, BuildError> {
        let types = infer_types(module).map_err(|e| BuildError(e.to_string()))?;
        let main = module.main();
        let groups = fuse_analysis(&main.body);
        let group_of: HashMap<usize, usize> = groups
            .iter()
            .enumerate()
            .flat_map(|(gi, g)| g.members.iter().map(move |&m| (m, gi)))
            .collect();

        let mut g = ExecutorGraph::default();
        // expr id -> its output refs
        let mut refs: HashMap<usize, Vec<NodeRef>> = HashMap::new();

        fn add_node(g: &mut ExecutorGraph, kind: NodeKind, out_types: Vec<TensorType>) -> usize {
            g.nodes.push(GraphNode { kind, out_types });
            g.nodes.len() - 1
        }

        for p in &main.params {
            if let ExprKind::Var(v) = &p.kind {
                let idx = add_node(
                    &mut g,
                    NodeKind::Input {
                        name: v.name.clone(),
                    },
                    vec![v.ty.clone()],
                );
                g.input_index.insert(v.name.clone(), idx);
                refs.insert(
                    p.id,
                    vec![NodeRef {
                        node: idx,
                        output: 0,
                    }],
                );
            } else {
                return Err(BuildError("main parameter is not a Var".into()));
            }
        }

        for e in topo_order(&main.body) {
            if refs.contains_key(&e.id) {
                continue;
            }
            let out = match &e.kind {
                ExprKind::Var(v) => {
                    return Err(BuildError(format!("free variable '{}'", v.name)));
                }
                ExprKind::Constant(c) => {
                    g.params.push(c.value.clone());
                    let param_index = g.params.len() - 1;
                    let tt = TensorType::new(c.value.shape().clone(), c.value.dtype());
                    let idx = add_node(&mut g, NodeKind::Param { index: param_index }, vec![tt]);
                    vec![NodeRef {
                        node: idx,
                        output: 0,
                    }]
                }
                ExprKind::Tuple(fields) => {
                    let mut rs = Vec::new();
                    for f in fields {
                        rs.extend(refs[&f.id].clone());
                    }
                    rs
                }
                ExprKind::TupleGetItem(t, i) => {
                    let rs = &refs[&t.id];
                    vec![*rs
                        .get(*i)
                        .ok_or_else(|| BuildError(format!("tuple index {i} out of range")))?]
                }
                ExprKind::Call(c) => {
                    let mut inputs = Vec::with_capacity(c.args.len());
                    for a in &c.args {
                        let rs = &refs[&a.id];
                        if rs.len() != 1 {
                            return Err(BuildError("tuple-valued call argument".into()));
                        }
                        inputs.push(rs[0]);
                    }
                    match &c.target {
                        CallTarget::Op(op) => {
                            let tt = types[&e.id]
                                .tensor()
                                .ok_or_else(|| BuildError(format!("{} yields tuple", op.name())))?
                                .clone();
                            let group = group_of.get(&e.id).copied().unwrap_or(usize::MAX);
                            let idx = add_node(
                                &mut g,
                                NodeKind::Op {
                                    op: op.clone(),
                                    inputs,
                                    group,
                                },
                                vec![tt],
                            );
                            vec![NodeRef {
                                node: idx,
                                output: 0,
                            }]
                        }
                        CallTarget::Global(symbol) => {
                            let out_types: Vec<TensorType> = match &types[&e.id] {
                                Type::Tensor(t) => vec![t.clone()],
                                Type::Tuple(ts) => ts
                                    .iter()
                                    .map(|t| {
                                        t.tensor().cloned().ok_or_else(|| {
                                            BuildError("nested tuple external output".into())
                                        })
                                    })
                                    .collect::<Result<_, _>>()?,
                            };
                            let n = out_types.len();
                            let idx = add_node(
                                &mut g,
                                NodeKind::External {
                                    symbol: symbol.clone(),
                                    inputs,
                                },
                                out_types,
                            );
                            (0..n)
                                .map(|k| NodeRef {
                                    node: idx,
                                    output: k,
                                })
                                .collect()
                        }
                    }
                }
            };
            refs.insert(e.id, out);
        }

        g.outputs = refs[&main.body.id].clone();
        Ok(g)
    }

    /// Names of external symbols this graph calls.
    pub fn external_symbols(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::External { symbol, .. } => Some(symbol.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Number of host-side op nodes.
    pub fn num_host_ops(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Op { .. }))
            .count()
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> usize {
        self.params.iter().map(Tensor::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{call_global, var, Function};
    use tvmnp_relay::Conv2dAttrs;
    use tvmnp_tensor::rng::TensorRng;

    #[test]
    fn lowers_plain_cnn() {
        let mut rng = TensorRng::new(1);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        assert_eq!(g.num_host_ops(), 2);
        assert_eq!(g.params.len(), 1);
        assert!(g.input_index.contains_key("x"));
        assert_eq!(g.outputs.len(), 1);
        // conv+relu share a fusion group.
        let groups: Vec<usize> = g
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Op { group, .. } => Some(*group),
                _ => None,
            })
            .collect();
        assert_eq!(groups[0], groups[1]);
    }

    #[test]
    fn lowers_external_call() {
        let px = var("p", TensorType::f32([1, 4]));
        let ext =
            Function::new(vec![px.clone()], builder::relu(px)).with_attr("Compiler", "neuropilot");
        let x = var("x", TensorType::f32([1, 4]));
        let y = call_global("neuropilot_0", vec![x.clone()]);
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("neuropilot_0".into(), ext);
        let g = ExecutorGraph::build(&m).unwrap();
        assert_eq!(g.external_symbols(), vec!["neuropilot_0"]);
        assert_eq!(g.num_host_ops(), 0);
    }

    #[test]
    fn serializes_roundtrip() {
        let x = var("x", TensorType::f32([2, 2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let s = serde_json::to_string(&g).unwrap();
        let back: ExecutorGraph = serde_json::from_str(&s).unwrap();
        assert_eq!(back.nodes.len(), g.nodes.len());
        assert_eq!(back.outputs, g.outputs);
    }
}
