//! # tvmnp-runtime
//!
//! The TVM-side runtime of the reproduction: graph executor, storage
//! planning, module system and deployable artifacts.
//!
//! TVM's stack splits into *compiler* and *runtime* (paper §4.5): models
//! are compiled on the server with `relay.build`, exported with
//! `lib.export_library(...)`, and executed on the phone by the runtime
//! alone. This crate is that runtime:
//!
//! * [`graph`] — lowering a (possibly partitioned) Relay module into a
//!   flat executor graph: input/param/op/external-call nodes with checked
//!   output types, plus fusion groups for dispatch accounting;
//! * [`executor`] — the `GraphModule` equivalent: `set_input` / `run` /
//!   `get_output`, executing host ops with TVM-untuned kernels on the
//!   simulated mobile CPU and delegating external calls to linked
//!   [`module::ExternalModule`]s (the BYOC runtime linkage);
//! * [`memory`] — the storage planner (TVM's `GraphPlanMemory`): greedy
//!   buffer reuse with liveness, reported as slot assignments + peak bytes;
//! * [`artifact`] — `export_library` / load: a serialized artifact that a
//!   compiler-less [`artifact::AndroidDevice`] can load and run, which is
//!   how the paper deploys to the phone.

pub mod artifact;
pub mod executor;
pub mod graph;
pub mod memory;
pub mod module;
pub mod work;

pub use artifact::{AndroidDevice, Artifact, ArtifactError, LoaderRegistry};
pub use executor::{ExecContext, ExecError, ExecErrorKind, GraphExecutor, NodeCost, RunOptions};
pub use graph::{ExecutorGraph, GraphNode, NodeKind, NodeRef};
pub use memory::{plan_memory, MemoryPlan};
pub use module::{ExternalModule, ModuleRegistry};
