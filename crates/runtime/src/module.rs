//! External runtime modules — the BYOC linkage.
//!
//! A partitioned Relay module calls global functions compiled by an
//! external compiler. At runtime those become [`ExternalModule`]s linked
//! into the graph executor, exactly like TVM imports external
//! `runtime::Module`s produced by a BYOC codegen.

use std::collections::HashMap;
use std::fmt;
use tvmnp_hwsim::{DeviceKind, KernelClass, WorkKind};
use tvmnp_tensor::Tensor;

/// One internal kernel (or overhead item) of an external module, for
/// measured-profile collection. Unlike the per-device shares of
/// [`ExternalModule::estimate_device_us`], entries keep the work kind
/// and kernel class, carry an energy estimate, and pair the charged
/// time with the *unscaled* analytic prediction — the reference the
/// calibration layer fits residuals against.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Human label (op name or overhead kind, e.g. `conv2d`, `dispatch`).
    pub label: String,
    /// Work category of the kernel.
    pub kind: WorkKind,
    /// Device the time is charged to.
    pub device: DeviceKind,
    /// Kernel provenance (untuned TVM vs vendor-tuned).
    pub class: KernelClass,
    /// Charged simulated time, µs (includes any injected scaling).
    pub us: f64,
    /// Analytic prediction with every injected multiplier removed, µs.
    pub analytic_us: f64,
    /// Estimated energy, µJ.
    pub energy_uj: f64,
}

/// Error from an external module invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleError(pub String);

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "external module error: {}", self.0)
    }
}

impl std::error::Error for ModuleError {}

/// A compiled external subgraph, callable from the graph executor.
pub trait ExternalModule: Send + Sync {
    /// Global symbol this module implements (e.g. `neuropilot_0`).
    fn symbol(&self) -> &str;

    /// Name of the compiler that produced it (e.g. `neuropilot`).
    fn compiler(&self) -> &str;

    /// The physical device a dispatch of this module enters through —
    /// what a fault plan targets and what boundary transfers and error
    /// labels are charged to. A CPU-policy Neuron module survives an APU
    /// device-lost plan because it never enters the APU driver.
    fn dispatch_device(&self) -> DeviceKind {
        DeviceKind::Cpu
    }

    /// Per-device shares of [`ExternalModule::estimate_time_us`], for
    /// cost attribution. The default charges everything to the dispatch
    /// device; modules whose internal plan spans several devices (e.g. a
    /// CPU+APU Neuron plan) override this with the planned split. Shares
    /// must sum to `estimate_time_us`.
    fn estimate_device_us(&self) -> Vec<(DeviceKind, f64)> {
        vec![(self.dispatch_device(), self.estimate_time_us())]
    }

    /// Execute on positional inputs; returns outputs and the simulated
    /// on-device time in microseconds.
    fn run(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, f64), ModuleError>;

    /// Simulated execution time, input-independent (static shapes).
    fn estimate_time_us(&self) -> f64;

    /// Simulated execution energy in microjoules (0 when the module does
    /// not model energy).
    fn estimate_energy_uj(&self) -> f64 {
        0.0
    }

    /// Per-internal-kernel attribution for measured-profile collection,
    /// summing exactly to [`ExternalModule::estimate_time_us`]. Default
    /// is empty: the module opts out of fine-grained profiling and its
    /// aggregate node span (which carries no work kind) is skipped by
    /// the profile ingester rather than mis-binned.
    fn kernel_profile(&self) -> Vec<KernelProfile> {
        Vec::new()
    }

    /// Serialize for embedding into a deployable artifact.
    fn serialize(&self) -> serde_json::Value;
}

/// Symbol → module map linked into an executor.
#[derive(Default)]
pub struct ModuleRegistry {
    modules: HashMap<String, Box<dyn ExternalModule>>,
}

impl ModuleRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ModuleRegistry::default()
    }

    /// Link a module under its symbol.
    pub fn register(&mut self, module: Box<dyn ExternalModule>) {
        self.modules.insert(module.symbol().to_string(), module);
    }

    /// Look up by symbol.
    pub fn get(&self, symbol: &str) -> Option<&dyn ExternalModule> {
        self.modules.get(symbol).map(|b| b.as_ref())
    }

    /// Registered symbols.
    pub fn symbols(&self) -> Vec<&str> {
        self.modules.keys().map(String::as_str).collect()
    }

    /// Number of linked modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether no modules are linked.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

impl fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModuleRegistry")
            .field("symbols", &self.symbols())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A fake external module that negates its single input.
    pub struct NegateModule {
        pub symbol: String,
        pub time_us: f64,
    }

    impl ExternalModule for NegateModule {
        fn symbol(&self) -> &str {
            &self.symbol
        }

        fn compiler(&self) -> &str {
            "fake"
        }

        fn run(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, f64), ModuleError> {
            let x = inputs[0].as_f32().map_err(|e| ModuleError(e.to_string()))?;
            let out: Vec<f32> = x.iter().map(|v| -v).collect();
            let t = Tensor::from_f32(inputs[0].shape().clone(), out)
                .map_err(|e| ModuleError(e.to_string()))?;
            Ok((vec![t], self.time_us))
        }

        fn estimate_time_us(&self) -> f64 {
            self.time_us
        }

        fn serialize(&self) -> serde_json::Value {
            serde_json::json!({ "symbol": self.symbol, "time_us": self.time_us })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::NegateModule;
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let mut r = ModuleRegistry::new();
        assert!(r.is_empty());
        r.register(Box::new(NegateModule {
            symbol: "nir_0".into(),
            time_us: 5.0,
        }));
        assert_eq!(r.len(), 1);
        let m = r.get("nir_0").unwrap();
        assert_eq!(m.compiler(), "fake");
        let (outs, t) = m
            .run(&[Tensor::from_f32([2], vec![1.0, -2.0]).unwrap()])
            .unwrap();
        assert_eq!(outs[0].as_f32().unwrap(), &[-1.0, 2.0]);
        assert_eq!(t, 5.0);
        assert!(r.get("missing").is_none());
    }
}
