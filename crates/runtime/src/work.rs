//! Work estimation for host-side (TVM codegen) ops.

use tvmnp_hwsim::{WorkItem, WorkKind};
use tvmnp_relay::{OpKind, TensorType};

/// Estimate the device-neutral work of one Relay op given its argument and
/// output types. Mirrors `tvmnp_neuropilot::runtime::work_item` so both
/// runtimes charge comparable costs for comparable kernels.
pub fn relay_work_item(op: &OpKind, args: &[&TensorType], out: &TensorType) -> WorkItem {
    let out_elems = out.shape.num_elements() as u64;
    let bytes_in: u64 = args.iter().map(|t| t.size_bytes() as u64).sum();
    let bytes_out = out.size_bytes() as u64;
    let int8 = out.dtype.is_quantized()
        || args
            .first()
            .map(|t| t.dtype.is_quantized())
            .unwrap_or(false);
    let (macs, kind) = match op {
        OpKind::Conv2d(_) | OpKind::QnnConv2d(_) => {
            let w = args.get(1).expect("conv has a weight argument");
            let wd = w.shape.dims();
            (
                out_elems * (wd[1] * wd[2] * wd[3]) as u64,
                WorkKind::MacHeavy,
            )
        }
        OpKind::Dense | OpKind::QnnDense(_) => {
            let w = args.get(1).expect("dense has a weight argument");
            (out_elems * w.shape.dims()[1] as u64, WorkKind::MacHeavy)
        }
        OpKind::MaxPool2d(a) | OpKind::AvgPool2d(a) => (
            out_elems * (a.kernel.0 * a.kernel.1) as u64,
            WorkKind::Reduction,
        ),
        OpKind::GlobalAvgPool2d | OpKind::Mean(_) => {
            let x = args.first().expect("reduction has an input");
            (x.shape.num_elements() as u64, WorkKind::Reduction)
        }
        OpKind::Softmax | OpKind::LogSoftmax => (4 * out_elems, WorkKind::Reduction),
        OpKind::BatchNorm(_) => (2 * out_elems, WorkKind::Elementwise),
        OpKind::Reshape(_)
        | OpKind::Transpose(_)
        | OpKind::Concatenate(_)
        | OpKind::QnnConcatenate(_)
        | OpKind::Pad(_)
        | OpKind::StridedSlice(_)
        | OpKind::BatchFlatten
        | OpKind::Dropout => (0, WorkKind::DataMovement),
        OpKind::Resize2d(a) => {
            let per = if a.bilinear { 8 } else { 1 };
            (per * out_elems, WorkKind::Elementwise)
        }
        _ => (out_elems, WorkKind::Elementwise),
    };
    WorkItem {
        macs,
        bytes_in,
        bytes_out,
        int8,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::Conv2dAttrs;
    use tvmnp_tensor::DType;

    #[test]
    fn conv_macs() {
        let x = TensorType::f32([1, 3, 8, 8]);
        let w = TensorType::f32([16, 3, 3, 3]);
        let out = TensorType::f32([1, 16, 8, 8]);
        let wi = relay_work_item(&OpKind::Conv2d(Conv2dAttrs::same(1)), &[&x, &w], &out);
        assert_eq!(wi.macs, (16 * 64) as u64 * 27);
        assert_eq!(wi.kind, WorkKind::MacHeavy);
    }

    #[test]
    fn int8_detected_from_args() {
        let x = TensorType::new([1, 4], DType::U8);
        let out = TensorType::new([1, 4], DType::U8);
        let wi = relay_work_item(&OpKind::Relu, &[&x], &out);
        assert!(wi.int8);
        assert_eq!(wi.kind, WorkKind::Elementwise);
    }

    #[test]
    fn data_movement_zero_macs() {
        let x = TensorType::f32([2, 8]);
        let out = TensorType::f32([4, 4]);
        let wi = relay_work_item(
            &OpKind::Reshape(tvmnp_relay::ReshapeAttrs {
                new_shape: vec![4, 4],
            }),
            &[&x],
            &out,
        );
        assert_eq!(wi.macs, 0);
        assert_eq!(wi.kind, WorkKind::DataMovement);
        assert!(wi.bytes() > 0);
    }
}
