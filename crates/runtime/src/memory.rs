//! The storage planner — TVM's `GraphPlanMemory`.
//!
//! Assigns each op/external output a storage slot, greedily reusing slots
//! whose producing value is dead. Inputs and params live in their own
//! pinned storage. The planner reports slot assignments and peak bytes —
//! the number that decides whether a model fits a phone's memory budget.

use crate::graph::{ExecutorGraph, NodeKind, NodeRef};
use std::collections::HashMap;

/// Result of memory planning.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Storage slot per intermediate value.
    pub slot_of: HashMap<NodeRef, usize>,
    /// Size of each slot in bytes.
    pub slot_bytes: Vec<usize>,
    /// Peak transient memory: the maximum, over execution steps, of the
    /// total bytes of slots holding a live value at that step. This is the
    /// number that decides whether a model fits a phone's memory budget.
    pub peak_bytes: usize,
    /// Total pool size (sum of all slot sizes) — what the greedy planner
    /// actually reserves. Always `>= peak_bytes`; the gap is reuse slack.
    pub pool_bytes: usize,
}

/// Plan storage for a lowered graph.
pub fn plan_memory(graph: &ExecutorGraph) -> MemoryPlan {
    // Reference counts: how many later uses each value has.
    let mut refcount: HashMap<NodeRef, usize> = HashMap::new();
    for node in &graph.nodes {
        let inputs = match &node.kind {
            NodeKind::Op { inputs, .. } | NodeKind::External { inputs, .. } => inputs.as_slice(),
            _ => &[],
        };
        for r in inputs {
            *refcount.entry(*r).or_insert(0) += 1;
        }
    }
    for r in &graph.outputs {
        *refcount.entry(*r).or_insert(0) += 1;
    }

    let mut slot_bytes: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new(); // free slot indices
    let mut slot_of: HashMap<NodeRef, usize> = HashMap::new();
    let mut live_refs: HashMap<NodeRef, usize> = HashMap::new(); // value -> remaining uses

    for (idx, node) in graph.nodes.iter().enumerate() {
        let (inputs, produces): (&[NodeRef], usize) = match &node.kind {
            NodeKind::Op { inputs, .. } => (inputs.as_slice(), 1),
            NodeKind::External { inputs, .. } => (inputs.as_slice(), node.out_types.len()),
            // Inputs/params are pinned outside the transient pool.
            _ => (&[], 0),
        };
        // Allocate outputs: best-fit from the free list, else a new slot.
        for k in 0..produces {
            let r = NodeRef {
                node: idx,
                output: k,
            };
            let need = node.out_types[k].size_bytes();
            let fit = free
                .iter()
                .enumerate()
                .filter(|(_, &s)| slot_bytes[s] >= need)
                .min_by_key(|(_, &s)| slot_bytes[s])
                .map(|(i, _)| i);
            let slot = match fit {
                Some(i) => free.swap_remove(i),
                None => {
                    slot_bytes.push(need);
                    slot_bytes.len() - 1
                }
            };
            slot_of.insert(r, slot);
            live_refs.insert(r, refcount.get(&r).copied().unwrap_or(0));
            // A value nobody consumes dies immediately.
            if live_refs[&r] == 0 {
                free.push(slot);
            }
        }
        // Release inputs whose last use this was.
        for r in inputs {
            if let Some(c) = live_refs.get_mut(r) {
                *c -= 1;
                if *c == 0 {
                    if let Some(&s) = slot_of.get(r) {
                        free.push(s);
                    }
                }
            }
        }
    }

    let pool_bytes = slot_bytes.iter().sum();
    let peak_bytes = peak_live_bytes(graph, &slot_of, &slot_bytes);
    MemoryPlan {
        slot_of,
        slot_bytes,
        peak_bytes,
        pool_bytes,
    }
}

/// Max over execution steps of the bytes of slots holding a live value.
///
/// A value is live after step `t` when it was produced at or before `t`
/// and still has a consumer after `t` (graph outputs stay live to the
/// end); a value is also live at its own production step even if nothing
/// consumes it, because its buffer is written during that step. Slots are
/// counted once per step no matter how many values map to them.
fn peak_live_bytes(
    graph: &ExecutorGraph,
    slot_of: &HashMap<NodeRef, usize>,
    slot_bytes: &[usize],
) -> usize {
    let mut last_use: HashMap<NodeRef, usize> = HashMap::new();
    for (idx, node) in graph.nodes.iter().enumerate() {
        let inputs = match &node.kind {
            NodeKind::Op { inputs, .. } | NodeKind::External { inputs, .. } => inputs.as_slice(),
            _ => &[],
        };
        for r in inputs {
            last_use.insert(*r, idx);
        }
    }
    for r in &graph.outputs {
        last_use.insert(*r, graph.nodes.len());
    }
    let mut peak = 0usize;
    let mut live_slots: Vec<bool> = vec![false; slot_bytes.len()];
    for t in 0..graph.nodes.len() {
        live_slots.iter_mut().for_each(|s| *s = false);
        for (r, &slot) in slot_of {
            let produced = r.node;
            let dies = last_use.get(r).copied().unwrap_or(produced);
            if (produced <= t && t < dies) || produced == t {
                live_slots[slot] = true;
            }
        }
        let live: usize = live_slots
            .iter()
            .zip(slot_bytes)
            .filter_map(|(&l, &b)| l.then_some(b))
            .sum();
        peak = peak.max(live);
    }
    peak
}

impl MemoryPlan {
    /// Verify no two simultaneously-live values share a slot. Liveness is
    /// re-derived from the graph; returns the first conflict found.
    pub fn check_no_alias(&self, graph: &ExecutorGraph) -> Option<(NodeRef, NodeRef)> {
        // A value is live from its producing node until its last consumer.
        let mut last_use: HashMap<NodeRef, usize> = HashMap::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            let inputs = match &node.kind {
                NodeKind::Op { inputs, .. } | NodeKind::External { inputs, .. } => {
                    inputs.as_slice()
                }
                _ => &[],
            };
            for r in inputs {
                last_use.insert(*r, idx);
            }
        }
        for r in &graph.outputs {
            last_use.insert(*r, graph.nodes.len());
        }
        let refs: Vec<&NodeRef> = self.slot_of.keys().collect();
        for (i, a) in refs.iter().enumerate() {
            for b in refs.iter().skip(i + 1) {
                if self.slot_of[a] != self.slot_of[b] {
                    continue;
                }
                let (a_start, b_start) = (a.node, b.node);
                let a_end = last_use.get(a).copied().unwrap_or(a.node);
                let b_end = last_use.get(b).copied().unwrap_or(b.node);
                // Live intervals (start, end]: overlap when each starts
                // strictly before the other ends.
                if a_start < b_end && b_start < a_end {
                    return Some((**a, **b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function, Module};
    use tvmnp_relay::TensorType;

    fn chain(n: usize) -> ExecutorGraph {
        let x = var("x", TensorType::f32([64]));
        let mut e = x.clone();
        for _ in 0..n {
            e = builder::relu(e);
        }
        ExecutorGraph::build(&Module::from_main(Function::new(vec![x], e))).unwrap()
    }

    #[test]
    fn chain_reuses_two_slots() {
        let g = chain(10);
        let plan = plan_memory(&g);
        // Ping-pong between two buffers regardless of depth.
        assert!(
            plan.slot_bytes.len() <= 2,
            "got {} slots",
            plan.slot_bytes.len()
        );
        assert!(plan.check_no_alias(&g).is_none());
    }

    #[test]
    fn diamond_needs_extra_slot() {
        let x = var("x", TensorType::f32([64]));
        let a = builder::relu(x.clone());
        let b = builder::sigmoid(a.clone());
        let c = builder::add(a.clone(), b); // `a` stays live across `b`
        let g = ExecutorGraph::build(&Module::from_main(Function::new(vec![x], c))).unwrap();
        let plan = plan_memory(&g);
        assert!(plan.slot_bytes.len() >= 2);
        assert!(plan.check_no_alias(&g).is_none());
    }

    #[test]
    fn peak_bytes_positive_and_bounded() {
        // On a chain the planner ping-pongs two slots (pool = 2 buffers),
        // but only one value crosses any step boundary: the true live peak
        // is a single buffer, strictly below the pool size.
        let g = chain(5);
        let plan = plan_memory(&g);
        assert_eq!(plan.peak_bytes, 64 * 4, "one live buffer at a time");
        assert_eq!(plan.pool_bytes, 2 * 64 * 4, "two slots reserved");
        assert!(
            plan.peak_bytes < plan.pool_bytes,
            "peak must report live bytes, not pool size"
        );
    }

    #[test]
    fn deep_chain_peak_stays_one_buffer() {
        let g = chain(10);
        let plan = plan_memory(&g);
        assert_eq!(plan.peak_bytes, 64 * 4);
        assert!(plan.peak_bytes < plan.pool_bytes);
    }

    #[test]
    fn diamond_peak_counts_both_live_values() {
        // `a` stays live across `b`: two values genuinely coexist, so the
        // peak equals the pool (no reuse slack to reclaim).
        let x = var("x", TensorType::f32([64]));
        let a = builder::relu(x.clone());
        let b = builder::sigmoid(a.clone());
        let c = builder::add(a.clone(), b);
        let g = ExecutorGraph::build(&Module::from_main(Function::new(vec![x], c))).unwrap();
        let plan = plan_memory(&g);
        assert_eq!(plan.peak_bytes, 2 * 64 * 4);
        assert!(plan.peak_bytes <= plan.pool_bytes);
    }

    #[test]
    fn peak_never_exceeds_pool() {
        for n in 1..12 {
            let plan = plan_memory(&chain(n));
            assert!(plan.peak_bytes <= plan.pool_bytes, "chain({n})");
            assert!(plan.peak_bytes > 0, "chain({n})");
        }
    }

    #[test]
    fn outputs_never_recycled_early() {
        // The graph output must hold a slot to the very end.
        let g = chain(3);
        let plan = plan_memory(&g);
        let out_slot = plan.slot_of[&g.outputs[0]];
        assert!(out_slot < plan.slot_bytes.len());
        assert!(plan.check_no_alias(&g).is_none());
    }
}
