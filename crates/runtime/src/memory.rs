//! The storage planner — TVM's `GraphPlanMemory`.
//!
//! Assigns each op/external output a storage slot, greedily reusing slots
//! whose producing value is dead. Inputs and params live in their own
//! pinned storage. The planner reports slot assignments and peak bytes —
//! the number that decides whether a model fits a phone's memory budget.

use crate::graph::{ExecutorGraph, NodeKind, NodeRef};
use std::collections::HashMap;

/// Result of memory planning.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Storage slot per intermediate value.
    pub slot_of: HashMap<NodeRef, usize>,
    /// Size of each slot in bytes.
    pub slot_bytes: Vec<usize>,
    /// Peak transient memory (sum of slot sizes).
    pub peak_bytes: usize,
}

/// Plan storage for a lowered graph.
pub fn plan_memory(graph: &ExecutorGraph) -> MemoryPlan {
    // Reference counts: how many later uses each value has.
    let mut refcount: HashMap<NodeRef, usize> = HashMap::new();
    for node in &graph.nodes {
        let inputs = match &node.kind {
            NodeKind::Op { inputs, .. } | NodeKind::External { inputs, .. } => inputs.as_slice(),
            _ => &[],
        };
        for r in inputs {
            *refcount.entry(*r).or_insert(0) += 1;
        }
    }
    for r in &graph.outputs {
        *refcount.entry(*r).or_insert(0) += 1;
    }

    let mut slot_bytes: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new(); // free slot indices
    let mut slot_of: HashMap<NodeRef, usize> = HashMap::new();
    let mut live_refs: HashMap<NodeRef, usize> = HashMap::new(); // value -> remaining uses

    for (idx, node) in graph.nodes.iter().enumerate() {
        let (inputs, produces): (&[NodeRef], usize) = match &node.kind {
            NodeKind::Op { inputs, .. } => (inputs.as_slice(), 1),
            NodeKind::External { inputs, .. } => (inputs.as_slice(), node.out_types.len()),
            // Inputs/params are pinned outside the transient pool.
            _ => (&[], 0),
        };
        // Allocate outputs: best-fit from the free list, else a new slot.
        for k in 0..produces {
            let r = NodeRef {
                node: idx,
                output: k,
            };
            let need = node.out_types[k].size_bytes();
            let fit = free
                .iter()
                .enumerate()
                .filter(|(_, &s)| slot_bytes[s] >= need)
                .min_by_key(|(_, &s)| slot_bytes[s])
                .map(|(i, _)| i);
            let slot = match fit {
                Some(i) => free.swap_remove(i),
                None => {
                    slot_bytes.push(need);
                    slot_bytes.len() - 1
                }
            };
            slot_of.insert(r, slot);
            live_refs.insert(r, refcount.get(&r).copied().unwrap_or(0));
            // A value nobody consumes dies immediately.
            if live_refs[&r] == 0 {
                free.push(slot);
            }
        }
        // Release inputs whose last use this was.
        for r in inputs {
            if let Some(c) = live_refs.get_mut(r) {
                *c -= 1;
                if *c == 0 {
                    if let Some(&s) = slot_of.get(r) {
                        free.push(s);
                    }
                }
            }
        }
    }

    let peak_bytes = slot_bytes.iter().sum();
    MemoryPlan {
        slot_of,
        slot_bytes,
        peak_bytes,
    }
}

impl MemoryPlan {
    /// Verify no two simultaneously-live values share a slot. Liveness is
    /// re-derived from the graph; returns the first conflict found.
    pub fn check_no_alias(&self, graph: &ExecutorGraph) -> Option<(NodeRef, NodeRef)> {
        // A value is live from its producing node until its last consumer.
        let mut last_use: HashMap<NodeRef, usize> = HashMap::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            let inputs = match &node.kind {
                NodeKind::Op { inputs, .. } | NodeKind::External { inputs, .. } => {
                    inputs.as_slice()
                }
                _ => &[],
            };
            for r in inputs {
                last_use.insert(*r, idx);
            }
        }
        for r in &graph.outputs {
            last_use.insert(*r, graph.nodes.len());
        }
        let refs: Vec<&NodeRef> = self.slot_of.keys().collect();
        for (i, a) in refs.iter().enumerate() {
            for b in refs.iter().skip(i + 1) {
                if self.slot_of[a] != self.slot_of[b] {
                    continue;
                }
                let (a_start, b_start) = (a.node, b.node);
                let a_end = last_use.get(a).copied().unwrap_or(a.node);
                let b_end = last_use.get(b).copied().unwrap_or(b.node);
                // Live intervals (start, end]: overlap when each starts
                // strictly before the other ends.
                if a_start < b_end && b_start < a_end {
                    return Some((**a, **b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function, Module};
    use tvmnp_relay::TensorType;

    fn chain(n: usize) -> ExecutorGraph {
        let x = var("x", TensorType::f32([64]));
        let mut e = x.clone();
        for _ in 0..n {
            e = builder::relu(e);
        }
        ExecutorGraph::build(&Module::from_main(Function::new(vec![x], e))).unwrap()
    }

    #[test]
    fn chain_reuses_two_slots() {
        let g = chain(10);
        let plan = plan_memory(&g);
        // Ping-pong between two buffers regardless of depth.
        assert!(
            plan.slot_bytes.len() <= 2,
            "got {} slots",
            plan.slot_bytes.len()
        );
        assert!(plan.check_no_alias(&g).is_none());
    }

    #[test]
    fn diamond_needs_extra_slot() {
        let x = var("x", TensorType::f32([64]));
        let a = builder::relu(x.clone());
        let b = builder::sigmoid(a.clone());
        let c = builder::add(a.clone(), b); // `a` stays live across `b`
        let g = ExecutorGraph::build(&Module::from_main(Function::new(vec![x], c))).unwrap();
        let plan = plan_memory(&g);
        assert!(plan.slot_bytes.len() >= 2);
        assert!(plan.check_no_alias(&g).is_none());
    }

    #[test]
    fn peak_bytes_positive_and_bounded() {
        let g = chain(5);
        let plan = plan_memory(&g);
        assert!(plan.peak_bytes >= 64 * 4);
        assert!(plan.peak_bytes <= 2 * 64 * 4);
    }

    #[test]
    fn outputs_never_recycled_early() {
        // The graph output must hold a slot to the very end.
        let g = chain(3);
        let plan = plan_memory(&g);
        let out_slot = plan.slot_of[&g.outputs[0]];
        assert!(out_slot < plan.slot_bytes.len());
        assert!(plan.check_no_alias(&g).is_none());
    }
}
