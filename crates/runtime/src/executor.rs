//! The graph executor — TVM's `GraphModule` (`set_input` / `run` /
//! `get_output`), with simulated-time accounting.

use crate::graph::{ExecutorGraph, NodeKind, NodeRef};
use crate::module::{KernelProfile, ModuleRegistry};
use crate::work::relay_work_item;
use std::collections::{HashMap, HashSet};
use std::fmt;
use tvmnp_hwsim::{CostModel, DeviceKind, FaultInjector, KernelClass, RetryPolicy, WorkKind};
use tvmnp_relay::interp::{eval_op, Value};
use tvmnp_relay::TensorType;
use tvmnp_tensor::Tensor;

/// Where in the graph an executor failure happened.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecContext {
    /// Graph node identifier (e.g. `node#3`) or input/output name.
    pub node: Option<String>,
    /// Relay operator or external symbol being evaluated.
    pub op: Option<String>,
    /// Device the node was charged to (`cpu`, `gpu`, `apu`).
    pub device: Option<String>,
    /// Dispatch attempts made when the failure came from a device fault.
    pub attempt: Option<u32>,
}

/// Broad classification of an executor failure, so resilience layers can
/// tell a retryable device problem from a plain graph error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecErrorKind {
    /// Graph/numeric failure — retrying will not help.
    #[default]
    General,
    /// A device fault survived every retry attempt.
    DeviceFault,
    /// The run's simulated-time budget was exhausted.
    Deadline,
}

/// Executor failure: a message plus structured context identifying the
/// failing node, so callers can report *where* a run died instead of
/// just why. Device-fault failures additionally carry the chain of fault
/// causes observed on the way down ([`ExecError::causes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    message: String,
    // Boxed to keep `Result<_, ExecError>` small on the happy path
    // (clippy::result_large_err).
    context: Box<ExecContext>,
    kind: ExecErrorKind,
    causes: Vec<String>,
}

impl ExecError {
    /// An error with no node context.
    pub fn new(message: impl Into<String>) -> ExecError {
        ExecError {
            message: message.into(),
            context: Box::default(),
            kind: ExecErrorKind::General,
            causes: Vec::new(),
        }
    }

    /// Attach the failing node's identifier.
    pub fn with_node(mut self, node: impl Into<String>) -> ExecError {
        self.context.node = Some(node.into());
        self
    }

    /// Attach the operator or external symbol being evaluated.
    pub fn with_op(mut self, op: impl Into<String>) -> ExecError {
        self.context.op = Some(op.into());
        self
    }

    /// Attach the device the node was charged to.
    pub fn with_device(mut self, device: impl Into<String>) -> ExecError {
        self.context.device = Some(device.into());
        self
    }

    /// Attach the dispatch attempt count of a device-fault failure.
    pub fn with_attempt(mut self, attempt: u32) -> ExecError {
        self.context.attempt = Some(attempt);
        self
    }

    /// Set the failure classification.
    pub fn with_kind(mut self, kind: ExecErrorKind) -> ExecError {
        self.kind = kind;
        self
    }

    /// Append one fault cause to the chain.
    pub fn with_cause(mut self, cause: impl Into<String>) -> ExecError {
        self.causes.push(cause.into());
        self
    }

    /// The bare failure message (without context).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Structured location of the failure.
    pub fn context(&self) -> &ExecContext {
        &self.context
    }

    /// Failure classification.
    pub fn kind(&self) -> ExecErrorKind {
        self.kind
    }

    /// Fault cause chain (oldest first; empty for plain graph errors).
    pub fn causes(&self) -> &[String] {
        &self.causes
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep the historical "executor error: <message>" prefix intact;
        // context renders as an optional suffix.
        write!(f, "executor error: {}", self.message)?;
        let ExecContext {
            node,
            op,
            device,
            attempt,
        } = &*self.context;
        if node.is_some() || op.is_some() || device.is_some() || attempt.is_some() {
            let mut parts = Vec::new();
            if let Some(n) = node {
                parts.push(format!("node {n}"));
            }
            if let Some(o) = op {
                parts.push(format!("op {o}"));
            }
            if let Some(d) = device {
                parts.push(format!("device {d}"));
            }
            if let Some(a) = attempt {
                parts.push(format!("attempt {a}"));
            }
            write!(f, " ({})", parts.join(", "))?;
        }
        if !self.causes.is_empty() {
            write!(f, " [caused by: {}]", self.causes.join("; "))?;
        }
        Ok(())
    }
}

impl std::error::Error for ExecError {}

fn kernel_class_label(class: KernelClass) -> &'static str {
    match class {
        KernelClass::TvmUntuned => "tvm_untuned",
        KernelClass::VendorTuned => "vendor_tuned",
    }
}

/// Profile-detail attributes stamped onto a node span when
/// `tvmnp_telemetry::detail_enabled()` — work kind, energy estimate,
/// and the unscaled analytic reference time the calibration layer fits
/// against. `None` on normal runs keeps spans byte-identical to earlier
/// releases.
struct NodeDetail {
    kind: WorkKind,
    energy_uj: f64,
    analytic_us: f64,
}

/// Emit one detail-gated `executor.kernel` sim span for an internal
/// kernel of an external module. These spans exist only for the profile
/// ingester (which bins on the `kind` arg); the flight-recorder forward
/// filter and the utilization report never see them because detail mode
/// is confined to dedicated profile-collection passes.
fn record_kernel(symbol: &str, start_us: f64, k: &KernelProfile) {
    tvmnp_telemetry::record_sim_span(
        "executor.kernel",
        start_us,
        k.us,
        vec![
            ("op".to_string(), k.label.clone()),
            ("symbol".to_string(), symbol.to_string()),
            ("kind".to_string(), k.kind.name().to_string()),
            ("device".to_string(), k.device.name().to_string()),
            ("class".to_string(), kernel_class_label(k.class).to_string()),
            ("energy_uj".to_string(), format!("{:.6}", k.energy_uj)),
            ("analytic_us".to_string(), format!("{:.6}", k.analytic_us)),
        ],
    );
}

/// Fault-handling knobs for one executor run (see
/// [`GraphExecutor::run_with`]).
pub struct RunOptions<'a> {
    /// Fault source consulted at every device dispatch (`None` = clean
    /// run, identical to [`GraphExecutor::run`]).
    pub injector: Option<&'a FaultInjector>,
    /// Retry/backoff policy for transient dispatch faults.
    pub retry: RetryPolicy,
    /// Simulated-time budget for the whole run, microseconds; exceeding
    /// it aborts with an [`ExecErrorKind::Deadline`] error.
    pub deadline_us: f64,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            injector: None,
            retry: RetryPolicy::default(),
            deadline_us: f64::INFINITY,
        }
    }
}

/// Run the dispatch-retry loop at one dispatch point: consult the
/// injector, charging `wasted_us` of simulated time per failed attempt
/// (the aborted dispatch) plus the policy backoff, emitting a
/// `resilience.retry` span and counter per recovered failure. Returns the
/// attempts consumed, or `Err((attempts, cause))` when a fatal fault or
/// retry exhaustion ends the run.
fn dispatch_with_retry(
    injector: &FaultInjector,
    retry: &RetryPolicy,
    device: DeviceKind,
    wasted_us: f64,
    time_us: &mut f64,
) -> Result<u32, (u32, String)> {
    let mut attempt = 1u32;
    loop {
        match injector.on_dispatch(device, attempt) {
            None => return Ok(attempt),
            Some(fault) if fault.fatal || !retry.allows_retry(attempt) => {
                if tvmnp_telemetry::sink_active() {
                    emit_fault_event(device, attempt, &fault.description, true);
                }
                return Err((attempt, fault.description));
            }
            Some(fault) => {
                let cost = wasted_us + retry.backoff_us(attempt);
                if tvmnp_telemetry::sink_active() {
                    emit_fault_event(device, attempt, &fault.description, false);
                }
                tvmnp_telemetry::record_sim_span(
                    "resilience.retry",
                    *time_us,
                    cost,
                    vec![
                        ("device".into(), device.name().into()),
                        ("attempt".into(), attempt.to_string()),
                        ("cause".into(), fault.description),
                    ],
                );
                tvmnp_telemetry::counter_add("resilience.retries", &[("device", device.name())], 1);
                *time_us += cost;
                attempt += 1;
            }
        }
    }
}

/// Forward one consumed dispatch fault to the installed event sink
/// (flight recorder). `fatal` covers both truly fatal faults and retry
/// budget exhaustion — either way this dispatch point gives up.
fn emit_fault_event(device: DeviceKind, attempt: u32, detail: &str, fatal: bool) {
    tvmnp_telemetry::emit_event(
        "fault.injected",
        vec![
            ("stage".to_string(), "dispatch".to_string()),
            ("device".to_string(), device.name().to_string()),
            ("attempt".to_string(), attempt.to_string()),
            // Free-text description goes under `detail`, which the stats
            // sink does not index — `cause` is reserved for bounded
            // vocabularies so counter cardinality stays finite.
            ("detail".to_string(), detail.to_string()),
            ("fatal".to_string(), fatal.to_string()),
        ],
    );
}

/// One graph node's analytic cost share (see
/// [`GraphExecutor::estimate_breakdown`]). External nodes charge their
/// boundary transfers plus the module's own estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCost {
    /// Index into the executor graph's node list.
    pub index: usize,
    /// Relay operator name, or the external symbol for offloaded nodes.
    pub op: String,
    /// Device label the node is charged to (`cpu`, `gpu`, `apu`).
    pub device: String,
    /// Simulated microseconds attributed to this node.
    pub us: f64,
    /// Whether the node dispatches to an external (BYOC) module.
    pub external: bool,
}

/// The graph executor: owns the graph, linked external modules, bound
/// inputs and computed outputs.
pub struct GraphExecutor {
    graph: ExecutorGraph,
    modules: ModuleRegistry,
    cost: CostModel,
    inputs: HashMap<String, Tensor>,
    values: HashMap<NodeRef, Tensor>,
    last_run_us: Option<f64>,
}

impl GraphExecutor {
    /// Construct from a lowered graph and linked external modules.
    ///
    /// Every external symbol referenced by the graph must be registered —
    /// the same constraint TVM enforces when linking BYOC modules.
    pub fn new(
        graph: ExecutorGraph,
        modules: ModuleRegistry,
        cost: CostModel,
    ) -> Result<Self, ExecError> {
        for sym in graph.external_symbols() {
            if modules.get(sym).is_none() {
                return Err(
                    ExecError::new(format!("external symbol '{sym}' is not linked")).with_op(sym),
                );
            }
        }
        Ok(GraphExecutor {
            graph,
            modules,
            cost,
            inputs: HashMap::new(),
            values: HashMap::new(),
            last_run_us: None,
        })
    }

    /// Bind a named input (TVM `m.set_input`).
    pub fn set_input(&mut self, name: &str, value: Tensor) -> Result<(), ExecError> {
        let &idx = self
            .graph
            .input_index
            .get(name)
            .ok_or_else(|| ExecError::new(format!("unknown input '{name}'")).with_node(name))?;
        let expect = &self.graph.nodes[idx].out_types[0];
        if value.shape() != &expect.shape || value.dtype() != expect.dtype {
            return Err(ExecError::new(format!(
                "input '{name}' expects {} {}, got {} {}",
                expect.shape,
                expect.dtype,
                value.shape(),
                value.dtype()
            ))
            .with_node(name));
        }
        self.inputs.insert(name.to_string(), value);
        Ok(())
    }

    /// Execute the graph (TVM `m.run`). Returns the simulated time in
    /// microseconds.
    pub fn run(&mut self) -> Result<f64, ExecError> {
        self.run_with(&RunOptions::default())
    }

    /// Execute the graph under fault-handling options: every device
    /// dispatch (one per host fusion group, one per external module
    /// invocation) first consults the injector, retrying transient faults
    /// per `opts.retry` with the wasted dispatch + backoff charged in
    /// simulated microseconds. Fatal faults or exhausted retries abort
    /// with an [`ExecErrorKind::DeviceFault`] error carrying the attempt
    /// count and cause; exceeding `opts.deadline_us` aborts with
    /// [`ExecErrorKind::Deadline`]. With default options this is exactly
    /// [`GraphExecutor::run`] — same numerics, same time.
    pub fn run_with(&mut self, opts: &RunOptions<'_>) -> Result<f64, ExecError> {
        let _run_span = tvmnp_telemetry::span!("executor.run");
        self.values.clear();
        let mut time_us = 0.0;
        let mut groups_dispatched: HashSet<usize> = HashSet::new();
        let cpu_launch = self.cost.soc().device(DeviceKind::Cpu).kernel_launch_us;
        let deadline = |time_us: f64, node: usize| -> Result<(), ExecError> {
            if time_us > opts.deadline_us {
                return Err(ExecError::new(format!(
                    "deadline exceeded: {time_us:.1} us past a {:.1} us budget",
                    opts.deadline_us
                ))
                .with_node(format!("node#{node}"))
                .with_kind(ExecErrorKind::Deadline));
            }
            Ok(())
        };

        for (idx, node) in self.graph.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Input { name } => {
                    let v = self.inputs.get(name).ok_or_else(|| {
                        ExecError::new(format!("input '{name}' not set"))
                            .with_node(format!("node#{idx}"))
                    })?;
                    self.values.insert(
                        NodeRef {
                            node: idx,
                            output: 0,
                        },
                        v.clone(),
                    );
                }
                NodeKind::Param { index } => {
                    self.values.insert(
                        NodeRef {
                            node: idx,
                            output: 0,
                        },
                        self.graph.params[*index].clone(),
                    );
                }
                NodeKind::Op { op, inputs, group } => {
                    let err_here = |msg: String| {
                        ExecError::new(msg)
                            .with_node(format!("node#{idx}"))
                            .with_op(op.name())
                            .with_device(DeviceKind::Cpu.name())
                    };
                    let args: Vec<Value> = inputs
                        .iter()
                        .map(|r| {
                            self.values
                                .get(r)
                                .cloned()
                                .map(Value::Tensor)
                                .ok_or_else(|| err_here(format!("value for {r:?} missing")))
                        })
                        .collect::<Result<_, _>>()?;
                    let out = eval_op(op, &args)
                        .map_err(|e| err_here(e.to_string()))?
                        .into_tensor()
                        .map_err(|e| err_here(e.to_string()))?;
                    // Time: one launch per fusion group + roofline body.
                    let arg_types: Vec<TensorType> = inputs
                        .iter()
                        .map(|r| self.graph.nodes[r.node].out_types[r.output].clone())
                        .collect();
                    let arg_refs: Vec<&TensorType> = arg_types.iter().collect();
                    let w = relay_work_item(op, &arg_refs, &node.out_types[0]);
                    let node_start_us = time_us;
                    let launched = groups_dispatched.insert(*group);
                    if launched {
                        if let Some(injector) = opts.injector {
                            dispatch_with_retry(
                                injector,
                                &opts.retry,
                                DeviceKind::Cpu,
                                cpu_launch,
                                &mut time_us,
                            )
                            .map_err(|(attempt, cause)| {
                                err_here(format!("device fault: {cause}"))
                                    .with_attempt(attempt)
                                    .with_kind(ExecErrorKind::DeviceFault)
                                    .with_cause(cause)
                            })?;
                        }
                        time_us += cpu_launch;
                    }
                    time_us +=
                        self.cost
                            .kernel_body_us(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
                    let detail = tvmnp_telemetry::detail_enabled().then(|| NodeDetail {
                        kind: w.kind,
                        energy_uj: self.cost.kernel_energy_uj(
                            &w,
                            DeviceKind::Cpu,
                            KernelClass::TvmUntuned,
                        ),
                        // Detail runs only: stripping the injected
                        // multipliers here keeps GraphExecutor free of a
                        // second CostModel on the hot path.
                        analytic_us: self.cost.unscaled().kernel_body_us(
                            &w,
                            DeviceKind::Cpu,
                            KernelClass::TvmUntuned,
                        ) + if launched { cpu_launch } else { 0.0 },
                    });
                    self.record_node(
                        node_start_us,
                        time_us - node_start_us,
                        op.name(),
                        DeviceKind::Cpu.name(),
                        KernelClass::TvmUntuned,
                        detail,
                    );
                    deadline(time_us, idx)?;
                    self.values.insert(
                        NodeRef {
                            node: idx,
                            output: 0,
                        },
                        out,
                    );
                }
                NodeKind::External { symbol, inputs } => {
                    let module = self.modules.get(symbol).expect("checked at construction");
                    let device = module.dispatch_device().name().to_string();
                    let err_here = |msg: String| {
                        ExecError::new(msg)
                            .with_node(format!("node#{idx}"))
                            .with_op(symbol.clone())
                            .with_device(device.clone())
                    };
                    let args: Vec<Tensor> = inputs
                        .iter()
                        .map(|r| {
                            self.values
                                .get(r)
                                .cloned()
                                .ok_or_else(|| err_here(format!("value for {r:?} missing")))
                        })
                        .collect::<Result<_, _>>()?;
                    let node_start_us = time_us;
                    // Host → external transfer for each argument.
                    for a in &args {
                        time_us += self.cost.transfer_us(a.size_bytes());
                    }
                    if let Some(injector) = opts.injector {
                        let fault_device = module.dispatch_device();
                        dispatch_with_retry(
                            injector,
                            &opts.retry,
                            fault_device,
                            self.cost.subgraph_dispatch_us(fault_device),
                            &mut time_us,
                        )
                        .map_err(|(attempt, cause)| {
                            err_here(format!("device fault: {cause}"))
                                .with_attempt(attempt)
                                .with_kind(ExecErrorKind::DeviceFault)
                                .with_cause(cause)
                        })?;
                    }
                    let (outs, ext_us) = module.run(&args).map_err(|e| err_here(e.to_string()))?;
                    time_us += ext_us;
                    if outs.len() != node.out_types.len() {
                        return Err(err_here(format!(
                            "'{symbol}' returned {} outputs, expected {}",
                            outs.len(),
                            node.out_types.len()
                        )));
                    }
                    // External → host transfer for each result.
                    for (k, o) in outs.into_iter().enumerate() {
                        time_us += self.cost.transfer_us(o.size_bytes());
                        self.values.insert(
                            NodeRef {
                                node: idx,
                                output: k,
                            },
                            o,
                        );
                    }
                    self.record_node(
                        node_start_us,
                        time_us - node_start_us,
                        symbol,
                        &device,
                        KernelClass::VendorTuned,
                        None,
                    );
                    if tvmnp_telemetry::detail_enabled() {
                        // Per-kernel attribution spans: the boundary
                        // transfers charged above, then the module's own
                        // internal kernels, tiled from the node start.
                        // (The aggregate `executor.node` span above has
                        // no `kind` arg, so the profile ingester takes
                        // these and skips it — no double counting.)
                        let mut at_us = node_start_us;
                        let dispatch = module.dispatch_device();
                        let boundary = |label: &str, bytes: usize, at_us: &mut f64| {
                            let entry = KernelProfile {
                                label: label.to_string(),
                                kind: WorkKind::DataMovement,
                                device: dispatch,
                                class: KernelClass::VendorTuned,
                                us: self.cost.transfer_us(bytes),
                                analytic_us: self.cost.transfer_us(bytes),
                                energy_uj: self.cost.transfer_energy_uj(bytes),
                            };
                            record_kernel(symbol, *at_us, &entry);
                            *at_us += entry.us;
                        };
                        for a in &args {
                            boundary("boundary-in", a.size_bytes(), &mut at_us);
                        }
                        for entry in module.kernel_profile() {
                            record_kernel(symbol, at_us, &entry);
                            at_us += entry.us;
                        }
                        for t in &node.out_types {
                            boundary("boundary-out", t.size_bytes(), &mut at_us);
                        }
                    }
                    deadline(time_us, idx)?;
                }
            }
        }
        self.last_run_us = Some(time_us);
        Ok(time_us)
    }

    /// Record one node's simulated interval (span + histogram + counter);
    /// no-op while telemetry is disabled.
    fn record_node(
        &self,
        start_us: f64,
        dur_us: f64,
        op: &str,
        device: &str,
        class: KernelClass,
        detail: Option<NodeDetail>,
    ) {
        if !tvmnp_telemetry::is_enabled() {
            return;
        }
        let class = kernel_class_label(class);
        let mut span_args = vec![
            ("op".to_string(), op.to_string()),
            ("device".to_string(), device.to_string()),
            ("class".to_string(), class.to_string()),
        ];
        if let Some(d) = detail {
            span_args.push(("kind".to_string(), d.kind.name().to_string()));
            span_args.push(("energy_uj".to_string(), format!("{:.6}", d.energy_uj)));
            span_args.push(("analytic_us".to_string(), format!("{:.6}", d.analytic_us)));
        }
        tvmnp_telemetry::record_sim_span("executor.node", start_us, dur_us, span_args);
        tvmnp_telemetry::histogram_observe(
            "executor.node_us",
            &[("device", device), ("kernel", op), ("class", class)],
            dur_us,
        );
        tvmnp_telemetry::counter_add("executor.nodes", &[("device", device)], 1);
    }

    /// Simulated time of one inference, computed analytically from shapes
    /// and the linked modules — no numeric execution needed (static shapes
    /// make the time input-independent, like the paper's per-model
    /// measurements).
    pub fn estimate_time_us(&self) -> f64 {
        self.estimate_breakdown().iter().map(|n| n.us).sum()
    }

    /// Per-node analytic cost attribution: one entry per graph node that
    /// costs simulated time, in execution order. Durations sum exactly to
    /// [`GraphExecutor::estimate_time_us`] — the report layer relies on
    /// this reconciliation.
    pub fn estimate_breakdown(&self) -> Vec<NodeCost> {
        let mut out = Vec::new();
        let mut groups_dispatched: HashSet<usize> = HashSet::new();
        let cpu_launch = self.cost.soc().device(DeviceKind::Cpu).kernel_launch_us;
        for (idx, node) in self.graph.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Input { .. } | NodeKind::Param { .. } => {}
                NodeKind::Op { op, inputs, group } => {
                    let arg_types: Vec<TensorType> = inputs
                        .iter()
                        .map(|r| self.graph.nodes[r.node].out_types[r.output].clone())
                        .collect();
                    let arg_refs: Vec<&TensorType> = arg_types.iter().collect();
                    let w = relay_work_item(op, &arg_refs, &node.out_types[0]);
                    let mut us =
                        self.cost
                            .kernel_body_us(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
                    if groups_dispatched.insert(*group) {
                        us += cpu_launch;
                    }
                    out.push(NodeCost {
                        index: idx,
                        op: op.name().to_string(),
                        device: DeviceKind::Cpu.name().to_string(),
                        us,
                        external: false,
                    });
                }
                NodeKind::External { symbol, inputs } => {
                    let module = self.modules.get(symbol).expect("checked at construction");
                    let mut transfer_us = 0.0;
                    for r in inputs {
                        let t = &self.graph.nodes[r.node].out_types[r.output];
                        transfer_us += self.cost.transfer_us(t.size_bytes());
                    }
                    for t in &node.out_types {
                        transfer_us += self.cost.transfer_us(t.size_bytes());
                    }
                    // Boundary transfers enter through the dispatch
                    // device; the module's own time is split across the
                    // devices its plan actually placed work on, so a
                    // CPU-policy or CPU+APU module no longer shows up as
                    // pure APU load.
                    let dispatch = module.dispatch_device();
                    let mut shares = module.estimate_device_us();
                    if let Some(entry) = shares.iter_mut().find(|(d, _)| *d == dispatch) {
                        entry.1 += transfer_us;
                    } else {
                        shares.push((dispatch, transfer_us));
                    }
                    for (device, us) in shares {
                        if us > 0.0 {
                            out.push(NodeCost {
                                index: idx,
                                op: symbol.clone(),
                                device: device.name().to_string(),
                                us,
                                external: true,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Simulated inference energy in microjoules (host ops burn untuned
    /// CPU energy; external modules are consulted via the registry).
    pub fn estimate_energy_uj(&self) -> f64 {
        let mut e = 0.0;
        for node in &self.graph.nodes {
            match &node.kind {
                NodeKind::Input { .. } | NodeKind::Param { .. } => {}
                NodeKind::Op { op, inputs, .. } => {
                    let arg_types: Vec<TensorType> = inputs
                        .iter()
                        .map(|r| self.graph.nodes[r.node].out_types[r.output].clone())
                        .collect();
                    let arg_refs: Vec<&TensorType> = arg_types.iter().collect();
                    let w = relay_work_item(op, &arg_refs, &node.out_types[0]);
                    e += self
                        .cost
                        .kernel_energy_uj(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
                }
                NodeKind::External { symbol, inputs } => {
                    let module = self.modules.get(symbol).expect("checked at construction");
                    for r in inputs {
                        let t = &self.graph.nodes[r.node].out_types[r.output];
                        e += self.cost.transfer_energy_uj(t.size_bytes());
                    }
                    e += module.estimate_energy_uj();
                    for t in &node.out_types {
                        e += self.cost.transfer_energy_uj(t.size_bytes());
                    }
                }
            }
        }
        e
    }

    /// Fetch output `i` after a run (TVM `m.get_output`).
    pub fn get_output(&self, i: usize) -> Result<Tensor, ExecError> {
        let r = self
            .graph
            .outputs
            .get(i)
            .ok_or_else(|| ExecError::new(format!("output index {i} out of range")))?;
        self.values
            .get(r)
            .cloned()
            .ok_or_else(|| ExecError::new("run() has not produced outputs yet"))
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.graph.outputs.len()
    }

    /// Simulated time of the last run.
    pub fn last_run_us(&self) -> Option<f64> {
        self.last_run_us
    }

    /// The underlying graph.
    pub fn graph(&self) -> &ExecutorGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExecutorGraph;
    use crate::module::test_support::NegateModule;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{call_global, var, Function, Module};
    use tvmnp_relay::Conv2dAttrs;
    use tvmnp_tensor::rng::TensorRng;

    #[test]
    fn runs_host_graph() {
        let mut rng = TensorRng::new(2);
        let x = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        ex.set_input("x", rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0))
            .unwrap();
        let t = ex.run().unwrap();
        assert!(t > 0.0);
        let out = ex.get_output(0).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 8, 8]);
        assert!(out.as_f32().unwrap().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn missing_module_rejected_at_link() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = call_global("nir_0", vec![x.clone()]);
        let px = var("p", tvmnp_relay::TensorType::f32([2]));
        let ext =
            Function::new(vec![px.clone()], builder::relu(px)).with_attr("Compiler", "neuropilot");
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        let g = ExecutorGraph::build(&m).unwrap();
        assert!(GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).is_err());
    }

    #[test]
    fn external_module_invoked_with_transfer_cost() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = call_global("nir_0", vec![x.clone()]);
        let px = var("p", tvmnp_relay::TensorType::f32([2]));
        // Body irrelevant to numerics (fake module negates), but types must
        // line up.
        let ext = Function::new(vec![px.clone()], builder::relu(px)).with_attr("Compiler", "fake");
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        let g = ExecutorGraph::build(&m).unwrap();
        let mut reg = ModuleRegistry::new();
        reg.register(Box::new(NegateModule {
            symbol: "nir_0".into(),
            time_us: 42.0,
        }));
        let cost = CostModel::default();
        let min_transfer = 2.0 * cost.transfer_us(8);
        let mut ex = GraphExecutor::new(g, reg, cost).unwrap();
        ex.set_input("x", Tensor::from_f32([2], vec![1.0, -2.0]).unwrap())
            .unwrap();
        let t = ex.run().unwrap();
        assert_eq!(ex.get_output(0).unwrap().as_f32().unwrap(), &[-1.0, 2.0]);
        assert!(
            t >= 42.0 + min_transfer,
            "time {t} must include module + transfers"
        );
    }

    #[test]
    fn unset_input_is_error() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        assert!(ex.run().is_err());
    }

    #[test]
    fn wrong_shape_input_rejected() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        assert!(ex.set_input("x", Tensor::zeros_f32([3])).is_err());
        assert!(ex.set_input("y", Tensor::zeros_f32([2])).is_err());
    }

    #[test]
    fn exec_error_display_is_superset_of_message() {
        let bare = ExecError::new("input 'x' not set");
        assert_eq!(bare.to_string(), "executor error: input 'x' not set");
        let rich = ExecError::new("input 'x' not set")
            .with_node("node#0")
            .with_op("nn.conv2d")
            .with_device("cpu");
        let shown = rich.to_string();
        assert!(
            shown.starts_with("executor error: input 'x' not set"),
            "{shown}"
        );
        assert!(shown.contains("node node#0"), "{shown}");
        assert!(shown.contains("op nn.conv2d"), "{shown}");
        assert!(shown.contains("device cpu"), "{shown}");
        assert_eq!(rich.message(), "input 'x' not set");
        assert_eq!(rich.context().device.as_deref(), Some("cpu"));
    }

    #[test]
    fn run_failure_carries_node_context() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        let err = ex.run().unwrap_err();
        assert!(
            err.context().node.is_some(),
            "failure must locate the node: {err}"
        );
    }

    #[test]
    fn per_node_sim_spans_cover_run_time() {
        let mut rng = TensorRng::new(7);
        let x = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        ex.set_input("x", rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0))
            .unwrap();
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        // Sentinel pins down this thread's dense tid, so spans recorded by
        // concurrently running tests (same process-global collector) can
        // be filtered out.
        tvmnp_telemetry::record_sim_span("test.sentinel", 0.0, 0.0, vec![]);
        let total = ex.run().unwrap();
        tvmnp_telemetry::disable();
        let snap = tvmnp_telemetry::snapshot();
        let my_tid = snap
            .events
            .iter()
            .find(|e| e.name == "test.sentinel")
            .expect("sentinel recorded")
            .tid;
        let node_us: f64 = snap
            .events
            .iter()
            .filter(|e| e.name == "executor.node" && e.tid == my_tid)
            .map(|e| e.dur_us)
            .sum();
        assert!(
            (node_us - total).abs() <= 1e-9 * total.max(1.0),
            "per-node spans ({node_us}) must account for the whole run ({total})"
        );
        assert!(snap
            .metrics
            .iter()
            .any(|(k, _)| k.to_string().starts_with("executor.node_us{")));
    }

    #[test]
    fn breakdown_sums_to_estimate() {
        let mut rng = TensorRng::new(11);
        let x = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::softmax(builder::batch_flatten(builder::relu(builder::conv2d(
            x.clone(),
            w,
            Conv2dAttrs::same(1),
        ))));
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        let breakdown = ex.estimate_breakdown();
        assert!(!breakdown.is_empty());
        let sum: f64 = breakdown.iter().map(|n| n.us).sum();
        let est = ex.estimate_time_us();
        assert!((sum - est).abs() <= 1e-9 * est.max(1.0), "{sum} vs {est}");
        assert!(breakdown.iter().any(|n| n.op == "nn.conv2d"));
        assert!(breakdown.iter().all(|n| n.device == "cpu" && !n.external));
    }

    #[test]
    fn run_with_retries_transient_faults_without_changing_numerics() {
        use tvmnp_hwsim::FaultPlan;
        let mut rng = TensorRng::new(13);
        let x = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], y));
        let input = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        let build = || {
            let g = ExecutorGraph::build(&m).unwrap();
            let mut ex =
                GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
            ex.set_input("x", input.clone()).unwrap();
            ex
        };
        let mut clean = build();
        let clean_us = clean.run().unwrap();
        let clean_out = clean.get_output(0).unwrap();

        let injector =
            FaultInjector::new(FaultPlan::seeded(7).transient_dispatch(DeviceKind::Cpu, 2));
        let mut faulted = build();
        let opts = RunOptions {
            injector: Some(&injector),
            ..RunOptions::default()
        };
        let faulted_us = faulted.run_with(&opts).unwrap();
        assert!(
            faulted.get_output(0).unwrap().bit_eq(&clean_out),
            "faults must not change numerics"
        );
        assert!(
            faulted_us > clean_us,
            "retries must cost simulated time ({faulted_us} vs {clean_us})"
        );
        assert!(injector.faults_injected() >= 1);
    }

    #[test]
    fn run_with_surfaces_fatal_fault_with_cause_chain() {
        use tvmnp_hwsim::FaultPlan;
        let mut rng = TensorRng::new(17);
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        ex.set_input("x", rng.uniform_f32([2], -1.0, 1.0)).unwrap();
        let injector = FaultInjector::new(FaultPlan::seeded(1).device_lost(DeviceKind::Cpu));
        let err = ex
            .run_with(&RunOptions {
                injector: Some(&injector),
                ..RunOptions::default()
            })
            .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::DeviceFault);
        assert_eq!(err.context().attempt, Some(1));
        assert_eq!(err.context().device.as_deref(), Some("cpu"));
        assert!(!err.causes().is_empty(), "{err}");
        assert!(err.to_string().contains("caused by"), "{err}");
    }

    #[test]
    fn run_with_enforces_simulated_deadline() {
        let mut rng = TensorRng::new(19);
        let x = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        ex.set_input("x", rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0))
            .unwrap();
        let err = ex
            .run_with(&RunOptions {
                deadline_us: 1e-6,
                ..RunOptions::default()
            })
            .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::Deadline);
    }

    #[test]
    fn fusion_reduces_dispatches() {
        // conv+bias+relu (one group) vs three separate groups: compare
        // times through two graphs with identical math.
        let mut rng = TensorRng::new(3);
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let b = rng.uniform_f32([4], -0.1, 0.1);
        let x1 = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let fused = builder::relu(builder::bias_add(
            builder::conv2d(x1.clone(), w.clone(), Conv2dAttrs::same(1)),
            b.clone(),
        ));
        let m1 = Module::from_main(Function::new(vec![x1], fused));
        // Break fusion by consuming the conv twice.
        let x2 = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let conv = builder::conv2d(x2.clone(), w, Conv2dAttrs::same(1));
        let split = builder::add(builder::relu(conv.clone()), builder::sigmoid(conv));
        let m2 = Module::from_main(Function::new(vec![x2], split));

        let input = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        let run = |m: &Module| {
            let g = ExecutorGraph::build(m).unwrap();
            let mut ex =
                GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
            ex.set_input("x", input.clone()).unwrap();
            ex.run().unwrap()
        };
        let t_fused = run(&m1);
        let t_split = run(&m2);
        assert!(t_split > t_fused, "more dispatch groups must cost more");
    }
}
