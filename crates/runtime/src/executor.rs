//! The graph executor — TVM's `GraphModule` (`set_input` / `run` /
//! `get_output`), with simulated-time accounting.

use crate::graph::{ExecutorGraph, NodeKind, NodeRef};
use crate::module::ModuleRegistry;
use crate::work::relay_work_item;
use std::collections::{HashMap, HashSet};
use std::fmt;
use tvmnp_hwsim::{CostModel, DeviceKind, KernelClass};
use tvmnp_relay::interp::{eval_op, Value};
use tvmnp_relay::TensorType;
use tvmnp_tensor::Tensor;

/// Executor failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError(pub String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "executor error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// The graph executor: owns the graph, linked external modules, bound
/// inputs and computed outputs.
pub struct GraphExecutor {
    graph: ExecutorGraph,
    modules: ModuleRegistry,
    cost: CostModel,
    inputs: HashMap<String, Tensor>,
    values: HashMap<NodeRef, Tensor>,
    last_run_us: Option<f64>,
}

impl GraphExecutor {
    /// Construct from a lowered graph and linked external modules.
    ///
    /// Every external symbol referenced by the graph must be registered —
    /// the same constraint TVM enforces when linking BYOC modules.
    pub fn new(
        graph: ExecutorGraph,
        modules: ModuleRegistry,
        cost: CostModel,
    ) -> Result<Self, ExecError> {
        for sym in graph.external_symbols() {
            if modules.get(sym).is_none() {
                return Err(ExecError(format!("external symbol '{sym}' is not linked")));
            }
        }
        Ok(GraphExecutor {
            graph,
            modules,
            cost,
            inputs: HashMap::new(),
            values: HashMap::new(),
            last_run_us: None,
        })
    }

    /// Bind a named input (TVM `m.set_input`).
    pub fn set_input(&mut self, name: &str, value: Tensor) -> Result<(), ExecError> {
        let &idx = self
            .graph
            .input_index
            .get(name)
            .ok_or_else(|| ExecError(format!("unknown input '{name}'")))?;
        let expect = &self.graph.nodes[idx].out_types[0];
        if value.shape() != &expect.shape || value.dtype() != expect.dtype {
            return Err(ExecError(format!(
                "input '{name}' expects {} {}, got {} {}",
                expect.shape,
                expect.dtype,
                value.shape(),
                value.dtype()
            )));
        }
        self.inputs.insert(name.to_string(), value);
        Ok(())
    }

    /// Execute the graph (TVM `m.run`). Returns the simulated time in
    /// microseconds.
    pub fn run(&mut self) -> Result<f64, ExecError> {
        self.values.clear();
        let mut time_us = 0.0;
        let mut groups_dispatched: HashSet<usize> = HashSet::new();
        let cpu_launch = self.cost.soc().device(DeviceKind::Cpu).kernel_launch_us;

        for (idx, node) in self.graph.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Input { name } => {
                    let v = self
                        .inputs
                        .get(name)
                        .ok_or_else(|| ExecError(format!("input '{name}' not set")))?;
                    self.values.insert(NodeRef { node: idx, output: 0 }, v.clone());
                }
                NodeKind::Param { index } => {
                    self.values.insert(
                        NodeRef { node: idx, output: 0 },
                        self.graph.params[*index].clone(),
                    );
                }
                NodeKind::Op { op, inputs, group } => {
                    let args: Vec<Value> = inputs
                        .iter()
                        .map(|r| {
                            self.values
                                .get(r)
                                .cloned()
                                .map(Value::Tensor)
                                .ok_or_else(|| ExecError(format!("value for {r:?} missing")))
                        })
                        .collect::<Result<_, _>>()?;
                    let out = eval_op(op, &args)
                        .map_err(|e| ExecError(e.to_string()))?
                        .into_tensor()
                        .map_err(|e| ExecError(e.to_string()))?;
                    // Time: one launch per fusion group + roofline body.
                    let arg_types: Vec<TensorType> = inputs
                        .iter()
                        .map(|r| self.graph.nodes[r.node].out_types[r.output].clone())
                        .collect();
                    let arg_refs: Vec<&TensorType> = arg_types.iter().collect();
                    let w = relay_work_item(op, &arg_refs, &node.out_types[0]);
                    time_us +=
                        self.cost.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
                    if groups_dispatched.insert(*group) {
                        time_us += cpu_launch;
                    }
                    self.values.insert(NodeRef { node: idx, output: 0 }, out);
                }
                NodeKind::External { symbol, inputs } => {
                    let module = self.modules.get(symbol).expect("checked at construction");
                    let args: Vec<Tensor> = inputs
                        .iter()
                        .map(|r| {
                            self.values
                                .get(r)
                                .cloned()
                                .ok_or_else(|| ExecError(format!("value for {r:?} missing")))
                        })
                        .collect::<Result<_, _>>()?;
                    // Host → external transfer for each argument.
                    for a in &args {
                        time_us += self.cost.transfer_us(a.size_bytes());
                    }
                    let (outs, ext_us) =
                        module.run(&args).map_err(|e| ExecError(e.to_string()))?;
                    time_us += ext_us;
                    if outs.len() != node.out_types.len() {
                        return Err(ExecError(format!(
                            "'{symbol}' returned {} outputs, expected {}",
                            outs.len(),
                            node.out_types.len()
                        )));
                    }
                    // External → host transfer for each result.
                    for (k, o) in outs.into_iter().enumerate() {
                        time_us += self.cost.transfer_us(o.size_bytes());
                        self.values.insert(NodeRef { node: idx, output: k }, o);
                    }
                }
            }
        }
        self.last_run_us = Some(time_us);
        Ok(time_us)
    }

    /// Simulated time of one inference, computed analytically from shapes
    /// and the linked modules — no numeric execution needed (static shapes
    /// make the time input-independent, like the paper's per-model
    /// measurements).
    pub fn estimate_time_us(&self) -> f64 {
        let mut time_us = 0.0;
        let mut groups_dispatched: HashSet<usize> = HashSet::new();
        let cpu_launch = self.cost.soc().device(DeviceKind::Cpu).kernel_launch_us;
        for node in &self.graph.nodes {
            match &node.kind {
                NodeKind::Input { .. } | NodeKind::Param { .. } => {}
                NodeKind::Op { op, inputs, group } => {
                    let arg_types: Vec<TensorType> = inputs
                        .iter()
                        .map(|r| self.graph.nodes[r.node].out_types[r.output].clone())
                        .collect();
                    let arg_refs: Vec<&TensorType> = arg_types.iter().collect();
                    let w = relay_work_item(op, &arg_refs, &node.out_types[0]);
                    time_us +=
                        self.cost.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
                    if groups_dispatched.insert(*group) {
                        time_us += cpu_launch;
                    }
                }
                NodeKind::External { symbol, inputs } => {
                    let module = self.modules.get(symbol).expect("checked at construction");
                    for r in inputs {
                        let t = &self.graph.nodes[r.node].out_types[r.output];
                        time_us += self.cost.transfer_us(t.size_bytes());
                    }
                    time_us += module.estimate_time_us();
                    for t in &node.out_types {
                        time_us += self.cost.transfer_us(t.size_bytes());
                    }
                }
            }
        }
        time_us
    }

    /// Simulated inference energy in microjoules (host ops burn untuned
    /// CPU energy; external modules are consulted via the registry).
    pub fn estimate_energy_uj(&self) -> f64 {
        let mut e = 0.0;
        for node in &self.graph.nodes {
            match &node.kind {
                NodeKind::Input { .. } | NodeKind::Param { .. } => {}
                NodeKind::Op { op, inputs, .. } => {
                    let arg_types: Vec<TensorType> = inputs
                        .iter()
                        .map(|r| self.graph.nodes[r.node].out_types[r.output].clone())
                        .collect();
                    let arg_refs: Vec<&TensorType> = arg_types.iter().collect();
                    let w = relay_work_item(op, &arg_refs, &node.out_types[0]);
                    e += self.cost.kernel_energy_uj(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
                }
                NodeKind::External { symbol, inputs } => {
                    let module = self.modules.get(symbol).expect("checked at construction");
                    for r in inputs {
                        let t = &self.graph.nodes[r.node].out_types[r.output];
                        e += self.cost.transfer_energy_uj(t.size_bytes());
                    }
                    e += module.estimate_energy_uj();
                    for t in &node.out_types {
                        e += self.cost.transfer_energy_uj(t.size_bytes());
                    }
                }
            }
        }
        e
    }

    /// Fetch output `i` after a run (TVM `m.get_output`).
    pub fn get_output(&self, i: usize) -> Result<Tensor, ExecError> {
        let r = self
            .graph
            .outputs
            .get(i)
            .ok_or_else(|| ExecError(format!("output index {i} out of range")))?;
        self.values
            .get(r)
            .cloned()
            .ok_or_else(|| ExecError("run() has not produced outputs yet".into()))
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.graph.outputs.len()
    }

    /// Simulated time of the last run.
    pub fn last_run_us(&self) -> Option<f64> {
        self.last_run_us
    }

    /// The underlying graph.
    pub fn graph(&self) -> &ExecutorGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExecutorGraph;
    use crate::module::test_support::NegateModule;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{call_global, var, Function, Module};
    use tvmnp_relay::Conv2dAttrs;
    use tvmnp_tensor::rng::TensorRng;

    #[test]
    fn runs_host_graph() {
        let mut rng = TensorRng::new(2);
        let x = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        ex.set_input("x", rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0)).unwrap();
        let t = ex.run().unwrap();
        assert!(t > 0.0);
        let out = ex.get_output(0).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 8, 8]);
        assert!(out.as_f32().unwrap().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn missing_module_rejected_at_link() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = call_global("nir_0", vec![x.clone()]);
        let px = var("p", tvmnp_relay::TensorType::f32([2]));
        let ext = Function::new(vec![px.clone()], builder::relu(px))
            .with_attr("Compiler", "neuropilot");
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        let g = ExecutorGraph::build(&m).unwrap();
        assert!(GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).is_err());
    }

    #[test]
    fn external_module_invoked_with_transfer_cost() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = call_global("nir_0", vec![x.clone()]);
        let px = var("p", tvmnp_relay::TensorType::f32([2]));
        // Body irrelevant to numerics (fake module negates), but types must
        // line up.
        let ext = Function::new(vec![px.clone()], builder::relu(px))
            .with_attr("Compiler", "fake");
        let mut m = Module::from_main(Function::new(vec![x], y));
        m.functions.insert("nir_0".into(), ext);
        let g = ExecutorGraph::build(&m).unwrap();
        let mut reg = ModuleRegistry::new();
        reg.register(Box::new(NegateModule { symbol: "nir_0".into(), time_us: 42.0 }));
        let cost = CostModel::default();
        let min_transfer = 2.0 * cost.transfer_us(8);
        let mut ex = GraphExecutor::new(g, reg, cost).unwrap();
        ex.set_input("x", Tensor::from_f32([2], vec![1.0, -2.0]).unwrap()).unwrap();
        let t = ex.run().unwrap();
        assert_eq!(ex.get_output(0).unwrap().as_f32().unwrap(), &[-1.0, 2.0]);
        assert!(t >= 42.0 + min_transfer, "time {t} must include module + transfers");
    }

    #[test]
    fn unset_input_is_error() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        assert!(ex.run().is_err());
    }

    #[test]
    fn wrong_shape_input_rejected() {
        let x = var("x", tvmnp_relay::TensorType::f32([2]));
        let y = builder::relu(x.clone());
        let m = Module::from_main(Function::new(vec![x], y));
        let g = ExecutorGraph::build(&m).unwrap();
        let mut ex = GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
        assert!(ex.set_input("x", Tensor::zeros_f32([3])).is_err());
        assert!(ex.set_input("y", Tensor::zeros_f32([2])).is_err());
    }

    #[test]
    fn fusion_reduces_dispatches() {
        // conv+bias+relu (one group) vs three separate groups: compare
        // times through two graphs with identical math.
        let mut rng = TensorRng::new(3);
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let b = rng.uniform_f32([4], -0.1, 0.1);
        let x1 = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let fused = builder::relu(builder::bias_add(
            builder::conv2d(x1.clone(), w.clone(), Conv2dAttrs::same(1)),
            b.clone(),
        ));
        let m1 = Module::from_main(Function::new(vec![x1], fused));
        // Break fusion by consuming the conv twice.
        let x2 = var("x", tvmnp_relay::TensorType::f32([1, 3, 8, 8]));
        let conv = builder::conv2d(x2.clone(), w, Conv2dAttrs::same(1));
        let split = builder::add(builder::relu(conv.clone()), builder::sigmoid(conv));
        let m2 = Module::from_main(Function::new(vec![x2], split));

        let input = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        let run = |m: &Module| {
            let g = ExecutorGraph::build(m).unwrap();
            let mut ex =
                GraphExecutor::new(g, ModuleRegistry::new(), CostModel::default()).unwrap();
            ex.set_input("x", input.clone()).unwrap();
            ex.run().unwrap()
        };
        let t_fused = run(&m1);
        let t_split = run(&m2);
        assert!(t_split > t_fused, "more dispatch groups must cost more");
    }
}
