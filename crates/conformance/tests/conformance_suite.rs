//! Acceptance suite: ≥500 seeded cases with zero divergence across all
//! seven permutations, plus proof that the harness catches and shrinks a
//! deliberately injected quant-propagation bug.

use tvmnp_conformance::{
    case_spec, check_case, read_repro, run_suite, shrink, CheckOptions, Repro, SuiteConfig,
};

/// The headline property: 500 generated cases (float and QNN, with
/// branching and NP-unsupported ops mixed in), every compiled permutation
/// bit-identical to the Relay interpreter, every invariant holding.
#[test]
fn five_hundred_seeded_cases_zero_divergence() {
    let cfg = SuiteConfig {
        cases: 500,
        base_seed: 1000,
        quant_every: 3,
        options: CheckOptions::default(),
    };
    let report = run_suite(&cfg);
    assert_eq!(report.cases_run, 500);
    assert!(
        report.passed(),
        "{} failures, first: {}",
        report.failures.len(),
        report.failures[0].failure
    );
    // All seven permutations accounted for on every case; skips only come
    // from justified NP-only `Unsupported` bail-outs.
    assert_eq!(
        report.permutations_compared + report.permutations_skipped,
        500 * 7
    );
    assert!(
        report.permutations_compared >= 500 * 4,
        "BYOC/TVM modes never skip: at least four comparisons per case"
    );
    // The generator must produce non-trivial partitions, not single-op
    // toys: a healthy fraction of cases splits into multiple subgraphs.
    assert!(
        report.total_subgraphs > 500,
        "expected >1 external subgraph per case on average, got {}",
        report.total_subgraphs
    );
    // Quantized cases are a third of the mix.
    assert_eq!(report.quant_cases, 166);
}

/// A deliberately injected quant-propagation bug (test-only hook) is
/// caught by the `quant-params` invariant, shrunk below 10 nodes, and the
/// written `.repro` file replays to the same failure.
#[test]
fn injected_quant_bug_is_caught_shrunk_and_replayable() {
    let opts = CheckOptions {
        inject_quant_bug: true,
    };
    let cfg = SuiteConfig {
        cases: 60,
        base_seed: 9000,
        quant_every: 2,
        options: opts,
    };
    // The bugged harness must flag quantized cases that route parameters
    // through quantization-transparent ops.
    let mut caught = None;
    for i in 0..cfg.cases {
        let spec = case_spec(&cfg, i);
        if let Err(failure) = check_case(&spec, &opts) {
            assert_eq!(failure.kind(), "invariant:quant-params", "{failure}");
            caught = Some((spec, failure));
            break;
        }
    }
    let (spec, failure) = caught.expect("injected bug never fired across 60 cases");

    // Shrink: same failure kind, fewer than 10 nodes.
    let minimized = shrink(&spec, &failure, &opts);
    assert_eq!(minimized.failure.kind(), "invariant:quant-params");
    assert!(
        minimized.spec.num_nodes() < 10,
        "shrunk case still has {} nodes",
        minimized.spec.num_nodes()
    );
    assert!(minimized.spec.num_nodes() <= spec.num_nodes());

    // Capture to a .repro file and replay it from disk.
    let repro = Repro::capture(&minimized.spec, &minimized.failure, &opts);
    let dir = std::env::temp_dir().join(format!("tvmnp-conf-accept-{}", std::process::id()));
    let path = dir.join(format!("{}.repro", repro.file_stem()));
    tvmnp_conformance::write_repro(&path, &repro).unwrap();
    let loaded = read_repro(&path).unwrap();
    let replayed = loaded.replay().expect_err("repro must still fail");
    assert_eq!(replayed.kind(), "invariant:quant-params");

    // Without the hook, the same spec is clean — the failure really is
    // the injected bug, not a generator artifact.
    check_case(&minimized.spec, &CheckOptions::default()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaying a clean case through the repro machinery reports success —
/// the exit path the bench binary uses to tell "fixed" from "still
/// broken".
#[test]
fn clean_case_replays_as_fixed() {
    let spec = tvmnp_conformance::random_spec(4242, true);
    let repro = Repro {
        version: tvmnp_conformance::repro::REPRO_VERSION,
        kind: "divergence:example".to_string(),
        failure: "historical".to_string(),
        inject_quant_bug: false,
        spec,
    };
    let outcome = repro.replay().expect("case is clean on today's compiler");
    assert_eq!(
        outcome.permutations_compared + outcome.permutations_skipped,
        7
    );
}
