//! The suite driver: generate N seeded cases, check each across the seven
//! permutations, and shrink + capture every failure.

use crate::differential::{check_case, CaseFailure};
use crate::generator::{random_spec, GraphSpec};
use crate::invariants::CheckOptions;
use crate::repro::Repro;
use crate::shrink::shrink;

/// Suite parameters. Fully seeded: the same config always generates the
/// same cases, failures, and shrunk repros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Number of generated cases.
    pub cases: usize,
    /// Base seed; case `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Every `quant_every`-th case is quantized (0 disables quantized
    /// cases entirely).
    pub quant_every: usize,
    /// Harness knobs applied to every case.
    pub options: CheckOptions,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            cases: 200,
            base_seed: 1,
            quant_every: 3,
            options: CheckOptions::default(),
        }
    }
}

/// One failing case, already minimized.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Seed of the generated case.
    pub case_seed: u64,
    /// The original (unshrunk) spec.
    pub original: GraphSpec,
    /// The failure of the original spec.
    pub failure: CaseFailure,
    /// The shrunk, replayable capture.
    pub repro: Repro,
}

/// Aggregate result of a suite run.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    /// Cases generated and checked.
    pub cases_run: usize,
    /// Quantized cases among them.
    pub quant_cases: usize,
    /// Sum of per-case compiled-and-compared permutations.
    pub permutations_compared: usize,
    /// Sum of per-case justified NP-only skips.
    pub permutations_skipped: usize,
    /// Sum of external subgraph counts (partition non-triviality gauge).
    pub total_subgraphs: usize,
    /// Every failure, shrunk and captured.
    pub failures: Vec<FailureRecord>,
}

impl SuiteReport {
    /// Whether the run was fully conformant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The spec for case `i` of a config.
pub fn case_spec(cfg: &SuiteConfig, i: usize) -> GraphSpec {
    let quantize = cfg.quant_every != 0 && i % cfg.quant_every == cfg.quant_every - 1;
    random_spec(cfg.base_seed.wrapping_add(i as u64), quantize)
}

/// Run the suite. Failures are shrunk (preserving failure kind) and
/// captured as replayable [`Repro`]s; passing cases contribute to the
/// aggregate counters.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteReport {
    let mut report = SuiteReport::default();
    for i in 0..cfg.cases {
        let spec = case_spec(cfg, i);
        if spec.quantize {
            report.quant_cases += 1;
        }
        report.cases_run += 1;
        match check_case(&spec, &cfg.options) {
            Ok(outcome) => {
                report.permutations_compared += outcome.permutations_compared;
                report.permutations_skipped += outcome.permutations_skipped;
                report.total_subgraphs += outcome.subgraphs;
            }
            Err(failure) => {
                let minimized = shrink(&spec, &failure, &cfg.options);
                let repro = Repro::capture(&minimized.spec, &minimized.failure, &cfg.options);
                report.failures.push(FailureRecord {
                    case_seed: spec.seed,
                    original: spec,
                    failure,
                    repro,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_is_clean_and_nontrivial() {
        let report = run_suite(&SuiteConfig {
            cases: 24,
            base_seed: 100,
            quant_every: 3,
            options: CheckOptions::default(),
        });
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.cases_run, 24);
        assert_eq!(report.quant_cases, 8);
        // Every case accounts for all seven permutations.
        assert_eq!(
            report.permutations_compared + report.permutations_skipped,
            24 * 7
        );
        // The generator produces non-trivial partitions overall.
        assert!(report.total_subgraphs > 24 / 2);
    }

    #[test]
    fn suite_is_deterministic() {
        let cfg = SuiteConfig {
            cases: 8,
            base_seed: 42,
            quant_every: 4,
            options: CheckOptions::default(),
        };
        let a = run_suite(&cfg);
        let b = run_suite(&cfg);
        assert_eq!(a.permutations_compared, b.permutations_compared);
        assert_eq!(a.permutations_skipped, b.permutations_skipped);
        assert_eq!(a.total_subgraphs, b.total_subgraphs);
    }
}
