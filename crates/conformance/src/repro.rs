//! Self-contained `.repro` files: a failing case serialized with enough
//! context to replay it in another process (or another machine) with
//! nothing but the repo checkout.

use crate::differential::{check_case, CaseFailure, CaseOutcome};
use crate::generator::GraphSpec;
use crate::invariants::CheckOptions;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Format version, bumped on incompatible [`GraphSpec`] changes.
pub const REPRO_VERSION: u32 = 1;

/// A serialized failing case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repro {
    /// Format version.
    pub version: u32,
    /// Failure class at capture time (see [`CaseFailure::kind`]).
    pub kind: String,
    /// Human-readable failure description at capture time.
    pub failure: String,
    /// Whether the test-only quant-bug hook was armed when this case
    /// failed (replay re-arms it so the failure reproduces).
    pub inject_quant_bug: bool,
    /// The minimized spec.
    pub spec: GraphSpec,
}

impl Repro {
    /// Capture a failing case.
    pub fn capture(spec: &GraphSpec, failure: &CaseFailure, opts: &CheckOptions) -> Self {
        Repro {
            version: REPRO_VERSION,
            kind: failure.kind(),
            failure: failure.to_string(),
            inject_quant_bug: opts.inject_quant_bug,
            spec: spec.clone(),
        }
    }

    /// The harness options the case was captured under.
    pub fn options(&self) -> CheckOptions {
        CheckOptions {
            inject_quant_bug: self.inject_quant_bug,
        }
    }

    /// Re-run the case under its captured options. `Err` means the
    /// failure still reproduces; `Ok` means it no longer does (fixed).
    pub fn replay(&self) -> Result<CaseOutcome, CaseFailure> {
        check_case(&self.spec, &self.options())
    }

    /// Deterministic file stem, e.g. `divergence-BYOC-APU-seed42`.
    pub fn file_stem(&self) -> String {
        let slug: String = self
            .kind
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{slug}-seed{}", self.spec.seed)
    }
}

/// Write a repro as JSON.
pub fn write_repro(path: &Path, repro: &Repro) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string(repro)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

/// Load a repro, rejecting unknown format versions.
pub fn read_repro(path: &Path) -> std::io::Result<Repro> {
    let json = std::fs::read_to_string(path)?;
    let repro: Repro = serde_json::from_str(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if repro.version != REPRO_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unsupported repro version {}", repro.version),
        ));
    }
    Ok(repro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GraphSpec, SpecOp};

    fn sample() -> Repro {
        Repro {
            version: REPRO_VERSION,
            kind: "invariant:quant-params".to_string(),
            failure: "example".to_string(),
            inject_quant_bug: true,
            spec: GraphSpec {
                seed: 7,
                in_channels: 2,
                height: 4,
                width: 4,
                quantize: true,
                ops: vec![
                    SpecOp::Conv2d {
                        input: 0,
                        out_channels: 1,
                        kernel: 1,
                        bias: false,
                    },
                    SpecOp::Relu { input: 1 },
                ],
            },
        }
    }

    #[test]
    fn repro_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("tvmnp-repro-test-{}", std::process::id()));
        let repro = sample();
        let path = dir.join(format!("{}.repro", repro.file_stem()));
        write_repro(&path, &repro).unwrap();
        let loaded = read_repro(&path).unwrap();
        assert_eq!(loaded, repro);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("tvmnp-repro-ver-{}", std::process::id()));
        let mut repro = sample();
        repro.version = 99;
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.repro");
        std::fs::write(&path, serde_json::to_string(&repro).unwrap()).unwrap();
        assert!(read_repro(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
