//! Property-based differential conformance harness across the seven
//! target permutations.
//!
//! The paper's central claim is that a Relay module partitioned through
//! BYOC and lowered to Neuron IR stays numerically faithful on every
//! target permutation (§3.2–§3.4). This crate turns that claim into a
//! generative test: a seeded random graph generator ([`generator`]), a
//! differential runner that bit-compares every permutation against the
//! Relay interpreter ([`differential`]), invariant checkers for quant
//! parameters, partition shape, memory planning, and fingerprint
//! stability ([`invariants`]), a greedy shrinker ([`shrink`]), and
//! self-contained `.repro` captures replayable via the `conformance`
//! bench binary ([`repro`]).

#![warn(missing_docs)]

pub mod differential;
pub mod generator;
pub mod invariants;
pub mod repro;
pub mod shrink;
pub mod suite;

pub use differential::{check_case, CaseFailure, CaseOutcome};
pub use generator::{build_case, random_spec, BuiltCase, GraphSpec, SpecOp};
pub use invariants::CheckOptions;
pub use repro::{read_repro, write_repro, Repro};
pub use shrink::{shrink, ShrinkResult};
pub use suite::{case_spec, run_suite, FailureRecord, SuiteConfig, SuiteReport};
