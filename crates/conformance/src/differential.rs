//! The differential runner: one spec, seven permutations, one golden
//! model.
//!
//! The Relay interpreter is the semantic ground truth (the analogue of
//! checking BYOC output against the origin framework). Every compiled
//! permutation must reproduce its output bit-for-bit; `NP-only` builds may
//! skip with `BuildError::Unsupported` — but only when the module really
//! contains an op outside the NeuroPilot support matrix, otherwise the
//! skip itself is a conformance failure.

use crate::generator::{build_case, GraphSpec};
use crate::invariants::{run_invariants, CheckOptions};
use std::fmt;
use tvmnp_byoc::build::{relay_build, BuildError};
use tvmnp_byoc::permutations::Permutation;
use tvmnp_hwsim::CostModel;
use tvmnp_relay::expr::{CallTarget, ExprKind, Module};
use tvmnp_relay::interp::run_module;
use tvmnp_relay::visit::post_order;

/// Why a case failed. The discriminating [`CaseFailure::kind`] string is
/// what the shrinker preserves while minimizing.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseFailure {
    /// The spec could not be realized as a module (generator bug).
    Spec(String),
    /// The golden interpreter itself failed.
    Reference(String),
    /// A permutation failed to compile for a non-`Unsupported` reason.
    Build {
        /// Figure-axis label of the permutation.
        permutation: String,
        /// The build error.
        error: String,
    },
    /// A permutation compiled but its output differs from the golden
    /// interpreter.
    Divergence {
        /// Figure-axis label of the permutation.
        permutation: String,
        /// What differed.
        detail: String,
    },
    /// An invariant checker fired (quant params, partition shape, memory
    /// plan, fingerprint stability, or an unjustified NP-only skip).
    Invariant {
        /// Checker name.
        name: String,
        /// What it saw.
        detail: String,
    },
}

impl CaseFailure {
    /// Stable failure class, e.g. `divergence:BYOC APU` or
    /// `invariant:quant-params`. Shrink candidates are accepted only when
    /// they fail with the same kind.
    pub fn kind(&self) -> String {
        match self {
            CaseFailure::Spec(_) => "spec".to_string(),
            CaseFailure::Reference(_) => "reference".to_string(),
            CaseFailure::Build { permutation, .. } => format!("build:{permutation}"),
            CaseFailure::Divergence { permutation, .. } => format!("divergence:{permutation}"),
            CaseFailure::Invariant { name, .. } => format!("invariant:{name}"),
        }
    }
}

impl fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseFailure::Spec(m) => write!(f, "spec error: {m}"),
            CaseFailure::Reference(m) => write!(f, "reference interpreter error: {m}"),
            CaseFailure::Build { permutation, error } => {
                write!(f, "build failed on {permutation}: {error}")
            }
            CaseFailure::Divergence {
                permutation,
                detail,
            } => write!(f, "{permutation} diverged from interpreter: {detail}"),
            CaseFailure::Invariant { name, detail } => {
                write!(f, "invariant '{name}' violated: {detail}")
            }
        }
    }
}

/// Per-case statistics for the suite report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseOutcome {
    /// Permutations that compiled, ran, and bit-matched the interpreter.
    pub permutations_compared: usize,
    /// NP-only permutations skipped on a justified `Unsupported` error.
    pub permutations_skipped: usize,
    /// External subgraphs in the BYOC partition of this module.
    pub subgraphs: usize,
}

/// Whether `main` contains a primitive call outside the NeuroPilot
/// support matrix (the justification for an NP-only `Unsupported` skip).
pub fn has_unsupported_op(module: &Module) -> bool {
    let mut found = false;
    post_order(&module.main().body, |e| {
        if let ExprKind::Call(c) = &e.kind {
            if let CallTarget::Op(op) = &c.target {
                if !tvmnp_neuropilot::neuron_supported(op.name()) {
                    found = true;
                }
            }
        }
    });
    found
}

/// Check one spec: golden-run it, execute all seven permutations against
/// the interpreter, then run every invariant checker.
pub fn check_case(spec: &GraphSpec, opts: &CheckOptions) -> Result<CaseOutcome, CaseFailure> {
    let built = build_case(spec).map_err(|e| CaseFailure::Spec(e.to_string()))?;
    let reference = run_module(&built.module, &built.inputs)
        .map_err(|e| CaseFailure::Reference(e.to_string()))?;

    let mut outcome = CaseOutcome::default();
    let module_is_np_clean = !has_unsupported_op(&built.module);
    for p in Permutation::ALL {
        let mode = p.mode();
        let mut compiled = match relay_build(&built.module, mode, CostModel::default()) {
            Ok(c) => c,
            Err(BuildError::Unsupported(op)) => {
                if module_is_np_clean {
                    return Err(CaseFailure::Invariant {
                        name: "np-skip".to_string(),
                        detail: format!(
                            "{p} skipped on '{op}' but the module contains no unsupported op"
                        ),
                    });
                }
                outcome.permutations_skipped += 1;
                continue;
            }
            Err(e) => {
                return Err(CaseFailure::Build {
                    permutation: p.label().to_string(),
                    error: e.to_string(),
                })
            }
        };
        let (outs, _us) = compiled
            .run(&built.inputs)
            .map_err(|e| CaseFailure::Build {
                permutation: p.label().to_string(),
                error: format!("run failed: {e}"),
            })?;
        if outs.len() != 1 {
            return Err(CaseFailure::Divergence {
                permutation: p.label().to_string(),
                detail: format!("expected 1 output, got {}", outs.len()),
            });
        }
        if !outs[0].bit_eq(&reference) {
            return Err(CaseFailure::Divergence {
                permutation: p.label().to_string(),
                detail: format!(
                    "output shape {:?} dtype {:?} not bit-identical to interpreter",
                    outs[0].shape(),
                    outs[0].dtype()
                ),
            });
        }
        outcome.permutations_compared += 1;
    }

    let stats = run_invariants(spec, &built, &reference, opts)?;
    outcome.subgraphs = stats.subgraphs;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_spec;

    #[test]
    fn a_float_and_a_quant_case_pass_end_to_end() {
        for (seed, quant) in [(3u64, false), (5u64, true)] {
            let spec = random_spec(seed, quant);
            let out = check_case(&spec, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} quant {quant}: {e}"));
            assert_eq!(out.permutations_compared + out.permutations_skipped, 7);
        }
    }

    #[test]
    fn unsupported_float_case_skips_np_only_modes() {
        // Find a float spec whose *live* graph contains an NP-unsupported
        // op (a drawn batch_norm/exp may be dead if no later op uses it).
        let spec = (0..64u64)
            .map(|s| random_spec(s, false))
            .find(|s| {
                crate::generator::build_case(s)
                    .map(|b| has_unsupported_op(&b.module))
                    .unwrap_or(false)
            })
            .expect("some float spec keeps batch_norm/exp live");
        let out = check_case(&spec, &CheckOptions::default()).unwrap();
        assert_eq!(out.permutations_skipped, 3, "all NP-only modes skip");
        assert_eq!(out.permutations_compared, 4);
    }
}
