//! Invariant checkers run on every conformance case, independent of the
//! numeric comparison:
//!
//! - **partition well-formedness** — every external function produced by
//!   `partition_for_nir` carries its `Compiler`/`global_symbol`
//!   annotations, is actually called from `main` (no dangling external
//!   nodes), contains only NeuroPilot-supported ops, and the partitioned
//!   module still evaluates to the golden output;
//! - **quant-params** (§3.3) — after conversion to Neuron IR and
//!   parameter propagation, every quantized tensor carries quantization
//!   parameters (the tensor-oriented contract);
//! - **memory-plan safety** — the storage planner never aliases two
//!   simultaneously-live values, and peak accounting is consistent
//!   (`0 < peak <= pool`);
//! - **fingerprint stability** — rebuilding the same spec yields the same
//!   module fingerprint (the artifact-cache key contract).

use crate::differential::CaseFailure;
use crate::generator::{build_case, BuiltCase, GraphSpec};
use tvmnp_byoc::build::partition_for_nir;
use tvmnp_neuropilot::{convert_function, neuron_supported, NeuronGraph, NeuronOpKind};
use tvmnp_relay::expr::{CallTarget, ExprKind, Module};
use tvmnp_relay::interp::run_module;
use tvmnp_relay::module_fingerprint;
use tvmnp_relay::passes::{fold_constants, simplify};
use tvmnp_relay::visit::post_order;
use tvmnp_runtime::{plan_memory, ExecutorGraph};
use tvmnp_tensor::Tensor;

/// Harness knobs. `inject_quant_bug` is a test-only hook that simulates a
/// quant-propagation defect (strips the propagated parameters off
/// quantization-transparent ops' outputs after conversion) so the suite
/// can prove the `quant-params` invariant actually fires and shrinks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckOptions {
    /// Simulate a §3.3 propagation bug (test-only).
    pub inject_quant_bug: bool,
}

/// Statistics the invariant pass feeds back into the case outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantStats {
    /// External subgraphs in the BYOC partition.
    pub subgraphs: usize,
}

fn inv(name: &str, detail: impl Into<String>) -> CaseFailure {
    CaseFailure::Invariant {
        name: name.to_string(),
        detail: detail.into(),
    }
}

/// Mirror of the converter's quantization-transparent op set — the ops a
/// propagation bug would leave without parameters.
fn quant_transparent(kind: &NeuronOpKind) -> bool {
    matches!(
        kind,
        NeuronOpKind::MaxPool2d { .. }
            | NeuronOpKind::AvgPool2d { .. }
            | NeuronOpKind::GlobalAvgPool2d
            | NeuronOpKind::Relu
            | NeuronOpKind::Clip { .. }
            | NeuronOpKind::Reshape { .. }
            | NeuronOpKind::Transpose { .. }
            | NeuronOpKind::Concat { .. }
            | NeuronOpKind::Pad { .. }
            | NeuronOpKind::BatchFlatten
    )
}

/// The test-only quant-propagation bug: forget the parameters that
/// propagation stamped onto transparent ops' outputs.
fn inject_quant_bug(graph: &mut NeuronGraph) {
    for i in 0..graph.ops.len() {
        if !quant_transparent(&graph.ops[i].kind) {
            continue;
        }
        for &o in &graph.ops[i].outputs.clone() {
            graph.tensors[o].quant = None;
        }
    }
}

/// Every global symbol called anywhere under `main`.
fn called_globals(module: &Module) -> Vec<String> {
    let mut names = Vec::new();
    post_order(&module.main().body, |e| {
        if let ExprKind::Call(c) = &e.kind {
            if let CallTarget::Global(g) = &c.target {
                names.push(g.clone());
            }
        }
    });
    names
}

fn check_partition(built: &BuiltCase, reference: &Tensor) -> Result<(Module, usize), CaseFailure> {
    let (partitioned, report) = partition_for_nir(&built.module)
        .map_err(|e| inv("partition", format!("partition_for_nir failed: {e}")))?;
    let externals: Vec<String> = partitioned
        .external_functions()
        .into_iter()
        .map(String::from)
        .collect();
    if report.num_subgraphs != externals.len() {
        return Err(inv(
            "partition",
            format!(
                "report claims {} subgraphs, module has {}",
                report.num_subgraphs,
                externals.len()
            ),
        ));
    }
    let called = called_globals(&partitioned);
    let mut offloaded = 0usize;
    for name in &externals {
        let func = &partitioned.functions[name.as_str()];
        if func.attrs.get("Compiler").map(String::as_str) != Some("neuropilot") {
            return Err(inv("partition", format!("{name}: missing Compiler attr")));
        }
        if func.attrs.get("global_symbol").map(String::as_str) != Some(name.as_str()) {
            return Err(inv(
                "partition",
                format!("{name}: global_symbol attr does not match function name"),
            ));
        }
        if !called.iter().any(|g| g == name) {
            return Err(inv(
                "partition",
                format!("{name}: dangling external function, never called from main"),
            ));
        }
        let mut bad_op = None;
        post_order(&func.body, |e| {
            if let ExprKind::Call(c) = &e.kind {
                match &c.target {
                    CallTarget::Op(op) if !neuron_supported(op.name()) => {
                        bad_op = Some(op.name().to_string());
                    }
                    CallTarget::Global(g) => bad_op = Some(format!("nested global @{g}")),
                    _ => {}
                }
            }
        });
        if let Some(op) = bad_op {
            return Err(inv(
                "partition",
                format!("{name}: offloaded region contains '{op}'"),
            ));
        }
        offloaded += func.num_calls();
    }
    if report.offloaded_calls != offloaded {
        return Err(inv(
            "partition",
            format!(
                "report claims {} offloaded calls, external bodies hold {offloaded}",
                report.offloaded_calls
            ),
        ));
    }
    // Partitioning must be semantics-preserving: the partitioned module
    // interprets to the same bits as the original.
    let out = run_module(&partitioned, &built.inputs).map_err(|e| {
        inv(
            "partition",
            format!("partitioned module failed to run: {e}"),
        )
    })?;
    if !out.bit_eq(reference) {
        return Err(inv(
            "partition",
            "partitioned module output differs from the original module",
        ));
    }
    Ok((partitioned, externals.len()))
}

fn check_quant_params(partitioned: &Module, opts: &CheckOptions) -> Result<(), CaseFailure> {
    for name in partitioned.external_functions() {
        let func = &partitioned.functions[name];
        let mut graph = convert_function(func)
            .map_err(|e| inv("nir-convert", format!("{name}: conversion failed: {e}")))?;
        if opts.inject_quant_bug {
            inject_quant_bug(&mut graph);
        }
        for t in &graph.tensors {
            if t.dtype.is_quantized() && t.quant.is_none() {
                return Err(inv(
                    "quant-params",
                    format!(
                        "{name}: quantized tensor '{}' carries no quantization parameters",
                        t.name
                    ),
                ));
            }
        }
        if let Err(e) = graph.validate() {
            return Err(inv("nir-validate", format!("{name}: {e}")));
        }
    }
    Ok(())
}

fn check_memory_plan(module: &Module, label: &str) -> Result<(), CaseFailure> {
    let graph = ExecutorGraph::build(module)
        .map_err(|e| inv("memory-plan", format!("{label}: lowering failed: {e}")))?;
    let plan = plan_memory(&graph);
    if let Some((a, b)) = plan.check_no_alias(&graph) {
        return Err(inv(
            "memory-plan",
            format!("{label}: values {a:?} and {b:?} share a slot while both live"),
        ));
    }
    if plan.peak_bytes == 0 {
        return Err(inv("memory-plan", format!("{label}: zero peak bytes")));
    }
    if plan.peak_bytes > plan.pool_bytes {
        return Err(inv(
            "memory-plan",
            format!(
                "{label}: peak {} exceeds pool {}",
                plan.peak_bytes, plan.pool_bytes
            ),
        ));
    }
    Ok(())
}

/// Run every invariant checker on a realized case.
pub fn run_invariants(
    spec: &GraphSpec,
    built: &BuiltCase,
    reference: &Tensor,
    opts: &CheckOptions,
) -> Result<InvariantStats, CaseFailure> {
    let (partitioned, subgraphs) = check_partition(built, reference)?;
    check_quant_params(&partitioned, opts)?;
    if !spec.ops.is_empty() {
        // The host-side lowering of both the plain and partitioned forms
        // must plan safely.
        let prepared = fold_constants(&simplify(&built.module));
        check_memory_plan(&prepared, "unpartitioned")?;
        check_memory_plan(&partitioned, "partitioned")?;
    }
    // Fingerprint stability: an independently rebuilt spec (fresh node
    // ids throughout) must hash identically — the cache-key contract.
    let rebuilt = build_case(spec).map_err(|e| CaseFailure::Spec(e.to_string()))?;
    let (fp1, fp2) = (
        module_fingerprint(&built.module),
        module_fingerprint(&rebuilt.module),
    );
    if fp1 != fp2 {
        return Err(inv(
            "fingerprint",
            format!("rebuild changed the fingerprint: {fp1} vs {fp2}"),
        ));
    }
    Ok(InvariantStats { subgraphs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::check_case;
    use crate::generator::random_spec;

    /// A quantized spec whose offloaded region holds at least one
    /// quantization-transparent op (so the injected bug has a target).
    fn quant_spec_with_transparent_op() -> GraphSpec {
        for seed in 0..128u64 {
            let spec = random_spec(seed, true);
            if check_case(
                &spec,
                &CheckOptions {
                    inject_quant_bug: true,
                },
            )
            .is_err()
            {
                return spec;
            }
        }
        panic!("no quantized spec exercises the propagation path");
    }

    #[test]
    fn injected_quant_bug_is_caught() {
        let spec = quant_spec_with_transparent_op();
        // Clean harness: passes.
        check_case(&spec, &CheckOptions::default()).unwrap();
        // Bugged harness: the quant-params invariant fires.
        let failure = check_case(
            &spec,
            &CheckOptions {
                inject_quant_bug: true,
            },
        )
        .unwrap_err();
        assert_eq!(failure.kind(), "invariant:quant-params", "{failure}");
    }

    #[test]
    fn float_cases_satisfy_all_invariants() {
        for seed in [2u64, 9, 17] {
            let spec = random_spec(seed, false);
            check_case(&spec, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
