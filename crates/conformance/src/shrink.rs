//! Greedy spec shrinker: minimize a failing [`GraphSpec`] while keeping
//! the *same* failure kind.
//!
//! Candidates are tried in two families until a fixpoint:
//! 1. **op deletion** — drop op `i`, redirect its consumers to its primary
//!    operand, renumber later indices;
//! 2. **parameter simplification** — shrink conv channel counts/kernels,
//!    drop biases.
//!
//! A candidate is accepted only when [`check_case`] still fails with the
//! original [`CaseFailure::kind`]; shape-invalid candidates surface as
//! `spec` failures and are naturally rejected. Because every candidate is
//! strictly smaller (fewer ops, or smaller parameters with equal op
//! count), the loop terminates.

use crate::differential::{check_case, CaseFailure};
use crate::generator::{GraphSpec, SpecOp};
use crate::invariants::CheckOptions;

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized spec.
    pub spec: GraphSpec,
    /// The (same-kind) failure of the minimized spec.
    pub failure: CaseFailure,
    /// Accepted shrink steps.
    pub steps: usize,
}

/// Delete op `i`: consumers of node `i + 1` fall back to the op's primary
/// operand, and every node index above `i + 1` shifts down by one.
pub fn delete_op(spec: &GraphSpec, i: usize) -> GraphSpec {
    let removed = spec.ops[i].clone();
    let fallback = removed.primary_operand();
    let deleted_node = i + 1;
    let mut out = spec.clone();
    out.ops.remove(i);
    for op in out.ops.iter_mut().skip(i) {
        op.map_operands(|n| {
            if n == deleted_node {
                fallback
            } else if n > deleted_node {
                n - 1
            } else {
                n
            }
        });
    }
    out
}

fn param_candidates(spec: &GraphSpec, i: usize) -> Vec<GraphSpec> {
    let mut out = Vec::new();
    if let SpecOp::Conv2d {
        out_channels,
        kernel,
        bias,
        ..
    } = spec.ops[i]
    {
        if out_channels > 1 {
            let mut s = spec.clone();
            if let SpecOp::Conv2d { out_channels, .. } = &mut s.ops[i] {
                *out_channels = 1;
            }
            out.push(s);
        }
        if kernel > 1 {
            let mut s = spec.clone();
            if let SpecOp::Conv2d { kernel, .. } = &mut s.ops[i] {
                *kernel = 1;
            }
            out.push(s);
        }
        if bias {
            let mut s = spec.clone();
            if let SpecOp::Conv2d { bias, .. } = &mut s.ops[i] {
                *bias = false;
            }
            out.push(s);
        }
    }
    out
}

/// Greedily minimize `spec`, preserving the failure kind of `failure`.
/// `spec` must actually fail under `opts` with that kind.
pub fn shrink(spec: &GraphSpec, failure: &CaseFailure, opts: &CheckOptions) -> ShrinkResult {
    let kind = failure.kind();
    let mut current = spec.clone();
    let mut current_failure = failure.clone();
    let mut steps = 0usize;
    loop {
        let mut improved = false;
        // Deletion, highest index first: late ops are the cheapest to
        // re-wire and deleting them never invalidates earlier shapes.
        let mut i = current.ops.len();
        while i > 0 {
            i -= 1;
            if current.ops.len() <= 1 {
                break;
            }
            let candidate = delete_op(&current, i);
            if let Err(f) = check_case(&candidate, opts) {
                if f.kind() == kind {
                    current = candidate;
                    current_failure = f;
                    steps += 1;
                    improved = true;
                    i = current.ops.len(); // restart the sweep on the smaller spec
                }
            }
        }
        // Parameter simplification.
        for i in 0..current.ops.len() {
            for candidate in param_candidates(&current, i) {
                if let Err(f) = check_case(&candidate, opts) {
                    if f.kind() == kind {
                        current = candidate;
                        current_failure = f;
                        steps += 1;
                        improved = true;
                        break;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    ShrinkResult {
        spec: current,
        failure: current_failure,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_spec;

    #[test]
    fn delete_op_renumbers_consumers() {
        let spec = GraphSpec {
            seed: 1,
            in_channels: 2,
            height: 4,
            width: 4,
            quantize: false,
            ops: vec![
                SpecOp::Relu { input: 0 },
                SpecOp::Sigmoid { input: 1 },
                SpecOp::Add { lhs: 2, rhs: 1 },
            ],
        };
        // Delete the sigmoid (node 2): Add's lhs falls back to node 1,
        // rhs stays node 1.
        let out = delete_op(&spec, 1);
        assert_eq!(
            out.ops,
            vec![SpecOp::Relu { input: 0 }, SpecOp::Add { lhs: 1, rhs: 1 },]
        );
    }

    #[test]
    fn shrink_preserves_failure_kind_and_reduces_size() {
        // Use the injected quant bug as a reproducible failure source.
        let opts = CheckOptions {
            inject_quant_bug: true,
        };
        let (spec, failure) = (0..128u64)
            .find_map(|s| {
                let spec = random_spec(s, true);
                check_case(&spec, &opts).err().map(|f| (spec, f))
            })
            .expect("some quantized spec trips the injected bug");
        let result = shrink(&spec, &failure, &opts);
        assert!(result.spec.ops.len() <= spec.ops.len());
        assert_eq!(result.failure.kind(), failure.kind());
        // The minimized case still fails the same way when re-checked.
        let recheck = check_case(&result.spec, &opts).unwrap_err();
        assert_eq!(recheck.kind(), failure.kind());
    }
}
