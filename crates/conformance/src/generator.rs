//! Seeded random Relay graph generation.
//!
//! A case is described by a [`GraphSpec`] — a tiny serializable DSL, not a
//! Relay module — so that failing cases can be written to `.repro` files,
//! shrunk structurally, and rebuilt bit-identically in another process.
//! Node 0 is the input variable; op `j` produces node `j + 1`; operands
//! reference earlier node indices, so reusing an index yields shared
//! subexpressions and branching DAGs. The generated output expression is
//! the last node, so trailing ops are always live.
//!
//! Two vocabularies are drawn from:
//! - float mode mixes NeuroPilot-supported ops with `nn.batch_norm` /
//!   `exp` (deliberately unsupported, the paper's "missing bars"), so
//!   BYOC partitions are non-trivial and NP-only builds exercise the
//!   `Unsupported` path;
//! - quantized mode restricts to ops the post-training quantizer maps,
//!   builds the float graph, and rewrites it through
//!   `quantize_with_calibration` into the QNN dialect (§3.3).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{var, Expr, Function, Module};
use tvmnp_relay::passes::quantize_with_calibration;
use tvmnp_relay::{Conv2dAttrs, Pool2dAttrs, TensorType};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::Tensor;

/// One generated operator. Operand fields are node indices (0 = the input
/// variable, `j + 1` = the result of `ops[j]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecOp {
    /// `nn.conv2d`, stride 1, same padding, square `kernel` ∈ {1, 3}.
    Conv2d {
        /// Operand node.
        input: usize,
        /// Output channel count.
        out_channels: usize,
        /// Square kernel extent (1 or 3).
        kernel: usize,
        /// Whether a constant bias rides along.
        bias: bool,
    },
    /// `nn.relu`.
    Relu {
        /// Operand node.
        input: usize,
    },
    /// `sigmoid` (float vocabulary only).
    Sigmoid {
        /// Operand node.
        input: usize,
    },
    /// `nn.max_pool2d` 2×2/2 (halves spatial dims).
    MaxPool {
        /// Operand node.
        input: usize,
    },
    /// `nn.avg_pool2d` 2×2/2.
    AvgPool {
        /// Operand node.
        input: usize,
    },
    /// `nn.global_avg_pool2d` (spatial dims collapse to 1×1).
    GlobalAvgPool {
        /// Operand node.
        input: usize,
    },
    /// Elementwise `add` of two same-shape nodes.
    Add {
        /// Left operand node.
        lhs: usize,
        /// Right operand node.
        rhs: usize,
    },
    /// Elementwise `multiply` (float vocabulary only).
    Multiply {
        /// Left operand node.
        lhs: usize,
        /// Right operand node.
        rhs: usize,
    },
    /// Elementwise `maximum` (float vocabulary only).
    Maximum {
        /// Left operand node.
        lhs: usize,
        /// Right operand node.
        rhs: usize,
    },
    /// `concatenate` along the channel axis (operands share H×W).
    Concat {
        /// Left operand node.
        lhs: usize,
        /// Right operand node.
        rhs: usize,
    },
    /// `reshape` swapping H and W (pure data movement, rank preserved).
    Reshape {
        /// Operand node.
        input: usize,
    },
    /// `nn.batch_norm` — NeuroPilot-unsupported, forces partition splits.
    BatchNorm {
        /// Operand node.
        input: usize,
    },
    /// `exp` — NeuroPilot-unsupported.
    Exp {
        /// Operand node.
        input: usize,
    },
}

impl SpecOp {
    /// Operand node indices.
    pub fn operands(&self) -> Vec<usize> {
        match *self {
            SpecOp::Conv2d { input, .. }
            | SpecOp::Relu { input }
            | SpecOp::Sigmoid { input }
            | SpecOp::MaxPool { input }
            | SpecOp::AvgPool { input }
            | SpecOp::GlobalAvgPool { input }
            | SpecOp::Reshape { input }
            | SpecOp::BatchNorm { input }
            | SpecOp::Exp { input } => vec![input],
            SpecOp::Add { lhs, rhs }
            | SpecOp::Multiply { lhs, rhs }
            | SpecOp::Maximum { lhs, rhs }
            | SpecOp::Concat { lhs, rhs } => vec![lhs, rhs],
        }
    }

    /// The operand consumers fall back to when this op is deleted.
    pub fn primary_operand(&self) -> usize {
        self.operands()[0]
    }

    /// Rewrite operand indices through `f`.
    pub fn map_operands(&mut self, f: impl Fn(usize) -> usize) {
        match self {
            SpecOp::Conv2d { input, .. }
            | SpecOp::Relu { input }
            | SpecOp::Sigmoid { input }
            | SpecOp::MaxPool { input }
            | SpecOp::AvgPool { input }
            | SpecOp::GlobalAvgPool { input }
            | SpecOp::Reshape { input }
            | SpecOp::BatchNorm { input }
            | SpecOp::Exp { input } => *input = f(*input),
            SpecOp::Add { lhs, rhs }
            | SpecOp::Multiply { lhs, rhs }
            | SpecOp::Maximum { lhs, rhs }
            | SpecOp::Concat { lhs, rhs } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
        }
    }

    /// Whether NeuroPilot's support matrix excludes this op.
    pub fn np_unsupported(&self) -> bool {
        matches!(self, SpecOp::BatchNorm { .. } | SpecOp::Exp { .. })
    }
}

/// A self-contained conformance case: everything needed to rebuild the
/// module, its weights, and its input tensor deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Seeds the weight/input/calibration tensors.
    pub seed: u64,
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Whether the float graph is rewritten into the QNN dialect.
    pub quantize: bool,
    /// The operator list; op `j` produces node `j + 1`.
    pub ops: Vec<SpecOp>,
}

impl GraphSpec {
    /// Total node count (input + one per op).
    pub fn num_nodes(&self) -> usize {
        self.ops.len() + 1
    }
}

impl fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} input=1x{}x{}x{} quantize={} ops={}",
            self.seed,
            self.in_channels,
            self.height,
            self.width,
            self.quantize,
            self.ops.len()
        )
    }
}

/// A spec that cannot be realized as a well-typed module (shape rules
/// violated after shrinking, or the quantizer rejected the graph).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A realized case: the module plus a deterministic input binding.
pub struct BuiltCase {
    /// The Relay module (QNN dialect when the spec asks for it).
    pub module: Module,
    /// Named input tensors for `main`.
    pub inputs: HashMap<String, Tensor>,
}

/// (channels, height, width) of each node during building/generation.
type NodeShape = (usize, usize, usize);

fn shape_after(op: &SpecOp, shapes: &[NodeShape]) -> Result<NodeShape, SpecError> {
    let get = |i: usize| -> Result<NodeShape, SpecError> {
        shapes
            .get(i)
            .copied()
            .ok_or_else(|| SpecError(format!("operand {i} out of range")))
    };
    match *op {
        SpecOp::Conv2d {
            input,
            out_channels,
            kernel,
            ..
        } => {
            let (_, h, w) = get(input)?;
            if kernel != 1 && kernel != 3 {
                return Err(SpecError(format!("conv kernel {kernel} not in {{1,3}}")));
            }
            if out_channels == 0 {
                return Err(SpecError("conv with zero output channels".into()));
            }
            Ok((out_channels, h, w))
        }
        SpecOp::Relu { input }
        | SpecOp::Sigmoid { input }
        | SpecOp::BatchNorm { input }
        | SpecOp::Exp { input } => get(input),
        SpecOp::MaxPool { input } | SpecOp::AvgPool { input } => {
            let (c, h, w) = get(input)?;
            if h < 2 || w < 2 || h % 2 != 0 || w % 2 != 0 {
                return Err(SpecError(format!("pool needs even dims >= 2, got {h}x{w}")));
            }
            Ok((c, h / 2, w / 2))
        }
        SpecOp::GlobalAvgPool { input } => {
            let (c, _, _) = get(input)?;
            Ok((c, 1, 1))
        }
        SpecOp::Add { lhs, rhs } | SpecOp::Multiply { lhs, rhs } | SpecOp::Maximum { lhs, rhs } => {
            let a = get(lhs)?;
            let b = get(rhs)?;
            if a != b {
                return Err(SpecError(format!("binary op on {a:?} vs {b:?}")));
            }
            Ok(a)
        }
        SpecOp::Concat { lhs, rhs } => {
            let (ca, ha, wa) = get(lhs)?;
            let (cb, hb, wb) = get(rhs)?;
            if (ha, wa) != (hb, wb) {
                return Err(SpecError(format!(
                    "concat on {ha}x{wa} vs {hb}x{wb} spatial dims"
                )));
            }
            Ok((ca + cb, ha, wa))
        }
        SpecOp::Reshape { input } => {
            let (c, h, w) = get(input)?;
            Ok((c, w, h))
        }
    }
}

/// Node shapes implied by a spec, or the first shape-rule violation.
pub fn node_shapes(spec: &GraphSpec) -> Result<Vec<NodeShape>, SpecError> {
    if spec.in_channels == 0 || spec.height == 0 || spec.width == 0 {
        return Err(SpecError("degenerate input shape".into()));
    }
    let mut shapes: Vec<NodeShape> = vec![(spec.in_channels, spec.height, spec.width)];
    for (j, op) in spec.ops.iter().enumerate() {
        for &o in &op.operands() {
            if o > j {
                return Err(SpecError(format!("op {j} references future node {o}")));
            }
        }
        let s = shape_after(op, &shapes)?;
        shapes.push(s);
    }
    Ok(shapes)
}

/// Mix a per-op weight seed out of the case seed (splitmix64 step — the
/// spec stays stable even if ops are removed around this one).
fn op_seed(case_seed: u64, j: usize) -> u64 {
    let mut z = case_seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add((j as u64).wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Realize a spec as a Relay module plus deterministic inputs. Quantized
/// specs are built float-first and rewritten through the post-training
/// quantizer with seeded calibration inputs.
pub fn build_case(spec: &GraphSpec) -> Result<BuiltCase, SpecError> {
    let shapes = node_shapes(spec)?;
    let x = var(
        "x",
        TensorType::f32([1, spec.in_channels, spec.height, spec.width]),
    );
    let mut nodes: Vec<Expr> = vec![x.clone()];
    for (j, op) in spec.ops.iter().enumerate() {
        let mut rng = TensorRng::new(op_seed(spec.seed, j));
        let e = match *op {
            SpecOp::Conv2d {
                input,
                out_channels,
                kernel,
                bias,
            } => {
                let (c_in, _, _) = shapes[input];
                let w = rng.uniform_f32([out_channels, c_in, kernel, kernel], -0.5, 0.5);
                let attrs = Conv2dAttrs::same(kernel / 2);
                if bias {
                    let b = rng.uniform_f32([out_channels], -0.2, 0.2);
                    builder::conv2d_bias(nodes[input].clone(), w, b, attrs)
                } else {
                    builder::conv2d(nodes[input].clone(), w, attrs)
                }
            }
            SpecOp::Relu { input } => builder::relu(nodes[input].clone()),
            SpecOp::Sigmoid { input } => builder::sigmoid(nodes[input].clone()),
            SpecOp::MaxPool { input } => {
                builder::max_pool2d(nodes[input].clone(), Pool2dAttrs::square(2))
            }
            SpecOp::AvgPool { input } => {
                builder::avg_pool2d(nodes[input].clone(), Pool2dAttrs::square(2))
            }
            SpecOp::GlobalAvgPool { input } => builder::global_avg_pool2d(nodes[input].clone()),
            SpecOp::Add { lhs, rhs } => builder::add(nodes[lhs].clone(), nodes[rhs].clone()),
            SpecOp::Multiply { lhs, rhs } => {
                builder::multiply(nodes[lhs].clone(), nodes[rhs].clone())
            }
            SpecOp::Maximum { lhs, rhs } => tvmnp_relay::expr::call(
                tvmnp_relay::OpKind::Maximum,
                vec![nodes[lhs].clone(), nodes[rhs].clone()],
            ),
            SpecOp::Concat { lhs, rhs } => {
                builder::concatenate(vec![nodes[lhs].clone(), nodes[rhs].clone()], 1)
            }
            SpecOp::Reshape { input } => {
                let (c, h, w) = shapes[input];
                builder::reshape(nodes[input].clone(), vec![1, c, w, h])
            }
            SpecOp::BatchNorm { input } => {
                let (c, _, _) = shapes[input];
                builder::batch_norm(
                    nodes[input].clone(),
                    rng.uniform_f32([c], 0.9, 1.1),
                    rng.uniform_f32([c], -0.1, 0.1),
                    rng.uniform_f32([c], -0.1, 0.1),
                    rng.uniform_f32([c], 0.9, 1.1),
                    1e-5,
                )
            }
            SpecOp::Exp { input } => {
                tvmnp_relay::expr::call(tvmnp_relay::OpKind::Exp, vec![nodes[input].clone()])
            }
        };
        nodes.push(e);
    }
    let body = nodes.last().expect("at least the input node").clone();
    let module = Module::from_main(Function::new(vec![x], body));

    let input_shape = [1, spec.in_channels, spec.height, spec.width];
    let mut inputs = HashMap::new();
    inputs.insert(
        "x".to_string(),
        TensorRng::new(spec.seed).uniform_f32(input_shape, -1.0, 1.0),
    );

    let module = if spec.quantize {
        let calibration: Vec<HashMap<String, Tensor>> = (1..=2u64)
            .map(|k| {
                let mut m = HashMap::new();
                m.insert(
                    "x".to_string(),
                    TensorRng::new(spec.seed.wrapping_add(k)).uniform_f32(input_shape, -1.0, 1.0),
                );
                m
            })
            .collect();
        quantize_with_calibration(&module, &calibration)
            .map_err(|e| SpecError(format!("quantizer rejected spec: {e}")))?
    } else {
        module
    };

    Ok(BuiltCase { module, inputs })
}

/// Draw a random, always-buildable spec for `case_seed`.
///
/// Quantized specs restrict the vocabulary to quantizer-supported ops;
/// float specs sprinkle in NeuroPilot-unsupported ops (~1 in 5 draws) so
/// the BYOC partitioner has real work and NP-only builds hit the
/// `Unsupported` path.
pub fn random_spec(case_seed: u64, quantize: bool) -> GraphSpec {
    let mut rng = SmallRng::seed_from_u64(case_seed ^ 0xc0f0_95ce_d15c_0de5);
    let in_channels = rng.gen_range(1..=3usize);
    let height = 2 * rng.gen_range(2..=4usize); // 4, 6, 8 — even for pooling
    let width = 2 * rng.gen_range(2..=4usize);
    let num_ops = rng.gen_range(3..=10usize);

    let mut spec = GraphSpec {
        seed: case_seed,
        in_channels,
        height,
        width,
        quantize,
        ops: Vec::new(),
    };
    let mut shapes: Vec<NodeShape> = vec![(in_channels, height, width)];

    for _ in 0..num_ops {
        // Bias operand choice toward recent nodes so most ops stay live on
        // the path to the output; older picks create sharing/branching.
        let pick = |rng: &mut SmallRng, candidates: &[usize]| -> usize {
            let back = rng.gen_range(0..candidates.len().min(3));
            candidates[candidates.len() - 1 - back]
        };
        let all: Vec<usize> = (0..shapes.len()).collect();
        let poolable: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| {
                let (_, h, w) = shapes[i];
                h >= 2 && w >= 2 && h % 2 == 0 && w % 2 == 0
            })
            .collect();
        // Same-shape pairs for binary ops: group nodes by shape.
        let mut by_shape: HashMap<NodeShape, Vec<usize>> = HashMap::new();
        for (i, &s) in shapes.iter().enumerate() {
            by_shape.entry(s).or_default().push(i);
        }
        let latest = shapes.len() - 1;
        let binary_partner: Vec<usize> = by_shape[&shapes[latest]].clone();
        // Concat partners only need matching spatial dims.
        let concat_partner: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| (shapes[i].1, shapes[i].2) == (shapes[latest].1, shapes[latest].2))
            .collect();

        let op = loop {
            let roll = rng.gen_range(0..100u32);
            let candidate = if !quantize && roll < 18 {
                // NP-unsupported draw (float vocabulary only).
                if rng.gen_bool(0.5) {
                    SpecOp::BatchNorm {
                        input: pick(&mut rng, &all),
                    }
                } else {
                    SpecOp::Exp {
                        input: pick(&mut rng, &all),
                    }
                }
            } else if roll < 40 {
                SpecOp::Conv2d {
                    input: pick(&mut rng, &all),
                    out_channels: rng.gen_range(1..=4usize),
                    kernel: if rng.gen_bool(0.5) { 1 } else { 3 },
                    bias: rng.gen_bool(0.5),
                }
            } else if roll < 50 {
                SpecOp::Relu {
                    input: pick(&mut rng, &all),
                }
            } else if roll < 56 && !quantize {
                SpecOp::Sigmoid {
                    input: pick(&mut rng, &all),
                }
            } else if roll < 62 && !poolable.is_empty() {
                if rng.gen_bool(0.5) {
                    SpecOp::MaxPool {
                        input: pick(&mut rng, &poolable),
                    }
                } else {
                    SpecOp::AvgPool {
                        input: pick(&mut rng, &poolable),
                    }
                }
            } else if roll < 66 {
                SpecOp::GlobalAvgPool {
                    input: pick(&mut rng, &all),
                }
            } else if roll < 78 {
                let partner = pick(&mut rng, &binary_partner);
                if quantize {
                    SpecOp::Add {
                        lhs: latest,
                        rhs: partner,
                    }
                } else {
                    match rng.gen_range(0..3u32) {
                        0 => SpecOp::Add {
                            lhs: latest,
                            rhs: partner,
                        },
                        1 => SpecOp::Multiply {
                            lhs: latest,
                            rhs: partner,
                        },
                        _ => SpecOp::Maximum {
                            lhs: latest,
                            rhs: partner,
                        },
                    }
                }
            } else if roll < 90 {
                SpecOp::Concat {
                    lhs: latest,
                    rhs: pick(&mut rng, &concat_partner),
                }
            } else {
                SpecOp::Reshape {
                    input: pick(&mut rng, &all),
                }
            };
            if shape_after(&candidate, &shapes).is_ok() {
                break candidate;
            }
        };
        let s = shape_after(&op, &shapes).expect("validated above");
        shapes.push(s);
        spec.ops.push(op);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::module_fingerprint;

    #[test]
    fn random_specs_always_build() {
        for seed in 0..60u64 {
            let spec = random_spec(seed, seed % 3 == 2);
            let built = build_case(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(built.inputs.contains_key("x"));
            assert!(!spec.ops.is_empty());
        }
    }

    #[test]
    fn build_is_deterministic_across_calls() {
        let spec = random_spec(11, false);
        let a = build_case(&spec).unwrap();
        let b = build_case(&spec).unwrap();
        assert_eq!(module_fingerprint(&a.module), module_fingerprint(&b.module));
        assert!(a.inputs["x"].bit_eq(&b.inputs["x"]));
    }

    #[test]
    fn invalid_operand_reference_is_rejected() {
        let spec = GraphSpec {
            seed: 1,
            in_channels: 2,
            height: 4,
            width: 4,
            quantize: false,
            ops: vec![SpecOp::Relu { input: 5 }],
        };
        assert!(build_case(&spec).is_err());
    }

    #[test]
    fn float_specs_eventually_draw_unsupported_ops() {
        let mut saw_unsupported = false;
        for seed in 0..40u64 {
            let spec = random_spec(seed, false);
            saw_unsupported |= spec.ops.iter().any(|o| o.np_unsupported());
        }
        assert!(saw_unsupported, "generator never mixed in unsupported ops");
    }
}
