//! The multi-frame session pool.
//!
//! A pool owns a small set of showcase sessions — one per assignment in
//! a *rotation* — sharing one artifact cache and one device-lock table.
//! Frame `i` is always served by session `i % rotation.len()`, so the
//! mapping (and therefore every numeric output) is independent of how
//! many frames run concurrently.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use tvmnp_byoc::{ArtifactCache, TargetMode};
use tvmnp_hwsim::CostModel;
use tvmnp_neuropilot::TargetPolicy;
use tvmnp_scheduler::ResourceLocks;
use tvmnp_vision::{Frame, FrameResult, Showcase, ShowcaseAssignment, ShowcaseFaults};

/// The throughput-tuned serving rotation: object detection on the GPU
/// (idle under the paper's latency-greedy assignments), anti-spoofing
/// alternating between a CPU-only and an APU-only build, emotion on the
/// APU. Alternating the anti-spoofing target splits the heaviest model
/// across two device queues — the pool analogue of §5.1's per-model
/// target search, optimizing throughput instead of single-frame latency.
pub fn serving_rotation() -> Vec<ShowcaseAssignment> {
    vec![
        ShowcaseAssignment {
            obj: TargetMode::Byoc(TargetPolicy::GpuPrefer),
            spoof: TargetMode::Byoc(TargetPolicy::CpuOnly),
            emotion: TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
        },
        ShowcaseAssignment {
            obj: TargetMode::Byoc(TargetPolicy::GpuPrefer),
            spoof: TargetMode::Byoc(TargetPolicy::ApuPrefer),
            emotion: TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
        },
    ]
}

/// A pool of showcase sessions serving frames concurrently.
pub struct SessionPool {
    sessions: Vec<Arc<Showcase>>,
    assignments: Vec<ShowcaseAssignment>,
    cache: Arc<ArtifactCache>,
}

impl SessionPool {
    /// Build one session per assignment in `rotation`, all sharing
    /// `cache` and one device-lock table. Assignments that agree on a
    /// (model, permutation, quant) triple share the compiled artifact.
    pub fn new(
        seed: u64,
        rotation: &[ShowcaseAssignment],
        cost: &CostModel,
        cache: Arc<ArtifactCache>,
    ) -> Self {
        assert!(!rotation.is_empty(), "a pool needs at least one session");
        let locks = ResourceLocks::new();
        let sessions = rotation
            .iter()
            .map(|a| {
                Arc::new(Showcase::new_cached(seed, *a, cost, &cache).with_locks(locks.clone()))
            })
            .collect();
        SessionPool {
            sessions,
            assignments: rotation.to_vec(),
            cache,
        }
    }

    /// Like [`SessionPool::new`], with every session's model dispatches
    /// routed through `faults` (see [`Showcase::with_faults`]).
    pub fn new_with_faults(
        seed: u64,
        rotation: &[ShowcaseAssignment],
        cost: &CostModel,
        cache: Arc<ArtifactCache>,
        faults: ShowcaseFaults,
    ) -> Self {
        assert!(!rotation.is_empty(), "a pool needs at least one session");
        let locks = ResourceLocks::new();
        let sessions = rotation
            .iter()
            .map(|a| {
                Arc::new(
                    Showcase::new_cached(seed, *a, cost, &cache)
                        .with_locks(locks.clone())
                        .with_faults(faults.clone()),
                )
            })
            .collect();
        SessionPool {
            sessions,
            assignments: rotation.to_vec(),
            cache,
        }
    }

    /// The assignment serving frame `frame_index`.
    pub fn assignment_for(&self, frame_index: usize) -> ShowcaseAssignment {
        self.assignments[frame_index % self.assignments.len()]
    }

    /// The session serving frame `frame_index`.
    pub fn session_for(&self, frame_index: usize) -> &Showcase {
        &self.sessions[frame_index % self.sessions.len()]
    }

    /// All sessions, in rotation order.
    pub fn sessions(&self) -> &[Arc<Showcase>] {
        &self.sessions
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Serve `frames` with up to `concurrency` frames in flight,
    /// returning per-frame results in input order. `concurrency <= 1`
    /// processes sequentially on the caller's thread; otherwise
    /// `concurrency` workers pull frames from a shared cursor, the §5.2
    /// locks serialize device access, and a bounded channel carries
    /// results back — memory stays O(concurrency) beyond the output
    /// buffer itself. Outputs are bit-identical across concurrency
    /// levels: the frame → session mapping is by frame index, and device
    /// exclusivity makes every model run independent of schedule.
    pub fn serve(&self, frames: &[Frame], concurrency: usize) -> Vec<FrameResult> {
        self.serve_inner(frames, concurrency, None)
    }

    /// Shared serve loop. With a [`crate::observe::TraceRuntime`], each
    /// frame runs under a per-frame trace context, workers pin their
    /// spans to stable Chrome-trace lanes, and panics are recorded to
    /// the flight recorder before propagating. With `None` this is
    /// exactly the pre-observability hot path — no trace guards, no
    /// extra atomics.
    pub(crate) fn serve_inner(
        &self,
        frames: &[Frame],
        concurrency: usize,
        tracing: Option<&crate::observe::TraceRuntime<'_>>,
    ) -> Vec<FrameResult> {
        if tvmnp_telemetry::is_enabled() {
            let label = if concurrency <= 1 { "1" } else { "n" };
            tvmnp_telemetry::counter_add(
                "serve.frames",
                &[("concurrent", label)],
                frames.len() as u64,
            );
        }
        if concurrency <= 1 || frames.len() <= 1 {
            return frames
                .iter()
                .enumerate()
                .map(|(i, f)| match tracing {
                    None => self.session_for(f.index).process_frame(f),
                    Some(rt) => rt.run_frame(self, i, f),
                })
                .collect();
        }
        let workers = concurrency.min(frames.len());
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<FrameResult>> = (0..frames.len()).map(|_| None).collect();
        let (tx, rx) = channel::bounded::<(usize, FrameResult)>(workers);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || {
                    if tracing.is_some() {
                        tvmnp_telemetry::set_worker_lane(Some(worker as u64));
                    }
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(frame) = frames.get(i) else { break };
                        let result = match tracing {
                            None => self.session_for(frame.index).process_frame(frame),
                            Some(rt) => rt.run_frame(self, i, frame),
                        };
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    }
                    if tracing.is_some() {
                        tvmnp_telemetry::set_worker_lane(None);
                    }
                });
            }
            drop(tx);
            while let Ok((i, result)) = rx.recv() {
                slots[i] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every admitted frame produces a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_vision::SyntheticVideo;

    fn clip(n: usize) -> Vec<Frame> {
        SyntheticVideo::new(42, 64, 64).frames(n)
    }

    fn pool() -> SessionPool {
        SessionPool::new(
            1000,
            &serving_rotation(),
            &CostModel::default(),
            Arc::new(ArtifactCache::new(usize::MAX)),
        )
    }

    fn assert_identical(a: &[FrameResult], b: &[FrameResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.frame_index, y.frame_index);
            assert_eq!(x.objects, y.objects);
            assert_eq!(x.faces, y.faces);
            assert_eq!(x.times, y.times);
            assert_eq!(x.dropped, y.dropped);
        }
    }

    #[test]
    fn concurrent_serving_matches_sequential_bitwise() {
        let pool = pool();
        let frames = clip(32);
        let seq = pool.serve(&frames, 1);
        let conc = pool.serve(&frames, 4);
        assert_identical(&seq, &conc);
        // Order preserved: results come back in input order even though
        // workers finish out of order.
        for (i, r) in conc.iter().enumerate() {
            assert_eq!(r.frame_index, frames[i].index);
        }
    }

    #[test]
    fn sessions_share_compiled_artifacts_through_the_cache() {
        let cache = Arc::new(ArtifactCache::new(usize::MAX));
        let _pool = SessionPool::new(
            1000,
            &serving_rotation(),
            &CostModel::default(),
            cache.clone(),
        );
        let stats = cache.stats();
        // Two sessions × three models = six builds, but obj-det and
        // emotion configs agree across the rotation: four compilations,
        // two cache hits.
        assert_eq!(stats.misses, 4, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
    }

    #[test]
    fn concurrency_higher_than_frame_count_is_fine() {
        let pool = pool();
        let frames = clip(3);
        let seq = pool.serve(&frames, 1);
        let conc = pool.serve(&frames, 16);
        assert_identical(&seq, &conc);
    }
}
