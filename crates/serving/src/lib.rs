//! # tvmnp-serving
//!
//! The concurrent serving layer on top of the showcase pipeline:
//!
//! * [`pool`] — a multi-frame session pool: `N` frames in flight at
//!   once, each processed by a cached showcase session whose model runs
//!   hold their devices exclusively (the §5.2 constraint enforced
//!   *across* frames). Outputs are returned in input order and are
//!   bit-identical to sequential processing — concurrency only changes
//!   the schedule, never the numerics.
//! * [`simulate`] — the deterministic simulated-time model of that pool:
//!   per-device FIFO queues fed by a bounded admission window, used by
//!   the `serve` bench workload to measure frames/sec without depending
//!   on host parallelism.
//!
//! Compiled artifacts come from one shared [`tvmnp_byoc::ArtifactCache`]:
//! sessions that agree on (model, permutation, quant config) share a
//! single compilation, so standing up a pool re-runs codegen only for
//! configurations never built before.

pub mod observe;
pub mod pool;
pub mod simulate;

pub use observe::{trace_id_for, PIPELINE};
pub use pool::{serving_rotation, SessionPool};
pub use simulate::{
    frame_segments, simulate_serve, simulate_serve_timeline, FrameTimeline, SegmentTiming,
    ServeSim, SimSegment,
};
