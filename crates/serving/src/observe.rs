//! Observed serving: the session pool wired into the live observability
//! plane (`tvmnp-observe`).
//!
//! [`SessionPool::serve_observed`] serves exactly like
//! [`SessionPool::serve`] — same frame → session mapping, same locks,
//! bit-identical results — while additionally:
//!
//! * running every frame under a per-frame trace context (trace id =
//!   frame index + 1), so executor nodes, retries, and fallback
//!   re-dispatches recorded during the frame reassemble into one causal
//!   span tree per frame;
//! * pinning concurrent workers to stable Chrome-trace lanes;
//! * replaying the frame results through the deterministic schedule
//!   simulator and stitching the resulting timeline — frame root,
//!   queue-wait intervals, stage summaries — onto each frame's trace;
//! * feeding the stats registry: per-{stage, device} latency sketches,
//!   the queue-wait vs compute split, cache hit rates, and the SLO
//!   check that triggers flight-recorder dumps;
//! * catching worker panics long enough to dump the flight window, then
//!   propagating them.

use crate::pool::SessionPool;
use crate::simulate::{frame_segments, simulate_serve_timeline, FrameTimeline, SimSegment};
use tvmnp_hwsim::DeviceKind;
use tvmnp_observe::ObservePlane;
use tvmnp_telemetry::trace::SpanIds;
use tvmnp_vision::{Frame, FrameResult};

/// Pipeline label stamped on every span and series the showcase pool
/// records.
pub const PIPELINE: &str = "showcase";

/// Per-serve trace state handed into the pool's serve loop: the plane
/// plus one pre-allocated root span id per frame slot, so worker-side
/// spans and the post-hoc schedule spans agree on each frame's root.
pub(crate) struct TraceRuntime<'a> {
    pub(crate) plane: &'a ObservePlane,
    pub(crate) roots: &'a [u64],
}

impl TraceRuntime<'_> {
    /// Run one frame under its trace context, recording (and
    /// propagating) any worker panic.
    pub(crate) fn run_frame(&self, pool: &SessionPool, slot: usize, frame: &Frame) -> FrameResult {
        let session_idx = frame.index % pool.sessions().len();
        let _trace = tvmnp_telemetry::begin_trace(
            trace_id_for(frame.index),
            self.roots[slot],
            vec![
                ("pipeline".to_string(), PIPELINE.to_string()),
                ("session".to_string(), session_idx.to_string()),
            ],
        );
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.session_for(frame.index).process_frame(frame)
        }));
        match run {
            Ok(result) => result,
            Err(payload) => {
                self.plane
                    .worker_panic(frame.index, &panic_detail(&payload));
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Trace id a frame's spans are recorded under (stable across runs:
/// derived from the frame index, never from a clock).
pub fn trace_id_for(frame_index: usize) -> u64 {
    frame_index as u64 + 1
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn device_label(devices: &[DeviceKind]) -> String {
    devices
        .iter()
        .map(|d| d.name())
        .collect::<Vec<_>>()
        .join("+")
}

impl SessionPool {
    /// Serve with full observability. Returns results bit-identical to
    /// [`SessionPool::serve`] on the same frames — observation never
    /// touches the numeric path. See the module docs for what is
    /// recorded where.
    pub fn serve_observed(
        &self,
        frames: &[Frame],
        concurrency: usize,
        plane: &ObservePlane,
    ) -> Vec<FrameResult> {
        let roots: Vec<u64> = frames
            .iter()
            .map(|_| tvmnp_telemetry::alloc_span_id())
            .collect();
        let runtime = TraceRuntime {
            plane,
            roots: &roots,
        };
        let results = self.serve_inner(frames, concurrency, Some(&runtime));

        // Replay the measured per-frame timings through the schedule
        // simulator to decompose each frame into admission wait, device
        // wait, and compute — then stitch that timeline onto the traces
        // and into the registry, in frame order (deterministic).
        let per_frame: Vec<Vec<SimSegment>> = results
            .iter()
            .map(|r| frame_segments(self.assignment_for(r.frame_index), r))
            .collect();
        let (_, timelines) = simulate_serve_timeline(&per_frame, concurrency);
        for ((result, timeline), root) in results.iter().zip(&timelines).zip(&roots) {
            self.record_frame_observation(plane, result, timeline, *root);
        }

        let stats = self.cache().stats();
        if stats.hits + stats.misses > 0 {
            plane.registry.gauge_set(
                "cache.hit_rate",
                &[],
                stats.hits as f64 / (stats.hits + stats.misses) as f64,
            );
        }
        plane.registry.counter_add("cache.hits", &[], stats.hits);
        plane
            .registry
            .counter_add("cache.misses", &[], stats.misses);
        results
    }

    fn record_frame_observation(
        &self,
        plane: &ObservePlane,
        result: &FrameResult,
        timeline: &FrameTimeline,
        root: u64,
    ) {
        let trace = trace_id_for(result.frame_index);
        let root_ids = SpanIds {
            trace,
            span: root,
            parent: 0,
        };
        let child = |ids: &SpanIds| SpanIds {
            trace,
            span: tvmnp_telemetry::alloc_span_id(),
            parent: ids.span,
        };

        // Frame root covers arrival (t = 0) to completion on the
        // simulated schedule; its children decompose the interval.
        tvmnp_telemetry::record_sim_span_traced(
            root_ids,
            "serve.frame",
            0.0,
            timeline.latency_us(),
            vec![
                ("pipeline".to_string(), PIPELINE.to_string()),
                ("frame".to_string(), result.frame_index.to_string()),
            ],
        );
        if timeline.admit_us > 0.0 {
            tvmnp_telemetry::record_sim_span_traced(
                child(&root_ids),
                "serve.wait",
                0.0,
                timeline.admit_us,
                vec![("reason".to_string(), "admission".to_string())],
            );
        }
        for seg in &timeline.segments {
            let device = device_label(&seg.devices);
            if seg.wait_us > 0.0 {
                tvmnp_telemetry::record_sim_span_traced(
                    child(&root_ids),
                    "serve.wait",
                    seg.start_us - seg.wait_us,
                    seg.wait_us,
                    vec![
                        ("reason".to_string(), "device".to_string()),
                        ("device".to_string(), device.clone()),
                    ],
                );
            }
            tvmnp_telemetry::record_sim_span_traced(
                child(&root_ids),
                "serve.stage",
                seg.start_us,
                seg.us,
                vec![
                    ("stage".to_string(), seg.stage.to_string()),
                    ("device".to_string(), device.clone()),
                ],
            );
            plane.registry.observe_us(
                "stage_us",
                &[
                    ("pipeline", PIPELINE),
                    ("stage", seg.stage),
                    ("device", &device),
                ],
                seg.us,
            );
        }
        plane.registry.observe_us(
            "wait_us",
            &[("pipeline", PIPELINE), ("reason", "admission")],
            timeline.admission_wait_us(),
        );
        plane.registry.observe_us(
            "wait_us",
            &[("pipeline", PIPELINE), ("reason", "device")],
            timeline.device_wait_us(),
        );
        plane.registry.observe_us(
            "compute_us",
            &[("pipeline", PIPELINE)],
            timeline.compute_us(),
        );
        // Last: frame_done runs the SLO check, so a breach dump's window
        // already contains this frame's spans.
        plane.frame_done(PIPELINE, result.frame_index, timeline.latency_us());
    }
}
