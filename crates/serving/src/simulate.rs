//! Deterministic simulated-time model of the serving pool.
//!
//! The host has no guaranteed parallelism (and the workload's time axis
//! is simulated anyway), so throughput is measured on the simulated
//! clock: each model invocation of each frame holds its target-mode
//! device set exclusively for its measured duration, devices serve
//! frames FIFO in admission order, and at most `concurrency` frames are
//! in flight. The inputs are the per-frame stage timings of a real
//! (sequential) run, so the simulation replays exactly the work the pool
//! executes — it only re-times it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tvmnp_hwsim::DeviceKind;
use tvmnp_vision::{resources_of, FrameResult, ShowcaseAssignment};

/// One model invocation burst of one frame: `devices` are held
/// exclusively for `us` microseconds of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSegment {
    /// Stage name (`obj-det` / `anti-spoof` / `emotion`).
    pub stage: &'static str,
    /// Devices the stage's target mode occupies.
    pub devices: Vec<DeviceKind>,
    /// Simulated duration, microseconds (all invocations of the stage on
    /// this frame, e.g. anti-spoofing over every candidate face).
    pub us: f64,
}

/// The segments one served frame runs, in stage order, from the frame's
/// measured result under `assignment`. Stages that did not run on this
/// frame (no candidate faces, no real faces, dropped) contribute nothing.
pub fn frame_segments(assignment: ShowcaseAssignment, result: &FrameResult) -> Vec<SimSegment> {
    let mut segments = Vec::new();
    for (stage, mode, us) in [
        ("obj-det", assignment.obj, result.times.obj_us),
        ("anti-spoof", assignment.spoof, result.times.spoof_us),
        ("emotion", assignment.emotion, result.times.emotion_us),
    ] {
        if us > 0.0 {
            segments.push(SimSegment {
                stage,
                devices: resources_of(mode),
                us,
            });
        }
    }
    segments
}

/// Outcome of one pool simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSim {
    /// Frames served.
    pub frames: usize,
    /// Admission window (frames in flight).
    pub concurrency: usize,
    /// Simulated time of the sequential baseline (the sum of every
    /// segment — exactly what [`SessionPool::serve`] at concurrency 1
    /// spends on model runs).
    ///
    /// [`SessionPool::serve`]: crate::pool::SessionPool::serve
    pub sequential_us: f64,
    /// Simulated makespan of the concurrent schedule.
    pub concurrent_us: f64,
}

impl ServeSim {
    /// Throughput gain of the concurrent schedule over sequential.
    pub fn speedup(&self) -> f64 {
        self.sequential_us / self.concurrent_us
    }

    /// Concurrent throughput in frames per second of simulated time.
    pub fn fps_concurrent(&self) -> f64 {
        self.frames as f64 / (self.concurrent_us / 1e6)
    }

    /// Sequential throughput in frames per second of simulated time.
    pub fn fps_sequential(&self) -> f64 {
        self.frames as f64 / (self.sequential_us / 1e6)
    }
}

/// One segment of a frame's simulated schedule, with its placement on
/// the concurrent timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTiming {
    /// Stage name (`obj-det` / `anti-spoof` / `emotion`).
    pub stage: &'static str,
    /// Devices the segment held.
    pub devices: Vec<DeviceKind>,
    /// When the segment started running.
    pub start_us: f64,
    /// Time spent waiting for its devices before `start_us` (device
    /// contention with other in-flight frames).
    pub wait_us: f64,
    /// Compute duration.
    pub us: f64,
}

/// One frame's complete simulated schedule: when it was admitted, where
/// its time went (queue wait vs compute), and the per-segment placement.
/// All frames arrive at t = 0, so `end_us` is also the frame's
/// end-to-end latency.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTimeline {
    /// When the admission window let the frame in (= admission wait).
    pub admit_us: f64,
    /// When the frame finished its last segment.
    pub end_us: f64,
    /// Per-segment placements, in stage order.
    pub segments: Vec<SegmentTiming>,
}

impl FrameTimeline {
    /// Time blocked on the admission window.
    pub fn admission_wait_us(&self) -> f64 {
        self.admit_us
    }

    /// Time blocked on busy devices after admission.
    pub fn device_wait_us(&self) -> f64 {
        self.segments.iter().map(|s| s.wait_us).sum()
    }

    /// Total queue wait: admission + device contention.
    pub fn queue_wait_us(&self) -> f64 {
        self.admission_wait_us() + self.device_wait_us()
    }

    /// Total compute time across segments.
    pub fn compute_us(&self) -> f64 {
        self.segments.iter().map(|s| s.us).sum()
    }

    /// End-to-end latency from arrival (t = 0) to completion.
    pub fn latency_us(&self) -> f64 {
        self.end_us
    }
}

/// Simulate serving `per_frame` segment lists with at most `concurrency`
/// frames in flight.
///
/// Frames are admitted in order; when the window is full the next frame
/// waits for the earliest in-flight completion. Within a frame, segments
/// run in order; each waits for every device in its set (acquired
/// together, mirroring `ResourceLocks::with_resources`) and then holds
/// them for its duration. Devices therefore serve segments in frame
/// admission order — per-device FIFO queues. Pure arithmetic on the
/// simulated clock: byte-deterministic across runs and hosts.
pub fn simulate_serve(per_frame: &[Vec<SimSegment>], concurrency: usize) -> ServeSim {
    simulate_serve_timeline(per_frame, concurrency).0
}

/// Like [`simulate_serve`], additionally returning every frame's
/// [`FrameTimeline`] — the queue-wait vs compute decomposition the
/// observability plane feeds into its live stats and span trees. Same
/// arithmetic, same admission order: the [`ServeSim`] returned here is
/// identical to [`simulate_serve`]'s.
pub fn simulate_serve_timeline(
    per_frame: &[Vec<SimSegment>],
    concurrency: usize,
) -> (ServeSim, Vec<FrameTimeline>) {
    let concurrency = concurrency.max(1);
    let device_index = |d: DeviceKind| DeviceKind::ALL.iter().position(|&x| x == d).unwrap();
    let mut device_free = [0.0f64; DeviceKind::ALL.len()];
    // Completion times of in-flight frames, earliest first. Simulated
    // times are non-negative finite f64s, so their IEEE-754 bit patterns
    // order exactly like the values — BinaryHeap over bits avoids a
    // float-ordering wrapper.
    let mut in_flight: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut admit_at = 0.0f64;
    let mut sequential_us = 0.0f64;
    let mut makespan = 0.0f64;
    let mut timelines = Vec::with_capacity(per_frame.len());
    for segments in per_frame {
        if in_flight.len() >= concurrency {
            let Reverse(bits) = in_flight.pop().unwrap();
            admit_at = admit_at.max(f64::from_bits(bits));
        }
        let mut t = admit_at;
        let mut timed_segments = Vec::with_capacity(segments.len());
        for seg in segments {
            let start = seg
                .devices
                .iter()
                .fold(t, |acc, &d| acc.max(device_free[device_index(d)]));
            let end = start + seg.us;
            for &d in &seg.devices {
                device_free[device_index(d)] = end;
            }
            sequential_us += seg.us;
            timed_segments.push(SegmentTiming {
                stage: seg.stage,
                devices: seg.devices.clone(),
                start_us: start,
                wait_us: start - t,
                us: seg.us,
            });
            t = end;
        }
        in_flight.push(Reverse(t.to_bits()));
        makespan = makespan.max(t);
        timelines.push(FrameTimeline {
            admit_us: admit_at,
            end_us: t,
            segments: timed_segments,
        });
    }
    (
        ServeSim {
            frames: per_frame.len(),
            concurrency,
            sequential_us,
            concurrent_us: makespan.max(f64::MIN_POSITIVE),
        },
        timelines,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{serving_rotation, SessionPool};
    use std::sync::Arc;
    use tvmnp_byoc::ArtifactCache;
    use tvmnp_hwsim::CostModel;
    use tvmnp_vision::SyntheticVideo;

    fn seg(devices: &[DeviceKind], us: f64) -> SimSegment {
        SimSegment {
            stage: "obj-det",
            devices: devices.to_vec(),
            us,
        }
    }

    #[test]
    fn concurrency_one_equals_sequential() {
        let frames = vec![
            vec![seg(&[DeviceKind::Cpu], 10.0), seg(&[DeviceKind::Apu], 5.0)],
            vec![seg(&[DeviceKind::Cpu], 7.0)],
        ];
        let sim = simulate_serve(&frames, 1);
        assert_eq!(sim.sequential_us, 22.0);
        assert_eq!(sim.concurrent_us, 22.0);
        assert_eq!(sim.speedup(), 1.0);
    }

    #[test]
    fn disjoint_devices_overlap_fully() {
        // Two frames on different devices: the second does not wait.
        let frames = vec![
            vec![seg(&[DeviceKind::Cpu], 10.0)],
            vec![seg(&[DeviceKind::Gpu], 10.0)],
        ];
        let sim = simulate_serve(&frames, 2);
        assert_eq!(sim.sequential_us, 20.0);
        assert_eq!(sim.concurrent_us, 10.0);
    }

    #[test]
    fn shared_device_serializes() {
        let frames = vec![
            vec![seg(&[DeviceKind::Cpu], 10.0)],
            vec![seg(&[DeviceKind::Cpu], 10.0)],
        ];
        let sim = simulate_serve(&frames, 2);
        assert_eq!(sim.concurrent_us, 20.0);
    }

    #[test]
    fn admission_window_bounds_in_flight_frames() {
        // Three frames on three different devices, window of 2: the
        // third frame waits for the first to finish even though its
        // device is idle.
        let frames = vec![
            vec![seg(&[DeviceKind::Cpu], 10.0)],
            vec![seg(&[DeviceKind::Gpu], 10.0)],
            vec![seg(&[DeviceKind::Apu], 10.0)],
        ];
        let window2 = simulate_serve(&frames, 2);
        assert_eq!(window2.concurrent_us, 20.0);
        let window3 = simulate_serve(&frames, 3);
        assert_eq!(window3.concurrent_us, 10.0);
    }

    #[test]
    fn timeline_decomposes_wait_and_compute() {
        let frames = vec![
            vec![seg(&[DeviceKind::Cpu], 10.0)],
            vec![seg(&[DeviceKind::Cpu], 5.0)],
        ];
        // Window 1: the second frame waits at admission.
        let (sim1, tl1) = simulate_serve_timeline(&frames, 1);
        assert_eq!(sim1, simulate_serve(&frames, 1));
        assert_eq!(tl1[1].admission_wait_us(), 10.0);
        assert_eq!(tl1[1].device_wait_us(), 0.0);
        assert_eq!(tl1[1].latency_us(), 15.0);
        // Window 2: admitted at once, but the shared CPU makes it wait.
        let (_, tl2) = simulate_serve_timeline(&frames, 2);
        assert_eq!(tl2[1].admission_wait_us(), 0.0);
        assert_eq!(tl2[1].device_wait_us(), 10.0);
        assert_eq!(tl2[1].segments[0].start_us, 10.0);
        // Every frame reconciles: latency = queue wait + compute.
        for tl in tl1.iter().chain(&tl2) {
            assert!((tl.latency_us() - tl.queue_wait_us() - tl.compute_us()).abs() < 1e-9);
        }
    }

    #[test]
    fn serving_rotation_clears_2x_at_concurrency_4() {
        let pool = SessionPool::new(
            1000,
            &serving_rotation(),
            &CostModel::default(),
            Arc::new(ArtifactCache::new(usize::MAX)),
        );
        let frames = SyntheticVideo::new(42, 64, 64).frames(64);
        let results = pool.serve(&frames, 1);
        let per_frame: Vec<Vec<SimSegment>> = results
            .iter()
            .map(|r| frame_segments(pool.assignment_for(r.frame_index), r))
            .collect();
        let sim = simulate_serve(&per_frame, 4);
        assert!(
            sim.speedup() >= 2.0,
            "throughput gate: {:.3}x at concurrency 4 (sequential {:.1} us, concurrent {:.1} us)",
            sim.speedup(),
            sim.sequential_us,
            sim.concurrent_us
        );
        // The admission window is a real constraint: serving strictly
        // sequentially through the same simulator gains nothing.
        assert!((simulate_serve(&per_frame, 1).speedup() - 1.0).abs() < 1e-12);
    }
}
