//! Tail attribution: name the top contributors to p99 per pipeline.
//!
//! Combines the two live data sources: the stats registry supplies the
//! p99 frame-latency threshold, and the reassembled span trees supply
//! per-frame causality. Frames at or above the threshold are the *tail
//! set*; their stage, queue-wait, and retry spans are aggregated by
//! (kind, name, device) and ranked, extending `tvmnp-report`'s offline
//! critical-path analysis to live serving.

use crate::registry::StatsSnapshot;
use crate::trace_tree::{arg, TraceTree};
use std::collections::BTreeMap;

/// One ranked contributor to tail latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TailContributor {
    /// What kind of time this is: `stage` (compute), `wait` (queueing),
    /// or `retry` (fault recovery).
    pub kind: String,
    /// Stage name or wait reason, e.g. `obj-det` or `admission`.
    pub name: String,
    /// Device label (`-` when not device-bound, e.g. admission waits).
    pub device: String,
    /// Total µs this contributor spent inside tail frames.
    pub total_us: f64,
    /// Number of tail frames it appeared in.
    pub frames: usize,
}

/// Attribution of a pipeline's p99 tail to its contributors.
#[derive(Debug, Clone)]
pub struct TailAttribution {
    /// Pipeline label the attribution covers.
    pub pipeline: String,
    /// p99 frame latency (µs) from the live sketch.
    pub p99_us: f64,
    /// Frames at or above the threshold.
    pub tail_frames: usize,
    /// Contributors, largest total first.
    pub contributors: Vec<TailContributor>,
}

/// Frame-latency series name the serving layer records per pipeline.
pub const FRAME_SERIES: &str = "frame_us";

/// Compute the tail attribution for `pipeline` from the live snapshot
/// and the reassembled span trees. Returns `None` when the pipeline has
/// no frame-latency series yet.
pub fn attribute(
    snapshot: &StatsSnapshot,
    trees: &[TraceTree],
    pipeline: &str,
) -> Option<TailAttribution> {
    let series = snapshot.series_named(FRAME_SERIES, &[("pipeline", pipeline)])?;
    let p99_us = series.p99_us;

    // (kind, name, device) -> (total_us, frames)
    let mut agg: BTreeMap<(String, String, String), (f64, usize)> = BTreeMap::new();
    let mut tail_frames = 0usize;
    for tree in trees {
        let Some(root) = tree.root() else { continue };
        if root.event.name != "serve.frame"
            || arg(&root.event, "pipeline") != Some(pipeline)
            || root.event.dur_us + 1e-9 < p99_us
        {
            continue;
        }
        tail_frames += 1;
        let mut seen: std::collections::BTreeSet<(String, String, String)> =
            std::collections::BTreeSet::new();
        for node in &tree.nodes {
            let key = match node.event.name.as_str() {
                "serve.stage" => (
                    "stage".to_string(),
                    arg(&node.event, "stage").unwrap_or("?").to_string(),
                    arg(&node.event, "device").unwrap_or("-").to_string(),
                ),
                "serve.wait" => (
                    "wait".to_string(),
                    arg(&node.event, "reason").unwrap_or("?").to_string(),
                    arg(&node.event, "device").unwrap_or("-").to_string(),
                ),
                "resilience.retry" => (
                    "retry".to_string(),
                    arg(&node.event, "cause").unwrap_or("retry").to_string(),
                    arg(&node.event, "device").unwrap_or("-").to_string(),
                ),
                _ => continue,
            };
            let entry = agg.entry(key.clone()).or_insert((0.0, 0));
            entry.0 += node.event.dur_us;
            if seen.insert(key) {
                entry.1 += 1;
            }
        }
    }

    let mut contributors: Vec<TailContributor> = agg
        .into_iter()
        .map(
            |((kind, name, device), (total_us, frames))| TailContributor {
                kind,
                name,
                device,
                total_us,
                frames,
            },
        )
        .collect();
    contributors.sort_by(|a, b| {
        b.total_us
            .partial_cmp(&a.total_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (&a.kind, &a.name, &a.device).cmp(&(&b.kind, &b.name, &b.device)))
    });

    Some(TailAttribution {
        pipeline: pipeline.to_string(),
        p99_us,
        tail_frames,
        contributors,
    })
}

impl TailAttribution {
    /// Render the attribution as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "tail attribution: pipeline={} p99={:.2}us tail-frames={}\n",
            self.pipeline, self.p99_us, self.tail_frames
        );
        out.push_str(&format!(
            "{:<6}  {:<16}  {:<10}  {:>12}  {:>6}  {:>7}\n",
            "kind", "name", "device", "total_us", "frames", "% tail"
        ));
        let total: f64 = self.contributors.iter().map(|c| c.total_us).sum();
        let denom = total.max(f64::MIN_POSITIVE);
        for c in &self.contributors {
            out.push_str(&format!(
                "{:<6}  {:<16}  {:<10}  {:>12.2}  {:>6}  {:>6.1}%\n",
                c.kind,
                c.name,
                c.device,
                c.total_us,
                c.frames,
                100.0 * c.total_us / denom
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::StatsRegistry;
    use crate::trace_tree::assemble;
    use tvmnp_telemetry::{Snapshot, SpanEvent, TimeDomain};

    fn span(
        name: &str,
        trace: u64,
        id: u64,
        parent: u64,
        dur: f64,
        extra: &[(&str, &str)],
    ) -> SpanEvent {
        let mut args = vec![
            ("trace".to_string(), trace.to_string()),
            ("span".to_string(), id.to_string()),
            ("parent".to_string(), parent.to_string()),
        ];
        args.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        SpanEvent {
            name: name.to_string(),
            ts_us: 0.0,
            dur_us: dur,
            tid: 0,
            domain: TimeDomain::Sim,
            args,
        }
    }

    #[test]
    fn tail_set_ranks_stage_and_wait_contributors() {
        let reg = StatsRegistry::default();
        // 99 fast frames + 1 slow: p99 lands at/near the slow frame.
        for _ in 0..99 {
            reg.observe_us(FRAME_SERIES, &[("pipeline", "showcase")], 100.0);
        }
        reg.observe_us(FRAME_SERIES, &[("pipeline", "showcase")], 1000.0);

        let events = vec![
            // Fast frame (trace 1) — below threshold, must not contribute.
            span("serve.frame", 1, 10, 0, 100.0, &[("pipeline", "showcase")]),
            span(
                "serve.stage",
                1,
                11,
                10,
                90.0,
                &[("stage", "obj-det"), ("device", "gpu")],
            ),
            // Slow frame (trace 2) — in the tail.
            span("serve.frame", 2, 20, 0, 1000.0, &[("pipeline", "showcase")]),
            span(
                "serve.stage",
                2,
                21,
                20,
                600.0,
                &[("stage", "obj-det"), ("device", "gpu")],
            ),
            span("serve.wait", 2, 22, 20, 300.0, &[("reason", "admission")]),
            span(
                "resilience.retry",
                2,
                23,
                21,
                100.0,
                &[("device", "apu"), ("cause", "transient dispatch fault")],
            ),
        ];
        let trees = assemble(&Snapshot {
            events,
            metrics: Vec::new(),
        });

        let tail = attribute(&reg.snapshot(), &trees, "showcase").expect("attribution");
        assert_eq!(tail.tail_frames, 1);
        assert_eq!(tail.contributors.len(), 3);
        assert_eq!(tail.contributors[0].kind, "stage");
        assert_eq!(tail.contributors[0].name, "obj-det");
        assert_eq!(tail.contributors[0].total_us, 600.0);
        assert_eq!(tail.contributors[1].kind, "wait");
        assert_eq!(tail.contributors[1].name, "admission");

        let table = tail.render_text();
        assert!(
            table.contains("obj-det") && table.contains("admission"),
            "{table}"
        );
    }

    #[test]
    fn missing_series_yields_none() {
        let reg = StatsRegistry::default();
        assert!(attribute(&reg.snapshot(), &[], "showcase").is_none());
    }
}
