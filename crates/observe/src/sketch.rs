//! Mergeable streaming quantile sketch (Greenwald–Khanna style).
//!
//! Holds an ε-approximate summary of a stream of latency samples in
//! `O(1/ε · log(εn))` memory: [`QuantileSketch::query`] returns a value
//! whose *rank* in the observed stream is within `ε·n` of the requested
//! quantile's nearest rank — the same nearest-rank convention
//! `tvmnp-report::MetricStats` uses for its offline percentiles, which
//! is what lets the tests reconcile the two within rank tolerance.
//!
//! Sketches merge: [`QuantileSketch::merge`] folds another sketch in
//! with additive error (two ε-sketches merge into a ≤2ε-sketch), so
//! per-shard / per-worker sketches can be combined at snapshot time.
//! Inserts are buffered and folded in batches, so the hot path is a
//! `Vec::push` plus an occasional compress. Everything is deterministic:
//! same samples in the same order → bit-identical summaries.

/// One GK tuple: `v` covers `g` samples beyond the previous entry, and
/// its rank is known up to `delta`.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    v: f64,
    g: u64,
    delta: u64,
}

/// Streaming ε-approximate quantile summary. See the module docs.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    epsilon: f64,
    /// Summary tuples, sorted by value.
    entries: Vec<Entry>,
    /// Pending inserts, folded in on flush.
    buffer: Vec<f64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Default rank error: 0.5% of the stream (p99 of 10k samples is off by
/// at most ~50 ranks).
pub const DEFAULT_EPSILON: f64 = 0.005;

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_EPSILON)
    }
}

impl QuantileSketch {
    /// A sketch with rank error `epsilon` (clamped to a sane range).
    pub fn new(epsilon: f64) -> QuantileSketch {
        QuantileSketch {
            epsilon: epsilon.clamp(1e-4, 0.5),
            entries: Vec::new(),
            buffer: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Rank error this sketch was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed sample (exact), `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed sample (exact), `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Observe one sample. Non-finite values are ignored.
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buffer.push(v);
        if self.buffer.len() >= (0.5 / self.epsilon).ceil() as usize {
            self.flush();
        }
    }

    /// Fold buffered inserts into the summary and compress it.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.buffer);
        batch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // New interior tuples may sit anywhere within the allowed rank
        // slack; extremes are exact.
        let slack = self.rank_slack();
        let singles = batch.into_iter().map(|v| {
            let delta = if v <= self.min || v >= self.max {
                0
            } else {
                slack.saturating_sub(1)
            };
            Entry { v, g: 1, delta }
        });
        self.entries = merge_sorted(std::mem::take(&mut self.entries), singles.collect());
        self.compress();
    }

    /// Maximum allowed `g + delta` per tuple: `2·ε·n`, the GK invariant.
    fn rank_slack(&self) -> u64 {
        (2.0 * self.epsilon * self.count as f64).floor() as u64
    }

    fn compress(&mut self) {
        let slack = self.rank_slack();
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        for entry in self.entries.drain(..) {
            match out.last() {
                // Never merge away the first tuple: it anchors the exact
                // minimum. The maximum survives because a merge removes
                // the *smaller* of the pair.
                Some(last) if out.len() >= 2 && last.g + entry.g + entry.delta <= slack => {
                    let absorbed = out.pop().map(|e| e.g).unwrap_or(0);
                    out.push(Entry {
                        v: entry.v,
                        g: entry.g + absorbed,
                        delta: entry.delta,
                    });
                }
                _ => out.push(entry),
            }
        }
        self.entries = out;
    }

    /// Value at quantile `q` in `[0, 1]`: a real observed sample whose
    /// rank is within `ε·n` of the nearest rank `⌈q·n⌉`. Returns `0.0`
    /// on an empty sketch.
    pub fn query(&mut self, q: f64) -> f64 {
        self.flush();
        if self.count == 0 || self.entries.is_empty() {
            return 0.0;
        }
        let n = self.count as f64;
        let target = (q.clamp(0.0, 1.0) * n).ceil().max(1.0) as u64;
        let allowed = (self.epsilon * n).ceil() as u64;
        let mut rmin = 0u64;
        let mut prev_v = self.entries[0].v;
        for entry in &self.entries {
            rmin += entry.g;
            let rmax = rmin + entry.delta;
            if rmax > target + allowed {
                return prev_v;
            }
            prev_v = entry.v;
        }
        prev_v
    }

    /// Fold `other` into `self`. Error is additive: merging two
    /// ε-sketches yields rank error at most `2ε`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.flush();
        let mut theirs = other.entries.clone();
        if !other.buffer.is_empty() {
            let mut batch = other.buffer.clone();
            batch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let singles = batch
                .into_iter()
                .map(|v| Entry { v, g: 1, delta: 0 })
                .collect();
            theirs = merge_sorted(theirs, singles);
        }
        self.entries = merge_sorted(std::mem::take(&mut self.entries), theirs);
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compress();
    }

    /// Number of summary tuples currently held (memory footprint proxy).
    pub fn tuples(&self) -> usize {
        self.entries.len() + self.buffer.len()
    }

    /// Serialize the summary as a JSON value. Flushes first so the
    /// output depends only on the observed stream, not on buffering
    /// state — same samples, same order → byte-identical JSON (the
    /// profile store's determinism contract rests on this).
    pub fn to_json(&mut self) -> serde_json::Value {
        self.flush();
        let entries: Vec<serde_json::Value> = self
            .entries
            .iter()
            .map(|e| serde_json::json!([e.v, e.g, e.delta]))
            .collect();
        serde_json::json!({
            "count": self.count,
            "entries": entries,
            "epsilon": self.epsilon,
            "max": self.max(),
            "min": self.min(),
            "sum": self.sum
        })
    }

    /// Rebuild a sketch from [`QuantileSketch::to_json`] output,
    /// validating the GK invariants (entries value-sorted, tuple counts
    /// summing to `count`) so a corrupted profile file is rejected
    /// instead of silently answering wrong quantiles.
    pub fn from_json(value: &serde_json::Value) -> Result<QuantileSketch, String> {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("sketch: missing numeric field `{key}`"))
        };
        let count = value
            .get("count")
            .and_then(serde_json::Value::as_u64)
            .ok_or("sketch: missing `count`")?;
        let epsilon = num("epsilon")?;
        let sum = num("sum")?;
        let raw_entries = value
            .get("entries")
            .and_then(serde_json::Value::as_array)
            .ok_or("sketch: missing `entries` array")?;
        let mut entries = Vec::with_capacity(raw_entries.len());
        let mut covered = 0u64;
        for (i, triple) in raw_entries.iter().enumerate() {
            let t = triple
                .as_array()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| format!("sketch: entry {i} is not a [v, g, delta] triple"))?;
            let v = t[0]
                .as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("sketch: entry {i} has a non-finite value"))?;
            let g = t[1]
                .as_u64()
                .ok_or_else(|| format!("sketch: entry {i} bad g"))?;
            let delta = t[2]
                .as_u64()
                .ok_or_else(|| format!("sketch: entry {i} bad delta"))?;
            if let Some(prev) = entries.last() {
                let prev: &Entry = prev;
                if v < prev.v {
                    return Err(format!("sketch: entries not value-sorted at index {i}"));
                }
            }
            covered += g;
            entries.push(Entry { v, g, delta });
        }
        if covered != count {
            return Err(format!(
                "sketch: tuple counts sum to {covered}, expected {count}"
            ));
        }
        let mut sketch = QuantileSketch::new(epsilon);
        if count > 0 {
            sketch.min = num("min")?;
            sketch.max = num("max")?;
        }
        sketch.count = count;
        sketch.sum = sum;
        sketch.entries = entries;
        Ok(sketch)
    }
}

/// Merge two value-sorted tuple lists, preserving order and stability
/// (left list first on ties — deterministic).
fn merge_sorted(a: Vec<Entry>, b: Vec<Entry>) -> Vec<Entry> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if x.v <= y.v {
                    out.extend(ai.next());
                } else {
                    out.extend(bi.next());
                }
            }
            (Some(_), None) => out.extend(ai.next()),
            (None, Some(_)) => out.extend(bi.next()),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank of `v` in `sorted` as a closed interval [lo, hi] (1-based),
    /// spanning duplicates.
    fn rank_bounds(sorted: &[f64], v: f64) -> (usize, usize) {
        let lo = sorted.partition_point(|&x| x < v) + 1;
        let hi = sorted.partition_point(|&x| x <= v);
        (lo, hi.max(lo))
    }

    fn assert_rank_close(sorted: &[f64], q: f64, got: f64, eps: f64) {
        let n = sorted.len() as f64;
        let target = (q * n).ceil().max(1.0);
        let allowed = (eps * n).ceil() + 1.0;
        let (lo, hi) = rank_bounds(sorted, got);
        assert!(
            (lo as f64) - allowed <= target && target <= (hi as f64) + allowed,
            "q={q}: value {got} has rank [{lo},{hi}], target {target} ± {allowed}"
        );
    }

    /// Deterministic pseudo-random stream (splitmix64-style).
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                // Long-tailed latencies in (0, ~20000] us.
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                50.0 + 20000.0 * u * u * u
            })
            .collect()
    }

    #[test]
    fn empty_sketch_is_zeroed() {
        let mut s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.query(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn quantiles_track_nearest_rank_within_epsilon() {
        let samples = stream(3, 20_000);
        let mut s = QuantileSketch::new(0.005);
        for &v in &samples {
            s.insert(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let got = s.query(q);
            assert_rank_close(&sorted, q, got, s.epsilon());
        }
        assert_eq!(s.count(), 20_000);
        assert_eq!(s.min(), sorted[0]);
        assert_eq!(s.max(), sorted[sorted.len() - 1]);
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut s = QuantileSketch::new(0.01);
        for &v in &stream(9, 50_000) {
            s.insert(v);
        }
        s.flush();
        assert!(
            s.tuples() < 2_000,
            "sketch grew to {} tuples for 50k samples",
            s.tuples()
        );
    }

    #[test]
    fn merge_matches_single_sketch_within_double_epsilon() {
        let all = stream(7, 12_000);
        let (a_half, b_half) = all.split_at(5_000);
        let mut a = QuantileSketch::new(0.005);
        let mut b = QuantileSketch::new(0.005);
        for &v in a_half {
            a.insert(v);
        }
        for &v in b_half {
            b.insert(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 12_000);

        let mut sorted = all.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let got = a.query(q);
            assert_rank_close(&sorted, q, got, 2.0 * a.epsilon());
        }
        let exact_sum: f64 = all.iter().sum();
        assert!((a.sum() - exact_sum).abs() < 1e-6 * exact_sum.abs());
    }

    #[test]
    fn determinism_same_stream_same_summary() {
        let samples = stream(11, 8_000);
        let run = || {
            let mut s = QuantileSketch::new(0.005);
            for &v in &samples {
                s.insert(v);
            }
            (s.query(0.5), s.query(0.95), s.query(0.99), s.tuples())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn json_roundtrip_preserves_summary_exactly() {
        let mut s = QuantileSketch::new(0.005);
        for &v in &stream(13, 9_000) {
            s.insert(v);
        }
        let dumped = s.to_json();
        let mut back = QuantileSketch::from_json(&dumped).expect("roundtrip parses");
        assert_eq!(back.count(), s.count());
        assert_eq!(back.sum(), s.sum());
        assert_eq!(back.min(), s.min());
        assert_eq!(back.max(), s.max());
        for q in [0.01, 0.5, 0.95, 0.99] {
            assert_eq!(back.query(q), s.query(q), "q={q} diverged after roundtrip");
        }
        // Serialization is stable: dumping the rebuilt sketch is byte-identical.
        assert_eq!(
            serde_json::to_string(&back.to_json()).unwrap(),
            serde_json::to_string(&dumped).unwrap()
        );
        // Corruption is rejected, not silently accepted.
        let mut broken = dumped.clone();
        if let serde_json::Value::Object(m) = &mut broken {
            m.insert("count".into(), serde_json::json!(1));
        }
        assert!(QuantileSketch::from_json(&broken).is_err());
        // Empty sketches roundtrip too.
        let mut empty = QuantileSketch::default();
        let back = QuantileSketch::from_json(&empty.to_json()).unwrap();
        assert_eq!(back.count(), 0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut s = QuantileSketch::default();
        for &v in &stream(5, 10_000) {
            s.insert(v);
        }
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.95, 0.99]
            .iter()
            .map(|&q| s.query(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles regressed: {qs:?}");
        }
    }
}
