//! `tvmnp-observe` — live request-level observability plane.
//!
//! Four pieces, built for the serving path of the TVM + NeuroPilot
//! reproduction (the paper's showcases are judged on end-to-end pipeline
//! latency, so this is where "what is p99 right now, and why" must be
//! answerable *while* the `SessionPool` is serving):
//!
//! * **Causal traces** — [`trace_tree`] reassembles per-frame span trees
//!   from the trace-stamped spans `tvmnp_telemetry::trace` records
//!   through workers, resilient re-dispatch, and executor nodes.
//! * **Streaming aggregation** — [`sketch`] (mergeable GK quantile
//!   sketches) behind the lock-sharded [`registry::StatsRegistry`]:
//!   live per-{model, device, stage} p50/p95/p99, queue-wait vs compute
//!   split, cache/retry/fallback rates, via [`StatsRegistry::snapshot`]
//!   and a periodic JSONL stats stream.
//! * **Flight recorder** — [`flight`]: a fixed ring of recent structured
//!   events dumped as self-contained `flight-<seq>.json` on fault
//!   exhaustion, SLO breach, or worker panic.
//! * **Tail attribution** — [`tail`]: names the top contributors
//!   (stage, device, wait-reason) to each pipeline's p99.
//!
//! [`ObservePlane`] bundles them and plugs into telemetry as the
//! process-global [`tvmnp_telemetry::EventSink`]; everything stays on
//! the one-atomic-load fast path until a plane is installed.

pub mod flight;
pub mod registry;
pub mod sketch;
pub mod tail;
pub mod trace_tree;

pub use flight::{validate_dump, FlightEvent, FlightRecorder};
pub use registry::{SeriesKey, SeriesStats, StatsRegistry, StatsSnapshot};
pub use sketch::QuantileSketch;
pub use tail::{attribute, TailAttribution, TailContributor};
pub use trace_tree::{assemble, SpanNode, TraceTree};

use parking_lot::Mutex;
use serde_json::json;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for an [`ObservePlane`].
#[derive(Debug, Clone)]
pub struct ObserveConfig {
    /// Per-frame latency SLO in µs; a frame exceeding it triggers a
    /// flight dump. `None` disables the SLO trigger.
    pub slo_us: Option<f64>,
    /// Flight-recorder ring capacity in events.
    pub flight_capacity: usize,
    /// Directory flight dumps are written into (`None` = keep the ring
    /// in memory only).
    pub flight_dir: Option<PathBuf>,
    /// Path of the JSONL stats stream (`None` = no stream file).
    pub stats_path: Option<PathBuf>,
    /// Emit a stats line every N observed frames (plus one final line
    /// from [`ObservePlane::finish`]).
    pub stats_every: u64,
    /// Rank error of the quantile sketches.
    pub epsilon: f64,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            slo_us: None,
            flight_capacity: flight::DEFAULT_CAPACITY,
            flight_dir: None,
            stats_path: None,
            stats_every: 32,
            epsilon: sketch::DEFAULT_EPSILON,
        }
    }
}

/// Event kinds that trigger an immediate flight dump when they reach the
/// plane through the event sink.
const DUMP_TRIGGERS: &[&str] = &["resilience.exhausted", "worker.panic"];

/// Label keys mirrored from events into registry counters. A whitelist
/// keeps per-frame fields (trace ids, frame indices) from exploding
/// counter cardinality.
const COUNTER_LABELS: &[&str] = &["device", "from", "to", "stage", "reason", "cause"];

/// The live observability plane: stats registry + flight recorder +
/// stream writer. Install with [`ObservePlane::install`] to start
/// receiving structured events from the instrumented crates.
pub struct ObservePlane {
    /// Live quantile series, counters, and gauges.
    pub registry: StatsRegistry,
    /// Ring buffer of recent structured events.
    pub flight: FlightRecorder,
    config: ObserveConfig,
    stream: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
    stream_seq: AtomicU64,
    frames: AtomicU64,
    dump_paths: Mutex<Vec<PathBuf>>,
}

impl ObservePlane {
    /// Build a plane from `config`, creating the stats-stream file (and
    /// parent directory) when one is configured.
    pub fn new(config: ObserveConfig) -> std::io::Result<ObservePlane> {
        let stream = match &config.stats_path {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(std::io::BufWriter::new(std::fs::File::create(path)?))
            }
            None => None,
        };
        Ok(ObservePlane {
            registry: StatsRegistry::new(config.epsilon),
            flight: FlightRecorder::new(config.flight_capacity, config.flight_dir.clone()),
            config,
            stream: Mutex::new(stream),
            stream_seq: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            dump_paths: Mutex::new(Vec::new()),
        })
    }

    /// Install this plane as the process-global telemetry event sink.
    pub fn install(self: &Arc<Self>) {
        tvmnp_telemetry::set_event_sink(self.clone() as Arc<dyn tvmnp_telemetry::EventSink>);
    }

    /// Remove the process-global event sink (whichever plane owns it).
    pub fn uninstall() {
        tvmnp_telemetry::clear_event_sink();
    }

    /// The configured per-frame SLO, if any.
    pub fn slo_us(&self) -> Option<f64> {
        self.config.slo_us
    }

    /// Frames observed so far via [`ObservePlane::frame_done`].
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Paths of every flight dump written so far.
    pub fn dump_paths(&self) -> Vec<PathBuf> {
        self.dump_paths.lock().clone()
    }

    /// Live registry snapshot (convenience).
    pub fn snapshot(&self) -> StatsSnapshot {
        self.registry.snapshot()
    }

    /// Note a completed frame: records its latency, checks the SLO, and
    /// emits a periodic stats line every `stats_every` frames.
    pub fn frame_done(&self, pipeline: &str, frame_index: usize, latency_us: f64) {
        self.registry
            .observe_us(tail::FRAME_SERIES, &[("pipeline", pipeline)], latency_us);
        if let Some(slo) = self.config.slo_us {
            if latency_us > slo {
                self.registry
                    .counter_add("slo.breach", &[("pipeline", pipeline)], 1);
                self.flight.record(
                    "slo.breach",
                    vec![
                        ("pipeline".to_string(), pipeline.to_string()),
                        ("frame".to_string(), frame_index.to_string()),
                        ("latency_us".to_string(), format!("{latency_us:.3}")),
                        ("slo_us".to_string(), format!("{slo:.3}")),
                    ],
                );
                self.trigger_dump("slo-breach");
            }
        }
        let n = self.frames.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.stats_every > 0 && n.is_multiple_of(self.config.stats_every) {
            self.emit_stats("periodic");
        }
    }

    /// Note a worker panic: records it and dumps the flight window.
    pub fn worker_panic(&self, frame_index: usize, detail: &str) {
        self.flight.record(
            "worker.panic",
            vec![
                ("frame".to_string(), frame_index.to_string()),
                ("detail".to_string(), detail.to_string()),
            ],
        );
        self.registry.counter_add("worker.panic", &[], 1);
        self.trigger_dump("worker-panic");
    }

    /// Append one stats line to the JSONL stream (no-op without a
    /// configured stream file).
    pub fn emit_stats(&self, reason: &str) {
        let mut guard = self.stream.lock();
        let Some(writer) = guard.as_mut() else { return };
        let seq = self.stream_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let line = json!({
            "frames": self.frames.load(Ordering::Relaxed),
            "reason": reason,
            "seq": seq,
            "stats": self.registry.snapshot().to_json(),
            "type": "stats",
        });
        // Stream writes are best-effort: serving must not fail on a full
        // disk, and the final `finish()` flush surfaces persistent errors.
        let _ = writeln!(writer, "{line}");
    }

    /// Emit the final stats line and flush the stream.
    pub fn finish(&self) -> std::io::Result<()> {
        self.emit_stats("final");
        if let Some(writer) = self.stream.lock().as_mut() {
            writer.flush()?;
        }
        Ok(())
    }

    fn trigger_dump(&self, reason: &str) {
        let context = json!({
            "frames": self.frames.load(Ordering::Relaxed),
            "stats": self.registry.snapshot().to_json(),
        });
        if let Ok(Some(path)) = self.flight.dump(reason, context) {
            self.dump_paths.lock().push(path);
        }
    }
}

impl tvmnp_telemetry::EventSink for ObservePlane {
    fn event(&self, kind: &str, fields: &[(String, String)]) {
        self.flight.record(kind, fields.to_vec());
        // Mirror discrete events (not chatty span ends) into counters so
        // retry/fallback/eviction *rates* show up in snapshots.
        if kind != "span.end" {
            let labels: Vec<(&str, &str)> = fields
                .iter()
                .filter(|(k, _)| COUNTER_LABELS.contains(&k.as_str()))
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            self.registry.counter_add(kind, &labels, 1);
        }
        if DUMP_TRIGGERS.contains(&kind) {
            self.trigger_dump(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn slo_breach_counts_and_dumps() {
        let dir = std::env::temp_dir().join("tvmnp-observe-slo-test");
        let _ = std::fs::remove_dir_all(&dir);
        let plane = ObservePlane::new(ObserveConfig {
            slo_us: Some(500.0),
            flight_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();

        plane.frame_done("showcase", 0, 200.0);
        assert!(plane.dump_paths().is_empty());
        plane.frame_done("showcase", 1, 900.0);
        let dumps = plane.dump_paths();
        assert_eq!(dumps.len(), 1, "breach triggers exactly one dump");
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&dumps[0]).unwrap()).unwrap();
        assert_eq!(validate_dump(&doc), None);
        assert_eq!(doc["reason"].as_str(), Some("slo-breach"));

        let snap = plane.snapshot();
        assert_eq!(snap.counter("slo.breach", &[("pipeline", "showcase")]), 1);
        assert_eq!(
            snap.series_named(tail::FRAME_SERIES, &[("pipeline", "showcase")])
                .unwrap()
                .count,
            2
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_events_mirror_to_counters_and_trigger_dumps() {
        use tvmnp_telemetry::EventSink;
        let dir = std::env::temp_dir().join("tvmnp-observe-sink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let plane = ObservePlane::new(ObserveConfig {
            flight_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();

        plane.event(
            "resilience.fallback",
            &fields(&[("from", "np-apu"), ("to", "np-cpu-apu"), ("trace", "7")]),
        );
        plane.event("span.end", &fields(&[("name", "serve.frame")]));
        plane.event("resilience.exhausted", &fields(&[("model", "emotion")]));

        let snap = plane.snapshot();
        assert_eq!(
            snap.counter(
                "resilience.fallback",
                &[("from", "np-apu"), ("to", "np-cpu-apu")]
            ),
            1,
            "trace label must not leak into counters"
        );
        assert_eq!(snap.counter_total("span.end"), 0, "span ends not counted");
        assert_eq!(plane.dump_paths().len(), 1, "exhaustion dumped");
        let window = plane.flight.window();
        assert_eq!(window.len(), 3, "span ends still land in the ring");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_stream_is_valid_jsonl() {
        let dir = std::env::temp_dir().join("tvmnp-observe-stream-test");
        let _ = std::fs::remove_dir_all(&dir);
        let stats_path = dir.join("stats.jsonl");
        let plane = ObservePlane::new(ObserveConfig {
            stats_path: Some(stats_path.clone()),
            stats_every: 2,
            ..Default::default()
        })
        .unwrap();
        for i in 0..5 {
            plane.frame_done("showcase", i, 100.0 + i as f64);
        }
        plane.finish().unwrap();

        let text = std::fs::read_to_string(&stats_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "frames 2 and 4 + final:\n{text}");
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["type"].as_str(), Some("stats"));
            assert_eq!(v["seq"].as_u64(), Some(i as u64 + 1));
            assert!(v["stats"]["series"].as_array().is_some());
        }
        let last: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(last["reason"].as_str(), Some("final"));
        assert_eq!(last["frames"].as_u64(), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
