//! Lock-sharded live stats registry: labeled quantile series, counters,
//! and gauges, with a consistent [`StatsRegistry::snapshot`].
//!
//! Writers hash their series key onto one of [`SHARDS`] mutexes, so
//! concurrent serving workers recording different series almost never
//! contend; a snapshot walks the shards in order and merges everything
//! into one deterministic, key-sorted view. Latency series are
//! [`QuantileSketch`]es (p50/p95/p99 per {pipeline, stage, device,
//! kind}); counters and gauges cover rates (cache hits, retries,
//! fallbacks, SLO breaches).

use crate::sketch::QuantileSketch;
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Number of mutex shards. Power of two, comfortably above the serving
/// pool's worker counts.
pub const SHARDS: usize = 16;

/// A series identity: metric name plus sorted labels. Ordered, so
/// snapshots iterate deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name, e.g. `latency_us` or `wait_us`.
    pub name: String,
    /// Sorted label pairs, e.g. `[(pipeline, showcase), (stage, obj-det)]`.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Build a key; labels are sorted for identity.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// The label's value, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `name{k=v,...}` rendering, matching the telemetry metric style.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }

    /// Deterministic shard index (FNV-1a over the rendered key).
    fn shard(&self) -> usize {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in self.render().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        (hash as usize) % SHARDS
    }
}

#[derive(Default)]
struct Shard {
    series: BTreeMap<SeriesKey, QuantileSketch>,
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
}

/// Sharded live metrics store. Cheap to write from many threads; cheap
/// enough to snapshot every few frames.
pub struct StatsRegistry {
    epsilon: f64,
    shards: Vec<Mutex<Shard>>,
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry::new(crate::sketch::DEFAULT_EPSILON)
    }
}

impl StatsRegistry {
    /// A registry whose sketches carry rank error `epsilon`.
    pub fn new(epsilon: f64) -> StatsRegistry {
        StatsRegistry {
            epsilon,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, key: &SeriesKey) -> &Mutex<Shard> {
        &self.shards[key.shard()]
    }

    /// Record one latency/duration sample into a labeled series.
    pub fn observe_us(&self, name: &str, labels: &[(&str, &str)], us: f64) {
        let key = SeriesKey::new(name, labels);
        let mut shard = self.shard(&key).lock();
        let epsilon = self.epsilon;
        shard
            .series
            .entry(key)
            .or_insert_with(|| QuantileSketch::new(epsilon))
            .insert(us);
    }

    /// Add to a labeled counter.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = SeriesKey::new(name, labels);
        let mut shard = self.shard(&key).lock();
        *shard.counters.entry(key).or_insert(0) += delta;
    }

    /// Set a labeled gauge to its latest value.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = SeriesKey::new(name, labels);
        let mut shard = self.shard(&key).lock();
        shard.gauges.insert(key, value);
    }
}

/// One series in a snapshot: exact count/sum/min/max plus sketch
/// quantiles.
#[derive(Debug, Clone)]
pub struct SeriesStats {
    /// Identity of the series.
    pub key: SeriesKey,
    /// Samples observed.
    pub count: u64,
    /// Exact sum of samples (µs).
    pub sum_us: f64,
    /// Exact minimum (µs).
    pub min_us: f64,
    /// Exact maximum (µs).
    pub max_us: f64,
    /// Approximate median (µs).
    pub p50_us: f64,
    /// Approximate 95th percentile (µs).
    pub p95_us: f64,
    /// Approximate 99th percentile (µs).
    pub p99_us: f64,
}

/// A consistent, key-sorted view of every series, counter, and gauge.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Quantile series, sorted by key.
    pub series: Vec<SeriesStats>,
    /// Counters, sorted by key.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauges, sorted by key.
    pub gauges: Vec<(SeriesKey, f64)>,
}

impl StatsRegistry {
    /// Merge every shard into one deterministic snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut series: BTreeMap<SeriesKey, QuantileSketch> = BTreeMap::new();
        let mut counters: BTreeMap<SeriesKey, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<SeriesKey, f64> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, sketch) in &shard.series {
                match series.get_mut(key) {
                    Some(existing) => existing.merge(sketch),
                    None => {
                        series.insert(key.clone(), sketch.clone());
                    }
                }
            }
            for (key, v) in &shard.counters {
                *counters.entry(key.clone()).or_insert(0) += v;
            }
            for (key, v) in &shard.gauges {
                gauges.insert(key.clone(), *v);
            }
        }
        StatsSnapshot {
            series: series
                .into_iter()
                .map(|(key, mut sketch)| SeriesStats {
                    key,
                    count: sketch.count(),
                    sum_us: sketch.sum(),
                    min_us: sketch.min(),
                    max_us: sketch.max(),
                    p50_us: sketch.query(0.50),
                    p95_us: sketch.query(0.95),
                    p99_us: sketch.query(0.99),
                })
                .collect(),
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
        }
    }
}

impl StatsSnapshot {
    /// The series with this exact key, if present.
    pub fn series_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesStats> {
        let key = SeriesKey::new(name, labels);
        self.series.iter().find(|s| s.key == key)
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = SeriesKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of all counters with this name, any labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// `hits / (hits + misses)` for a pair of counters, `None` when both
    /// are zero.
    pub fn rate(&self, hits: &str, misses: &str) -> Option<f64> {
        let h = self.counter_total(hits);
        let m = self.counter_total(misses);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Every series satisfies `p50 ≤ p95 ≤ p99` and basic sanity
    /// (`min ≤ p50`, `p99 ≤ max`, non-negative count). Returns the first
    /// violating series key, `None` when consistent.
    pub fn consistency_violation(&self) -> Option<String> {
        for s in &self.series {
            let ordered = s.min_us <= s.p50_us + 1e-9
                && s.p50_us <= s.p95_us + 1e-9
                && s.p95_us <= s.p99_us + 1e-9
                && s.p99_us <= s.max_us + 1e-9;
            if !ordered {
                return Some(s.key.render());
            }
        }
        None
    }

    /// JSON rendering for the periodic stats stream: one self-contained
    /// object, sorted keys throughout.
    pub fn to_json(&self) -> Value {
        let series: Vec<Value> = self
            .series
            .iter()
            .map(|s| {
                json!({
                    "count": s.count,
                    "key": s.key.render(),
                    "max_us": s.max_us,
                    "min_us": s.min_us,
                    "p50_us": s.p50_us,
                    "p95_us": s.p95_us,
                    "p99_us": s.p99_us,
                    "sum_us": s.sum_us,
                })
            })
            .collect();
        let counters: Vec<Value> = self
            .counters
            .iter()
            .map(|(k, v)| json!({ "key": k.render(), "value": *v }))
            .collect();
        let gauges: Vec<Value> = self
            .gauges
            .iter()
            .map(|(k, v)| json!({ "key": k.render(), "value": *v }))
            .collect();
        json!({ "counters": counters, "gauges": gauges, "series": series })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulate_and_snapshot_sorts() {
        let reg = StatsRegistry::default();
        for i in 0..100 {
            reg.observe_us(
                "latency_us",
                &[("stage", "obj-det"), ("device", "gpu")],
                100.0 + i as f64,
            );
            reg.observe_us(
                "latency_us",
                &[("stage", "emotion"), ("device", "apu")],
                50.0,
            );
        }
        reg.counter_add("cache.hits", &[], 3);
        reg.counter_add("cache.misses", &[], 1);
        reg.gauge_set("slo_us", &[], 2500.0);

        let snap = reg.snapshot();
        assert_eq!(snap.series.len(), 2);
        assert!(snap.series[0].key < snap.series[1].key, "sorted by key");
        let obj = snap
            .series_named("latency_us", &[("device", "gpu"), ("stage", "obj-det")])
            .expect("obj-det series");
        assert_eq!(obj.count, 100);
        assert_eq!(obj.min_us, 100.0);
        assert_eq!(obj.max_us, 199.0);
        assert_eq!(snap.counter("cache.hits", &[]), 3);
        assert_eq!(snap.rate("cache.hits", "cache.misses"), Some(0.75));
        assert_eq!(snap.consistency_violation(), None);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let reg = StatsRegistry::default();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let reg = &reg;
                scope.spawn(move || {
                    let stage = if t % 2 == 0 { "obj-det" } else { "emotion" };
                    for i in 0..1000 {
                        reg.observe_us("latency_us", &[("stage", stage)], (t * 1000 + i) as f64);
                        reg.counter_add("frames", &[("stage", stage)], 1);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let total: u64 = snap.series.iter().map(|s| s.count).sum();
        assert_eq!(total, 8000);
        assert_eq!(snap.counter_total("frames"), 8000);
        assert_eq!(snap.consistency_violation(), None);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let reg = StatsRegistry::default();
            for i in 0..500 {
                reg.observe_us("latency_us", &[("stage", "obj-det")], (i % 37) as f64);
            }
            reg.counter_add("frames", &[], 500);
            reg.snapshot().to_json().to_string()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"key\":\"latency_us{stage=obj-det}\""), "{a}");
    }

    #[test]
    fn key_rendering_sorts_labels() {
        let key = SeriesKey::new("x", &[("z", "1"), ("a", "2")]);
        assert_eq!(key.render(), "x{a=2,z=1}");
        assert_eq!(key.label("z"), Some("1"));
    }
}
