//! Fault-triggered flight recorder: a fixed-size ring of recent
//! structured events, dumped as a self-contained JSON document when
//! something goes wrong.
//!
//! The ring continuously absorbs events (span ends, faults, retries,
//! fallback transitions, cache evictions, frame drops) at O(1) per
//! event; nothing is written anywhere until a *trigger* fires — fault
//! exhaustion, an SLO breach, or a worker panic — at which point the
//! current window is serialized to `flight-<seq>.json` (`seq` = logical
//! event sequence at dump time; the recorder is deliberately wall-clock
//! free so runs are reproducible). That gives post-mortem causality
//! around the failure without the cost of always-on full tracing.

use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::path::PathBuf;

/// One ring entry: a structured event with a process-monotonic sequence
/// number as its logical timestamp.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotonic logical timestamp (1-based, per recorder).
    pub seq: u64,
    /// Dotted event kind, e.g. `fault.injected` or `resilience.fallback`.
    pub kind: String,
    /// Key/value payload.
    pub fields: Vec<(String, String)>,
}

impl FlightEvent {
    /// The field's value, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

struct Ring {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
    /// Events evicted from the ring since the start of the run.
    dropped: u64,
    /// Logical timestamp of the last dump (dedupes trigger storms: a
    /// second trigger with no new events writes nothing).
    last_dump_seq: u64,
    dumps: u64,
}

/// Fixed-capacity recorder of recent events. See the module docs.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
    out_dir: Option<PathBuf>,
}

/// Default ring capacity: enough for the spans/faults of the last few
/// dozen served frames.
pub const DEFAULT_CAPACITY: usize = 1024;

impl FlightRecorder {
    /// A recorder holding at most `capacity` events, dumping into
    /// `out_dir` (no files are ever written when `out_dir` is `None`).
    pub fn new(capacity: usize, out_dir: Option<PathBuf>) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(8),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                next_seq: 1,
                dropped: 0,
                last_dump_seq: 0,
                dumps: 0,
            }),
            out_dir,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, evicting the oldest when full. Returns the
    /// event's logical timestamp.
    pub fn record(&self, kind: &str, fields: Vec<(String, String)>) -> u64 {
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent {
            seq,
            kind: kind.to_string(),
            fields,
        });
        seq
    }

    /// Copy of the current window, oldest first.
    pub fn window(&self) -> Vec<FlightEvent> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// Number of dumps produced so far.
    pub fn dumps(&self) -> u64 {
        self.ring.lock().dumps
    }

    /// Serialize the current window as a self-contained dump document.
    /// `reason` names the trigger; `context` is extra caller-provided
    /// state (e.g. the live stats snapshot) embedded alongside.
    pub fn dump_value(&self, reason: &str, context: Value) -> Value {
        let ring = self.ring.lock();
        let events: Vec<Value> = ring
            .events
            .iter()
            .map(|e| {
                let fields: Vec<Value> = e
                    .fields
                    .iter()
                    .map(|(k, v)| json!({ "key": k, "value": v }))
                    .collect();
                json!({ "fields": fields, "kind": e.kind, "seq": e.seq })
            })
            .collect();
        json!({
            "capacity": self.capacity,
            "context": context,
            "events": events,
            "reason": reason,
            "schema": "tvmnp.flight.v1",
            "window": json!({
                "dropped_before_window": ring.dropped,
                "first_seq": ring.events.front().map(|e| e.seq).unwrap_or(0),
                "last_seq": ring.events.back().map(|e| e.seq).unwrap_or(0),
            })
        })
    }

    /// Trigger a dump: write `flight-<seq>.json` into the recorder's
    /// output directory and return its path. Returns `Ok(None)` when
    /// there is no output directory, the ring is empty, or nothing new
    /// happened since the last dump (trigger-storm dedupe).
    pub fn dump(&self, reason: &str, context: Value) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.out_dir else {
            return Ok(None);
        };
        let last_seq = {
            let mut ring = self.ring.lock();
            let last = ring.events.back().map(|e| e.seq).unwrap_or(0);
            if last == 0 || last == ring.last_dump_seq {
                return Ok(None);
            }
            ring.last_dump_seq = last;
            ring.dumps += 1;
            last
        };
        let doc = self.dump_value(reason, context);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-{last_seq}.json"));
        std::fs::write(&path, doc.to_string())?;
        Ok(Some(path))
    }
}

/// Validate a flight-dump document against the `tvmnp.flight.v1` schema.
/// Returns a description of the first violation, `None` when well-formed.
pub fn validate_dump(doc: &Value) -> Option<String> {
    if doc["schema"].as_str() != Some("tvmnp.flight.v1") {
        return Some(format!("bad schema field: {}", doc["schema"]));
    }
    if doc["reason"].as_str().is_none_or(str::is_empty) {
        return Some("missing reason".to_string());
    }
    if doc["capacity"].as_u64().is_none() {
        return Some("missing capacity".to_string());
    }
    let Some(events) = doc["events"].as_array() else {
        return Some("events is not an array".to_string());
    };
    if events.is_empty() {
        return Some("empty event window".to_string());
    }
    let mut prev_seq = 0u64;
    for (i, e) in events.iter().enumerate() {
        let Some(seq) = e["seq"].as_u64() else {
            return Some(format!("event {i}: missing seq"));
        };
        if seq <= prev_seq {
            return Some(format!("event {i}: seq {seq} not increasing"));
        }
        prev_seq = seq;
        if e["kind"].as_str().is_none_or(str::is_empty) {
            return Some(format!("event {i}: missing kind"));
        }
        if e["fields"].as_array().is_none() {
            return Some(format!("event {i}: fields is not an array"));
        }
    }
    let window = &doc["window"];
    let first = window["first_seq"].as_u64();
    let last = window["last_seq"].as_u64();
    if first.is_none() || last.is_none() {
        return Some("window bounds missing".to_string());
    }
    if first != events.first().and_then(|e| e["seq"].as_u64())
        || last != events.last().and_then(|e| e["seq"].as_u64())
    {
        return Some("window bounds do not match events".to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let rec = FlightRecorder::new(8, None);
        for i in 0..20 {
            rec.record("span.end", fields(&[("i", &i.to_string())]));
        }
        let window = rec.window();
        assert_eq!(window.len(), 8);
        assert_eq!(window[0].seq, 13, "oldest events evicted");
        assert_eq!(window[7].seq, 20);
        for pair in window.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn dump_document_is_valid_and_self_contained() {
        let rec = FlightRecorder::new(16, None);
        rec.record("fault.injected", fields(&[("device", "apu")]));
        rec.record(
            "resilience.fallback",
            fields(&[
                ("from", "np-apu"),
                ("to", "np-cpu-apu"),
                ("cause", "device lost"),
            ]),
        );
        let doc = rec.dump_value("fault-exhaustion", json!({ "frames": 4 }));
        assert_eq!(validate_dump(&doc), None, "{doc}");
        assert_eq!(doc["reason"].as_str(), Some("fault-exhaustion"));
        assert_eq!(doc["context"]["frames"].as_u64(), Some(4));
        let kinds: Vec<&str> = doc["events"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e["kind"].as_str())
            .collect();
        assert_eq!(kinds, ["fault.injected", "resilience.fallback"]);
    }

    #[test]
    fn dump_writes_file_and_dedupes_triggers() {
        let dir = std::env::temp_dir().join("tvmnp-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(16, Some(dir.clone()));
        assert_eq!(
            rec.dump("slo-breach", json!({})).unwrap(),
            None,
            "empty ring"
        );

        rec.record("slo.breach", fields(&[("frame", "7")]));
        let path = rec
            .dump("slo-breach", json!({}))
            .unwrap()
            .expect("dump path");
        assert!(path.ends_with("flight-1.json"), "{path:?}");
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(validate_dump(&doc), None);

        // Same window, second trigger: no new file.
        assert_eq!(rec.dump("slo-breach", json!({})).unwrap(), None);
        assert_eq!(rec.dumps(), 1);
        rec.record("slo.breach", fields(&[("frame", "8")]));
        assert!(rec.dump("slo-breach", json!({})).unwrap().is_some());
        assert_eq!(rec.dumps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_dump(&json!({})).is_some());
        assert!(validate_dump(&json!({
            "schema": "tvmnp.flight.v1",
            "reason": "x",
            "capacity": 8,
            "events": json!([]),
            "window": json!({ "first_seq": 0, "last_seq": 0 })
        }))
        .is_some());
        assert!(validate_dump(&json!({
            "schema": "tvmnp.flight.v1",
            "reason": "x",
            "capacity": 8,
            "events": json!([
                json!({ "seq": 2, "kind": "a", "fields": json!([]) }),
                json!({ "seq": 1, "kind": "b", "fields": json!([]) })
            ]),
            "window": json!({ "first_seq": 2, "last_seq": 1 })
        }))
        .is_some());
    }
}
