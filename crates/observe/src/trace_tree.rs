//! Reassemble causal span trees from a telemetry snapshot.
//!
//! Spans recorded under a trace context carry `trace`/`span`/`parent`
//! attributes (see `tvmnp_telemetry::trace`); this module groups a
//! snapshot's spans by trace id and rebuilds each request's tree —
//! frame root, stage summaries, executor nodes, retries, and fallback
//! re-dispatches — no matter how the spans of concurrent requests
//! interleaved in the collector.

use tvmnp_telemetry::{Snapshot, SpanEvent};

/// One span in a reassembled tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The recorded span (name, timestamps, attributes).
    pub event: SpanEvent,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (`0` = root of the trace).
    pub parent_id: u64,
    /// Indices of child nodes within [`TraceTree::nodes`].
    pub children: Vec<usize>,
}

/// All spans of one trace, wired parent→child.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// Trace id the spans were recorded under.
    pub trace_id: u64,
    /// Every span of the trace, in recorded order.
    pub nodes: Vec<SpanNode>,
    /// Indices of nodes whose parent is `0` (trace roots).
    pub roots: Vec<usize>,
    /// `true` when the tree is closed: exactly one root, and every
    /// non-root span's parent resolves to another span of this trace.
    pub complete: bool,
}

impl TraceTree {
    /// Nodes whose span name matches, in recorded order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanNode> {
        self.nodes.iter().filter(move |n| n.event.name == name)
    }

    /// Sum of durations of spans with this name.
    pub fn total_us(&self, name: &str) -> f64 {
        self.named(name).map(|n| n.event.dur_us).sum()
    }

    /// The single root node, when the tree is complete.
    pub fn root(&self) -> Option<&SpanNode> {
        match self.roots.as_slice() {
            [only] => self.nodes.get(*only),
            _ => None,
        }
    }

    /// Attribute value of the root span, if any.
    pub fn root_arg(&self, key: &str) -> Option<&str> {
        self.root().and_then(|r| arg(&r.event, key))
    }
}

/// Attribute lookup on a span event.
pub fn arg<'e>(event: &'e SpanEvent, key: &str) -> Option<&'e str> {
    event
        .args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn arg_u64(event: &SpanEvent, key: &str) -> Option<u64> {
    arg(event, key).and_then(|v| v.parse().ok())
}

/// Group every trace-stamped span in the snapshot into trees, sorted by
/// trace id. Spans without trace attributes are ignored.
pub fn assemble(snapshot: &Snapshot) -> Vec<TraceTree> {
    use std::collections::BTreeMap;
    let mut by_trace: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
    for event in &snapshot.events {
        let (Some(trace), Some(span_id)) = (arg_u64(event, "trace"), arg_u64(event, "span")) else {
            continue;
        };
        let parent_id = arg_u64(event, "parent").unwrap_or(0);
        by_trace.entry(trace).or_default().push(SpanNode {
            event: event.clone(),
            span_id,
            parent_id,
            children: Vec::new(),
        });
    }

    by_trace
        .into_iter()
        .map(|(trace_id, mut nodes)| {
            let index: std::collections::HashMap<u64, usize> = nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (n.span_id, i))
                .collect();
            let mut roots = Vec::new();
            let mut orphans = 0usize;
            let edges: Vec<(usize, Option<usize>)> = nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    if n.parent_id == 0 {
                        (i, None)
                    } else {
                        (i, index.get(&n.parent_id).copied())
                    }
                })
                .collect();
            for (child, parent) in edges {
                match parent {
                    Some(p) if p != child => nodes[p].children.push(child),
                    Some(_) => orphans += 1, // self-parent: malformed
                    None if nodes[child].parent_id == 0 => roots.push(child),
                    None => orphans += 1, // parent span missing from trace
                }
            }
            let complete = roots.len() == 1 && orphans == 0 && !nodes.is_empty();
            TraceTree {
                trace_id,
                nodes,
                roots,
                complete,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_telemetry::{SpanEvent, TimeDomain};

    fn span(name: &str, trace: u64, id: u64, parent: u64, dur: f64) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            ts_us: 0.0,
            dur_us: dur,
            tid: 0,
            domain: TimeDomain::Sim,
            args: vec![
                ("trace".to_string(), trace.to_string()),
                ("span".to_string(), id.to_string()),
                ("parent".to_string(), parent.to_string()),
            ],
        }
    }

    fn snapshot(events: Vec<SpanEvent>) -> Snapshot {
        Snapshot {
            events,
            metrics: Vec::new(),
        }
    }

    #[test]
    fn interleaved_traces_reassemble_into_separate_trees() {
        // Two traces, spans deliberately interleaved as if recorded by
        // concurrent workers.
        let snap = snapshot(vec![
            span("executor.node", 2, 21, 20, 5.0),
            span("serve.frame", 1, 10, 0, 100.0),
            span("executor.node", 1, 11, 10, 40.0),
            span("serve.frame", 2, 20, 0, 90.0),
            span("resilience.retry", 2, 22, 21, 3.0),
            span("executor.node", 1, 12, 10, 60.0),
        ]);
        let trees = assemble(&snap);
        assert_eq!(trees.len(), 2);
        assert!(trees.iter().all(|t| t.complete), "{trees:?}");
        let t1 = &trees[0];
        assert_eq!(t1.trace_id, 1);
        assert_eq!(t1.root().unwrap().event.name, "serve.frame");
        assert_eq!(t1.total_us("executor.node"), 100.0);
        let t2 = &trees[1];
        let retry = t2.named("resilience.retry").next().unwrap();
        assert_eq!(retry.parent_id, 21, "retry nests under the node span");
    }

    #[test]
    fn missing_parent_marks_tree_incomplete() {
        let snap = snapshot(vec![
            span("serve.frame", 1, 10, 0, 10.0),
            span("executor.node", 1, 11, 99, 5.0), // parent 99 never recorded
        ]);
        let trees = assemble(&snap);
        assert_eq!(trees.len(), 1);
        assert!(!trees[0].complete);
    }

    #[test]
    fn multiple_roots_mark_tree_incomplete() {
        let snap = snapshot(vec![
            span("serve.frame", 1, 10, 0, 10.0),
            span("serve.frame", 1, 11, 0, 10.0),
        ]);
        assert!(!assemble(&snap)[0].complete);
    }

    #[test]
    fn untraced_spans_are_ignored() {
        let mut plain = span("byoc.build", 1, 1, 0, 1.0);
        plain.args.clear();
        let snap = snapshot(vec![plain]);
        assert!(assemble(&snap).is_empty());
    }
}
