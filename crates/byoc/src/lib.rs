//! # tvmnp-byoc
//!
//! The glue that realizes the paper's flow: TVM front/middle-end +
//! NeuroPilot back-end, joined through BYOC.
//!
//! * [`codegen`] — the external codegen + runtime wrapper: each
//!   `Compiler="neuropilot"` function is converted to Neuron IR, planned,
//!   and exposed to the graph executor as an `ExternalModule` (including
//!   artifact (de)serialization for runtime-only devices);
//! * [`build`] — `partition_for_nir` / `relay_build`: the user-facing
//!   compile pipeline of paper Listings 2/3/4/6;
//! * [`permutations`] — the seven target permutations of §5/§6 (TVM-only,
//!   BYOC×{CPU, APU, CPU+APU}, NeuroPilot-only×{CPU, APU, CPU+APU}) with a
//!   single `measure` entry point that returns `None` exactly where the
//!   paper's figures have missing bars;
//! * [`nnapi`] — the team's *previous* NNAPI BYOC flow (paper Fig. 3 /
//!   ref \[11\]): a second external compiler over the same framework,
//!   demonstrating BYOC generality and why NeuroPilot-direct replaced it;
//! * [`resilient`] — retries, deadlines, circuit breakers, and graceful
//!   fallback down the permutation chain under (injected) device faults.

pub mod build;
pub mod cache;
pub mod codegen;
pub mod nnapi;
pub mod permutations;
pub mod resilient;

pub use build::{partition_for_nir, relay_build, BuildError, CompiledModel, TargetMode};
pub use cache::{ArtifactCache, CacheStats, CachedArtifact};
pub use codegen::NeuronModule;
pub use nnapi::{nnapi_supported, relay_build_nnapi, NnapiModule, NnapiSupport};
pub use permutations::{measure_all, measure_one, Measurement, Permutation};
pub use resilient::{
    FaultCause, ResilienceError, ResiliencePolicy, ResilienceStats, ResilientSession, RunOutcome,
};
