//! The user-facing compile pipeline — the paper's Listings 2/3/4/6:
//! `mod = nir.partition_for_nir(mod, params)` followed by
//! `relay.build(mod, target)` and `GraphModule(...)`.

use crate::codegen::NeuronModule;
use std::collections::HashMap;
use std::fmt;
use tvmnp_hwsim::CostModel;
use tvmnp_hwsim::{FaultInjector, RetryPolicy};
use tvmnp_neuropilot::support::{first_unsupported, NeuronSupport};
use tvmnp_neuropilot::{CompiledNetwork, NeuronError, TargetPolicy};
use tvmnp_relay::expr::{ExprKind, Module};
use tvmnp_relay::passes::{fold_constants, partition_graph, simplify, PartitionReport};
use tvmnp_runtime::module::ExternalModule;
use tvmnp_runtime::{
    Artifact, ExecError, ExecutorGraph, GraphExecutor, ModuleRegistry, RunOptions,
};
use tvmnp_tensor::Tensor;

/// How the model is compiled and where it runs — the axis of the paper's
/// seven permutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetMode {
    /// Pure TVM: no partitioning, untuned kernels on the mobile CPU.
    TvmOnly,
    /// TVM BYOC: NeuroPilot-supported regions offloaded under the given
    /// target policy; the remainder stays on TVM's CPU codegen.
    Byoc(TargetPolicy),
    /// NeuroPilot-only: the *whole* model must be Neuron-convertible; any
    /// unsupported op aborts compilation (the paper's missing bars).
    NeuroPilotOnly(TargetPolicy),
}

impl TargetMode {
    /// Label matching the figures' x-axis.
    pub fn label(self) -> String {
        match self {
            TargetMode::TvmOnly => "tvm".to_string(),
            TargetMode::Byoc(p) => format!("byoc-{}", p.label()),
            TargetMode::NeuroPilotOnly(p) => format!("np-{}", p.label()),
        }
    }
}

impl fmt::Display for TargetMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Build failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// NeuroPilot cannot compile the model (NP-only modes).
    Unsupported(String),
    /// Partitioning failed.
    Partition(String),
    /// Neuron conversion/planning failed.
    Neuron(NeuronError),
    /// Graph lowering/linking failed.
    Runtime(String),
    /// Typed executor failure (device fault / deadline, with node context
    /// and fault cause chain).
    Exec(ExecError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Unsupported(op) => {
                write!(f, "NeuroPilot-only build aborted: unsupported op '{op}'")
            }
            BuildError::Partition(m) => write!(f, "partition failed: {m}"),
            BuildError::Neuron(e) => write!(f, "neuron codegen failed: {e}"),
            BuildError::Runtime(m) => write!(f, "runtime build failed: {m}"),
            BuildError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// `nir.partition_for_nir(mod, params)` — simplify, fold constants, and
/// partition for the NeuroPilot codegen. Returns the partitioned module
/// and the partition report (subgraph counts drive Fig. 4's analysis).
pub fn partition_for_nir(module: &Module) -> Result<(Module, PartitionReport), BuildError> {
    let _span = tvmnp_telemetry::span!("byoc.partition");
    let prepared = fold_constants(&simplify(module));
    partition_graph(&prepared, &NeuronSupport).map_err(|e| BuildError::Partition(e.to_string()))
}

/// A compiled, runnable model under one target mode.
pub enum CompiledModel {
    /// TVM graph executor (with or without linked Neuron modules).
    Tvm {
        /// The executor, ready for `set_input`/`run`.
        executor: GraphExecutor,
        /// Input names in parameter order.
        input_names: Vec<String>,
        /// Partition report (empty subgraphs for TVM-only).
        report: PartitionReport,
    },
    /// Whole-model Neuron network (NeuroPilot-only modes).
    Neuron {
        /// The planned Neuron network.
        network: CompiledNetwork,
        /// Input names in parameter order.
        input_names: Vec<String>,
    },
}

impl CompiledModel {
    /// Run inference on named inputs; returns outputs and simulated µs.
    pub fn run(
        &mut self,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<(Vec<Tensor>, f64), BuildError> {
        match self {
            CompiledModel::Tvm {
                executor,
                input_names,
                ..
            } => {
                for name in input_names.iter() {
                    let v = inputs
                        .get(name)
                        .ok_or_else(|| BuildError::Runtime(format!("missing input '{name}'")))?;
                    executor
                        .set_input(name, v.clone())
                        .map_err(|e| BuildError::Runtime(e.to_string()))?;
                }
                let t = executor
                    .run()
                    .map_err(|e| BuildError::Runtime(e.to_string()))?;
                let outs = (0..executor.num_outputs())
                    .map(|i| executor.get_output(i))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| BuildError::Runtime(e.to_string()))?;
                Ok((outs, t))
            }
            CompiledModel::Neuron {
                network,
                input_names,
            } => {
                let ordered: Vec<Tensor> = input_names
                    .iter()
                    .map(|n| {
                        inputs
                            .get(n)
                            .cloned()
                            .ok_or_else(|| BuildError::Runtime(format!("missing input '{n}'")))
                    })
                    .collect::<Result<_, _>>()?;
                network.execute(&ordered).map_err(BuildError::Neuron)
            }
        }
    }

    /// Run inference under fault injection: dispatches consult `injector`
    /// with retries per `retry` (backoff charged in simulated µs) and the
    /// whole run bounded by `deadline_us` of simulated time. Device-fault
    /// and deadline failures surface as [`BuildError::Exec`] /
    /// [`BuildError::Neuron`] with typed context; numerics are identical
    /// to [`CompiledModel::run`].
    pub fn run_resilient(
        &mut self,
        inputs: &HashMap<String, Tensor>,
        injector: &FaultInjector,
        retry: &RetryPolicy,
        deadline_us: f64,
    ) -> Result<(Vec<Tensor>, f64), BuildError> {
        match self {
            CompiledModel::Tvm {
                executor,
                input_names,
                ..
            } => {
                for name in input_names.iter() {
                    let v = inputs
                        .get(name)
                        .ok_or_else(|| BuildError::Runtime(format!("missing input '{name}'")))?;
                    executor
                        .set_input(name, v.clone())
                        .map_err(BuildError::Exec)?;
                }
                let opts = RunOptions {
                    injector: Some(injector),
                    retry: *retry,
                    deadline_us,
                };
                let t = executor.run_with(&opts).map_err(BuildError::Exec)?;
                let outs = (0..executor.num_outputs())
                    .map(|i| executor.get_output(i))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(BuildError::Exec)?;
                Ok((outs, t))
            }
            CompiledModel::Neuron {
                network,
                input_names,
            } => {
                let ordered: Vec<Tensor> = input_names
                    .iter()
                    .map(|n| {
                        inputs
                            .get(n)
                            .cloned()
                            .ok_or_else(|| BuildError::Runtime(format!("missing input '{n}'")))
                    })
                    .collect::<Result<_, _>>()?;
                network
                    .execute_resilient(&ordered, injector, retry, deadline_us)
                    .map_err(BuildError::Neuron)
            }
        }
    }

    /// Simulated inference time, computed analytically (no numeric
    /// execution): static shapes make the time input-independent, so the
    /// figure harnesses measure without running each model.
    pub fn estimate_us(&self) -> f64 {
        match self {
            CompiledModel::Tvm { executor, .. } => executor.estimate_time_us(),
            CompiledModel::Neuron { network, .. } => network.estimate_time_us(),
        }
    }

    /// Simulated inference energy, microjoules.
    pub fn estimate_energy_uj(&self) -> f64 {
        match self {
            CompiledModel::Tvm { executor, .. } => executor.estimate_energy_uj(),
            CompiledModel::Neuron { network, .. } => network.estimate_energy_uj(),
        }
    }

    /// Per-node analytic cost attribution (device + simulated µs per
    /// node), summing exactly to [`CompiledModel::estimate_us`]. TVM-side
    /// modes report one entry per graph node; NP-only modes map the
    /// planned Neuron ops and their dispatch/staging/transfer overheads
    /// into the same shape.
    pub fn estimate_breakdown(&self) -> Vec<tvmnp_runtime::NodeCost> {
        match self {
            CompiledModel::Tvm { executor, .. } => executor.estimate_breakdown(),
            CompiledModel::Neuron { network, .. } => network
                .estimate_breakdown()
                .into_iter()
                .enumerate()
                .map(|(i, e)| tvmnp_runtime::NodeCost {
                    index: i,
                    op: e.label,
                    device: e.device.name().to_string(),
                    us: e.us,
                    external: true,
                })
                .collect(),
        }
    }

    /// The partition report (`None` for NP-only modes, which never
    /// partition).
    pub fn partition_report(&self) -> Option<&PartitionReport> {
        match self {
            CompiledModel::Tvm { report, .. } => Some(report),
            CompiledModel::Neuron { .. } => None,
        }
    }

    /// Number of external subgraphs (0 for TVM-only and NP-only modes).
    pub fn num_subgraphs(&self) -> usize {
        match self {
            CompiledModel::Tvm { report, .. } => report.num_subgraphs,
            CompiledModel::Neuron { .. } => 0,
        }
    }

    /// Export a deployable artifact (TVM modes only — NP-only ships through
    /// the vendor's own packaging, which the paper does not exercise).
    pub fn export(&self) -> Option<Artifact> {
        match self {
            CompiledModel::Tvm { executor, .. } => {
                // Re-serialize linked modules from the executor graph is not
                // possible without the modules themselves; exports are
                // produced by `relay_build_artifact` instead.
                let _ = executor;
                None
            }
            CompiledModel::Neuron { .. } => None,
        }
    }
}

fn input_names_of(module: &Module) -> Vec<String> {
    module
        .main()
        .params
        .iter()
        .filter_map(|p| match &p.kind {
            ExprKind::Var(v) => Some(v.name.clone()),
            _ => None,
        })
        .collect()
}

/// `relay.build(mod, target)` — compile a Relay module under a target mode.
pub fn relay_build(
    module: &Module,
    mode: TargetMode,
    cost: CostModel,
) -> Result<CompiledModel, BuildError> {
    relay_build_inner(module, mode, cost).map(|(m, _)| m)
}

/// Like [`relay_build`], also returning the deployable artifact for the
/// TVM-side modes (Listing 6's `export_library`).
pub fn relay_build_with_artifact(
    module: &Module,
    mode: TargetMode,
    cost: CostModel,
) -> Result<(CompiledModel, Option<Artifact>), BuildError> {
    relay_build_inner(module, mode, cost)
}

fn relay_build_inner(
    module: &Module,
    mode: TargetMode,
    cost: CostModel,
) -> Result<(CompiledModel, Option<Artifact>), BuildError> {
    let _span = tvmnp_telemetry::span!("byoc.build", "mode" => mode);
    let prepared = fold_constants(&simplify(module));
    let input_names = input_names_of(&prepared);
    match mode {
        TargetMode::TvmOnly => {
            let graph =
                ExecutorGraph::build(&prepared).map_err(|e| BuildError::Runtime(e.to_string()))?;
            let artifact = Artifact::export(&graph, &[]);
            let executor = GraphExecutor::new(graph, ModuleRegistry::new(), cost)
                .map_err(|e| BuildError::Runtime(e.to_string()))?;
            let report = PartitionReport {
                num_subgraphs: 0,
                offloaded_calls: 0,
                host_calls: prepared.main().num_calls(),
            };
            Ok((
                CompiledModel::Tvm {
                    executor,
                    input_names,
                    report,
                },
                Some(artifact),
            ))
        }
        TargetMode::Byoc(policy) => {
            let (partitioned, report) = {
                let _span = tvmnp_telemetry::span!("byoc.partition");
                partition_graph(&prepared, &NeuronSupport)
                    .map_err(|e| BuildError::Partition(e.to_string()))?
            };
            let graph = ExecutorGraph::build(&partitioned)
                .map_err(|e| BuildError::Runtime(e.to_string()))?;
            let mut registry = ModuleRegistry::new();
            let mut modules_for_export: Vec<NeuronModule> = Vec::new();
            for name in partitioned.external_functions() {
                let func = &partitioned.functions[name];
                let _span = tvmnp_telemetry::span!("byoc.codegen", "symbol" => name);
                let module = NeuronModule::codegen(name, func, policy, cost.clone())
                    .map_err(BuildError::Neuron)?;
                modules_for_export.push(module);
            }
            let refs: Vec<&dyn ExternalModule> = modules_for_export
                .iter()
                .map(|m| m as &dyn ExternalModule)
                .collect();
            let artifact = Artifact::export(&graph, &refs);
            for m in modules_for_export {
                registry.register(Box::new(m));
            }
            let executor = GraphExecutor::new(graph, registry, cost)
                .map_err(|e| BuildError::Runtime(e.to_string()))?;
            Ok((
                CompiledModel::Tvm {
                    executor,
                    input_names,
                    report,
                },
                Some(artifact),
            ))
        }
        TargetMode::NeuroPilotOnly(policy) => {
            if let Some(op) = first_unsupported(prepared.main()) {
                return Err(BuildError::Unsupported(op));
            }
            let _span = tvmnp_telemetry::span!("byoc.codegen", "symbol" => "main");
            let graph =
                tvmnp_neuropilot::convert_function(prepared.main()).map_err(BuildError::Neuron)?;
            let network =
                CompiledNetwork::compile(graph, policy, cost).map_err(BuildError::Neuron)?;
            Ok((
                CompiledModel::Neuron {
                    network,
                    input_names,
                },
                None,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;

    /// conv → relu → batch_norm(NP-unsupported) → conv → softmax
    fn mixed_model() -> (Module, HashMap<String, Tensor>) {
        let mut rng = TensorRng::new(23);
        let x = var("x", TensorType::f32([1, 4, 8, 8]));
        let w1 = rng.uniform_f32([4, 4, 3, 3], -0.4, 0.4);
        let c1 = builder::relu(builder::conv2d(x.clone(), w1, Conv2dAttrs::same(1)));
        let bn = builder::batch_norm(
            c1,
            rng.uniform_f32([4], 0.9, 1.1),
            rng.uniform_f32([4], -0.1, 0.1),
            rng.uniform_f32([4], -0.1, 0.1),
            rng.uniform_f32([4], 0.9, 1.1),
            1e-5,
        );
        let w2 = rng.uniform_f32([4, 4, 3, 3], -0.4, 0.4);
        let c2 = builder::conv2d(bn, w2, Conv2dAttrs::same(1));
        let y = builder::softmax(builder::batch_flatten(c2));
        let m = Module::from_main(Function::new(vec![x], y));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0));
        (m, inputs)
    }

    /// Fully NP-supported model, sized so compute dominates transfer
    /// overheads (like the paper's real CNNs).
    fn clean_model() -> (Module, HashMap<String, Tensor>) {
        let mut rng = TensorRng::new(29);
        let x = var("x", TensorType::f32([1, 16, 28, 28]));
        let w = rng.uniform_f32([32, 16, 3, 3], -0.4, 0.4);
        let c = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let w2 = rng.uniform_f32([32, 32, 3, 3], -0.4, 0.4);
        let c = builder::relu(builder::conv2d(c, w2, Conv2dAttrs::same(1)));
        let y = builder::softmax(builder::batch_flatten(c));
        let m = Module::from_main(Function::new(vec![x], y));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), rng.uniform_f32([1, 16, 28, 28], -1.0, 1.0));
        (m, inputs)
    }

    #[test]
    fn all_modes_numerically_agree_on_clean_model() {
        let (m, inputs) = clean_model();
        let reference = tvmnp_relay::interp::run_module(&m, &inputs).unwrap();
        for mode in [
            TargetMode::TvmOnly,
            TargetMode::Byoc(TargetPolicy::CpuOnly),
            TargetMode::Byoc(TargetPolicy::ApuPrefer),
            TargetMode::Byoc(TargetPolicy::CpuApu),
            TargetMode::NeuroPilotOnly(TargetPolicy::CpuOnly),
            TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
            TargetMode::NeuroPilotOnly(TargetPolicy::CpuApu),
        ] {
            let mut compiled = relay_build(&m, mode, CostModel::default()).unwrap();
            let (outs, t) = compiled.run(&inputs).unwrap();
            assert!(outs[0].bit_eq(&reference), "{mode} diverged");
            assert!(t > 0.0);
        }
    }

    #[test]
    fn np_only_fails_on_unsupported_model() {
        let (m, _) = mixed_model();
        match relay_build(
            &m,
            TargetMode::NeuroPilotOnly(TargetPolicy::CpuOnly),
            CostModel::default(),
        ) {
            Err(BuildError::Unsupported(op)) => assert_eq!(op, "nn.batch_norm"),
            other => panic!("expected Unsupported, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn byoc_handles_unsupported_model() {
        let (m, inputs) = mixed_model();
        let reference = tvmnp_relay::interp::run_module(&m, &inputs).unwrap();
        let mut compiled = relay_build(
            &m,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            CostModel::default(),
        )
        .unwrap();
        assert!(
            compiled.num_subgraphs() >= 2,
            "batch_norm must split the graph"
        );
        let (outs, _) = compiled.run(&inputs).unwrap();
        assert!(outs[0].bit_eq(&reference));
    }

    #[test]
    fn tvm_only_slower_than_byoc() {
        let (m, inputs) = clean_model();
        let mut tvm = relay_build(&m, TargetMode::TvmOnly, CostModel::default()).unwrap();
        let mut byoc = relay_build(
            &m,
            TargetMode::Byoc(TargetPolicy::CpuOnly),
            CostModel::default(),
        )
        .unwrap();
        let (_, t_tvm) = tvm.run(&inputs).unwrap();
        let (_, t_byoc) = byoc.run(&inputs).unwrap();
        assert!(
            t_tvm > t_byoc,
            "TVM-only ({t_tvm}) must be slower than BYOC-CPU ({t_byoc})"
        );
    }

    #[test]
    fn artifact_roundtrip_through_android_device() {
        use tvmnp_runtime::artifact::LoaderRegistry;
        use tvmnp_runtime::AndroidDevice;
        let (m, inputs) = clean_model();
        let (mut compiled, artifact) = relay_build_with_artifact(
            &m,
            TargetMode::Byoc(TargetPolicy::ApuPrefer),
            CostModel::default(),
        )
        .unwrap();
        let artifact = artifact.unwrap();
        let (reference, _) = compiled.run(&inputs).unwrap();

        let mut loaders = LoaderRegistry::new();
        loaders.register("neuropilot", NeuronModule::loader(CostModel::default()));
        let phone = AndroidDevice::new("oppo-reno4z", loaders, CostModel::default());
        let mut ex = phone.load(&artifact).unwrap();
        ex.set_input("x", inputs["x"].clone()).unwrap();
        ex.run().unwrap();
        assert!(ex.get_output(0).unwrap().bit_eq(&reference[0]));
    }
}
