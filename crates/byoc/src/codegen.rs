//! The NeuroPilot external codegen and runtime-module wrapper.

use serde::{Deserialize, Serialize};
use tvmnp_hwsim::CostModel;
use tvmnp_neuropilot::{
    convert_function, CompiledNetwork, ExecutionPlan, NeuronError, NeuronGraph, TargetPolicy,
};
use tvmnp_relay::Function;
use tvmnp_runtime::artifact::ModuleLoader;
use tvmnp_runtime::module::{ExternalModule, KernelProfile, ModuleError};
use tvmnp_tensor::Tensor;

/// Serialized form of a Neuron external module (the artifact payload).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NeuronBlob {
    symbol: String,
    policy: TargetPolicy,
    graph: NeuronGraph,
    /// The already-computed execution plan. Shipping it lets a
    /// runtime-only device (and the artifact cache) instantiate the
    /// network without re-running the planner — loading is not compiling.
    /// `None` only for artifacts written before the plan was embedded.
    #[serde(default)]
    plan: Option<ExecutionPlan>,
}

/// A compiled Neuron subgraph exposed as a graph-executor module.
pub struct NeuronModule {
    symbol: String,
    policy: TargetPolicy,
    graph: NeuronGraph,
    network: CompiledNetwork,
}

impl NeuronModule {
    /// Run the external codegen on a partitioned Relay function.
    pub fn codegen(
        symbol: impl Into<String>,
        func: &Function,
        policy: TargetPolicy,
        cost: CostModel,
    ) -> Result<Self, NeuronError> {
        let graph = convert_function(func)?;
        let network = CompiledNetwork::compile(graph.clone(), policy, cost)?;
        Ok(NeuronModule {
            symbol: symbol.into(),
            policy,
            graph,
            network,
        })
    }

    /// Rebuild from an artifact payload on a runtime-only device. When the
    /// blob carries its execution plan the network is instantiated
    /// directly from it — no planner run, no `neuropilot.compile` span.
    pub fn from_blob(value: &serde_json::Value, cost: CostModel) -> Result<Self, String> {
        let blob: NeuronBlob = serde_json::from_value(value.clone()).map_err(|e| e.to_string())?;
        let network = match blob.plan {
            Some(plan) => CompiledNetwork::from_plan(blob.graph.clone(), plan, cost),
            None => CompiledNetwork::compile(blob.graph.clone(), blob.policy, cost)
                .map_err(|e| e.to_string())?,
        };
        Ok(NeuronModule {
            symbol: blob.symbol,
            policy: blob.policy,
            graph: blob.graph,
            network,
        })
    }

    /// The runtime-side loader for `LoaderRegistry::register("neuropilot", ...)`.
    pub fn loader(cost: CostModel) -> ModuleLoader {
        Box::new(move |_symbol, payload| {
            NeuronModule::from_blob(payload, cost.clone())
                .map(|m| Box::new(m) as Box<dyn ExternalModule>)
        })
    }

    /// The planned network (for inspection in tests/benches).
    pub fn network(&self) -> &CompiledNetwork {
        &self.network
    }
}

impl ExternalModule for NeuronModule {
    fn symbol(&self) -> &str {
        &self.symbol
    }

    fn compiler(&self) -> &str {
        "neuropilot"
    }

    fn dispatch_device(&self) -> tvmnp_hwsim::DeviceKind {
        // Fault routing: the device whose driver a dispatch enters
        // through. CPU-only plans never touch the APU driver, so an APU
        // fault plan must not take them down.
        use tvmnp_hwsim::DeviceKind;
        match self.policy {
            TargetPolicy::CpuOnly => DeviceKind::Cpu,
            TargetPolicy::GpuPrefer => DeviceKind::Gpu,
            TargetPolicy::ApuPrefer | TargetPolicy::CpuApu => DeviceKind::Apu,
        }
    }

    fn run(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, f64), ModuleError> {
        self.network
            .execute(inputs)
            .map_err(|e| ModuleError(e.to_string()))
    }

    fn estimate_time_us(&self) -> f64 {
        self.network.estimate_time_us()
    }

    fn estimate_device_us(&self) -> Vec<(tvmnp_hwsim::DeviceKind, f64)> {
        // The plan's own per-op attribution: a CpuApu plan splits its
        // time between the devices it actually placed segments on.
        use tvmnp_hwsim::DeviceKind;
        let mut shares = Vec::new();
        for device in DeviceKind::ALL {
            let us: f64 = self
                .network
                .estimate_breakdown()
                .iter()
                .filter(|e| e.device == device)
                .map(|e| e.us)
                .sum();
            if us > 0.0 {
                shares.push((device, us));
            }
        }
        shares
    }

    fn estimate_energy_uj(&self) -> f64 {
        self.network.estimate_energy_uj()
    }

    fn kernel_profile(&self) -> Vec<KernelProfile> {
        self.network
            .kernel_profile()
            .into_iter()
            .map(|e| KernelProfile {
                label: e.label,
                kind: e.kind,
                device: e.device,
                class: e.class,
                us: e.us,
                analytic_us: e.analytic_us,
                energy_uj: e.energy_uj,
            })
            .collect()
    }

    fn serialize(&self) -> serde_json::Value {
        serde_json::to_value(NeuronBlob {
            symbol: self.symbol.clone(),
            policy: self.policy,
            graph: self.graph.clone(),
            plan: Some(self.network.plan().clone()),
        })
        .expect("Neuron blob serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;

    fn subgraph() -> Function {
        let mut rng = TensorRng::new(17);
        let x = var("nir_in0", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let body = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        Function::new(vec![x], body).with_attr("Compiler", "neuropilot")
    }

    #[test]
    fn codegen_and_run() {
        let m = NeuronModule::codegen(
            "neuropilot_0",
            &subgraph(),
            TargetPolicy::CpuOnly,
            CostModel::default(),
        )
        .unwrap();
        let mut rng = TensorRng::new(18);
        let input = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        let (outs, t) = m.run(&[input]).unwrap();
        assert_eq!(outs.len(), 1);
        assert!(t > 0.0);
        assert_eq!(m.compiler(), "neuropilot");
    }

    #[test]
    fn blob_roundtrip_preserves_numerics() {
        let m = NeuronModule::codegen(
            "neuropilot_0",
            &subgraph(),
            TargetPolicy::ApuPrefer,
            CostModel::default(),
        )
        .unwrap();
        let blob = m.serialize();
        let m2 = NeuronModule::from_blob(&blob, CostModel::default()).unwrap();
        let mut rng = TensorRng::new(19);
        let input = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        let (a, ta) = m.run(std::slice::from_ref(&input)).unwrap();
        let (b, tb) = m2.run(&[input]).unwrap();
        assert!(a[0].bit_eq(&b[0]));
        assert_eq!(ta, tb);
    }

    #[test]
    fn unsupported_function_fails_codegen() {
        let x = var("p", TensorType::f32([1, 4]));
        let body = tvmnp_relay::expr::call(tvmnp_relay::OpKind::Exp, vec![x.clone()]);
        let f = Function::new(vec![x], body);
        assert!(matches!(
            NeuronModule::codegen("s", &f, TargetPolicy::CpuOnly, CostModel::default()),
            Err(NeuronError::UnsupportedOp(_))
        ));
    }
}
