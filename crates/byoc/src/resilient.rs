//! Resilient execution across the seven target permutations.
//!
//! A production deployment on millions of phones cannot treat an APU
//! driver hiccup as fatal: real mobile runtimes (NNAPI, TVM's
//! multi-backend runtime) fall back to the next-best target. This module
//! is that story for the reproduction: a [`ResilientSession`] runs a model
//! starting at its preferred permutation and, when a device faults past
//! the retry budget or its circuit breaker opens, **re-plans for the next
//! permutation down the paper-ordered chain**
//! ([`Permutation::FALLBACK_CHAIN`]): NeuroPilot-APU → NeuroPilot-CPU+APU
//! → BYOC-CPU → TVM-only.
//!
//! Every retry, fallback, and breaker trip emits telemetry
//! (`resilience.*` counters and spans) so `tvmnp-report` can render a
//! resilience report; numerics are bit-identical no matter how far the
//! session degrades, because every backend computes on the same host
//! kernels (the property the fallback-correctness tests pin down).
#![deny(clippy::unwrap_used)]

use crate::build::{relay_build, BuildError, CompiledModel, TargetMode};
use crate::permutations::Permutation;
use std::collections::HashMap;
use std::sync::Arc;
use tvmnp_hwsim::{CircuitBreaker, CostModel, DeviceKind, FaultInjector, FaultPlan, RetryPolicy};
use tvmnp_neuropilot::{NeuronError, TargetPolicy};
use tvmnp_relay::expr::Module;
use tvmnp_runtime::ExecErrorKind;
use tvmnp_tensor::Tensor;

/// Knobs of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Per-dispatch retry/backoff policy.
    pub retry: RetryPolicy,
    /// Simulated-time budget per permutation attempt, microseconds.
    pub deadline_us: f64,
    /// Faults per device before its circuit breaker opens and the session
    /// stops routing work to it.
    pub breaker_threshold: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            retry: RetryPolicy::default(),
            deadline_us: f64::INFINITY,
            breaker_threshold: 3,
        }
    }
}

/// Why one permutation was abandoned on the way down the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCause {
    /// Permutation that was given up on.
    pub permutation: Permutation,
    /// Stage it failed at: `breaker`, `compile`, `build`, or `run`.
    pub stage: &'static str,
    /// Human-readable cause.
    pub detail: String,
}

impl std::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.permutation, self.stage, self.detail)
    }
}

/// A resilient run's failure: either every permutation in the chain was
/// exhausted (carrying the full fault cause chain) or a non-fault build
/// error that no fallback can route around.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilienceError {
    /// The whole fallback chain failed; `causes` records why each step
    /// was abandoned, in chain order.
    Exhausted {
        /// Model label the session was running.
        model: String,
        /// One entry per abandoned permutation, in order.
        causes: Vec<FaultCause>,
    },
    /// A permutation failed for a reason that is not a device fault,
    /// deadline, or coverage gap — falling back would hide a real bug.
    Build {
        /// Permutation that failed.
        permutation: Permutation,
        /// The underlying build/run error.
        error: BuildError,
    },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::Exhausted { model, causes } => {
                write!(f, "fallback chain exhausted for '{model}': ")?;
                for (i, c) in causes.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            ResilienceError::Build { permutation, error } => {
                write!(f, "{permutation} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// A successful resilient run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Model outputs — bit-identical to a fault-free run of any
    /// permutation (host kernels everywhere).
    pub outputs: Vec<Tensor>,
    /// Simulated time of the successful attempt, including retry
    /// overhead, microseconds.
    pub time_us: f64,
    /// Permutation that finally served the run.
    pub permutation: Permutation,
    /// Permutations abandoned on the way, with why (empty = no
    /// degradation).
    pub fallbacks: Vec<FaultCause>,
}

impl RunOutcome {
    /// Whether the run degraded off its preferred permutation.
    pub fn degraded(&self) -> bool {
        !self.fallbacks.is_empty()
    }
}

/// Summary of a session's fault history so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceStats {
    /// Faults injected across all devices.
    pub faults_injected: u64,
    /// Circuit breakers tripped.
    pub breaker_trips: u64,
    /// Devices whose breaker is open.
    pub open_devices: Vec<DeviceKind>,
}

/// Physical devices a permutation dispatches through — what its faults
/// strike and what its breaker check consults.
fn permutation_devices(p: Permutation) -> Vec<DeviceKind> {
    let policy_devices = |policy: TargetPolicy| -> Vec<DeviceKind> {
        match policy {
            TargetPolicy::CpuOnly => vec![DeviceKind::Cpu],
            TargetPolicy::GpuPrefer => vec![DeviceKind::Gpu],
            TargetPolicy::ApuPrefer => vec![DeviceKind::Apu],
            TargetPolicy::CpuApu => vec![DeviceKind::Cpu, DeviceKind::Apu],
        }
    };
    match p.mode() {
        TargetMode::TvmOnly => vec![DeviceKind::Cpu],
        TargetMode::NeuroPilotOnly(policy) => policy_devices(policy),
        TargetMode::Byoc(policy) => {
            // BYOC always keeps a host side: the graph executor dispatches
            // the non-offloaded remainder on the CPU.
            let mut d = policy_devices(policy);
            if !d.contains(&DeviceKind::Cpu) {
                d.push(DeviceKind::Cpu);
            }
            d
        }
    }
}

/// Is this error a fault/coverage condition the chain may degrade past,
/// and if so, at which stage with what detail?
fn graceful_cause(err: &BuildError) -> Option<(&'static str, String)> {
    match err {
        BuildError::Unsupported(op) => Some(("build", format!("unsupported op '{op}'"))),
        BuildError::Exec(e) if e.kind() != ExecErrorKind::General => Some(("run", e.to_string())),
        BuildError::Neuron(n @ NeuronError::DeviceFault { .. })
        | BuildError::Neuron(n @ NeuronError::DeadlineExceeded { .. }) => {
            Some(("run", n.to_string()))
        }
        _ => None,
    }
}

/// Runs one Relay model with retries, deadlines, a per-device circuit
/// breaker, and graceful fallback down the permutation chain.
///
/// Sessions can share one [`FaultInjector`] (see
/// [`ResilientSession::with_injector`]): a showcase pipeline running three
/// models shares fault history, so a device that died during model 1
/// trips its breaker and models 2 and 3 skip it outright instead of
/// rediscovering the fault.
pub struct ResilientSession {
    module: Module,
    cost: CostModel,
    injector: Arc<FaultInjector>,
    policy: ResiliencePolicy,
    breaker: CircuitBreaker,
    /// Ordinal of the next resilience event, used as the sim-span
    /// timestamp so fallback events order deterministically in traces.
    event_seq: u64,
    /// Shared artifact cache: fallback re-dispatch reuses the cached
    /// compilation of each permutation instead of recompiling. The string
    /// is the quant-config label of the cache key.
    cache: Option<(Arc<crate::cache::ArtifactCache>, String)>,
}

impl ResilientSession {
    /// Session over `module` with its own injector interpreting `plan`.
    /// Thermal-throttle rules are folded into the cost model here, so a
    /// plan with no such rules leaves timings bit-identical.
    pub fn new(
        module: Module,
        cost: CostModel,
        plan: FaultPlan,
        policy: ResiliencePolicy,
    ) -> ResilientSession {
        let injector = Arc::new(FaultInjector::new(plan));
        ResilientSession::with_injector(module, cost, injector, policy)
    }

    /// Session sharing an existing injector (cross-model fault history).
    pub fn with_injector(
        module: Module,
        cost: CostModel,
        injector: Arc<FaultInjector>,
        policy: ResiliencePolicy,
    ) -> ResilientSession {
        let cost = injector.plan().throttled_cost(cost);
        let breaker = CircuitBreaker::new(policy.breaker_threshold);
        ResilientSession {
            module,
            cost,
            injector,
            policy,
            breaker,
            event_seq: 0,
            cache: None,
        }
    }

    /// Reuse compiled artifacts through `cache`: every (module,
    /// permutation) build inside this session — including fallback
    /// re-dispatch after a fault — is served from the cache when present.
    /// `quant` labels the module's quantization config in the cache key.
    pub fn with_cache(
        mut self,
        cache: Arc<crate::cache::ArtifactCache>,
        quant: impl Into<String>,
    ) -> Self {
        self.cache = Some((cache, quant.into()));
        self
    }

    /// Build (or load from the cache) the module for one target mode.
    fn build_model(&self, mode: TargetMode) -> Result<CompiledModel, BuildError> {
        match &self.cache {
            Some((cache, quant)) => cache.get_or_build(&self.module, mode, &self.cost, quant),
            None => relay_build(&self.module, mode, self.cost.clone()),
        }
    }

    /// The shared fault injector.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Fault history summary.
    pub fn stats(&self) -> ResilienceStats {
        ResilienceStats {
            faults_injected: self.injector.faults_injected(),
            breaker_trips: self.breaker.trips(),
            open_devices: DeviceKind::ALL
                .iter()
                .copied()
                .filter(|&d| self.breaker.is_open(d))
                .collect(),
        }
    }

    /// Feed current per-device fault counts into the breaker, emitting a
    /// `resilience.breaker_trips` counter per newly opened device.
    fn update_breaker(&mut self) {
        for d in DeviceKind::ALL {
            if self.breaker.note(d, self.injector.faults_on(d)) {
                tvmnp_telemetry::counter_add(
                    "resilience.breaker_trips",
                    &[("device", d.name())],
                    1,
                );
            }
        }
    }

    /// Record one fallback transition as telemetry: a counter, a
    /// zero-width sim span carrying the structured cause, and — when an
    /// event sink (flight recorder) is installed — a
    /// `resilience.fallback` event with the from-permutation,
    /// to-permutation, and cause stage/detail.
    fn record_fallback(
        &mut self,
        model: &str,
        from: Permutation,
        to: Option<Permutation>,
        cause: &FaultCause,
    ) {
        let to_label = to.map(|p| p.label()).unwrap_or("<exhausted>");
        tvmnp_telemetry::counter_add(
            "resilience.fallback",
            &[("from", from.label()), ("to", to_label)],
            1,
        );
        tvmnp_telemetry::record_sim_span(
            "resilience.fallback",
            self.event_seq as f64,
            0.0,
            vec![
                ("model".into(), model.into()),
                ("from".into(), from.label().into()),
                ("to".into(), to_label.into()),
                ("cause".into(), cause.stage.into()),
                ("detail".into(), cause.detail.clone()),
            ],
        );
        if tvmnp_telemetry::sink_active() {
            tvmnp_telemetry::emit_event(
                "resilience.fallback",
                vec![
                    ("model".to_string(), model.to_string()),
                    ("from".to_string(), from.label().to_string()),
                    ("to".to_string(), to_label.to_string()),
                    ("cause".to_string(), cause.stage.to_string()),
                    ("detail".to_string(), cause.detail.clone()),
                ],
            );
        }
        self.event_seq += 1;
    }

    /// Run the model on named `inputs`, starting at permutation `start`
    /// and degrading down [`Permutation::fallback_chain`] as faults
    /// demand. `model` labels telemetry and errors.
    pub fn run(
        &mut self,
        model: &str,
        start: Permutation,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<RunOutcome, ResilienceError> {
        let chain = Permutation::fallback_chain(start);
        let mut causes: Vec<FaultCause> = Vec::new();
        for (step, &perm) in chain.iter().enumerate() {
            let next = chain.get(step + 1).copied();
            // Circuit breakers: skip permutations that need a device the
            // session has already given up on.
            let devices = permutation_devices(perm);
            if let Some(&dead) = devices.iter().find(|&&d| self.breaker.is_open(d)) {
                let cause = FaultCause {
                    permutation: perm,
                    stage: "breaker",
                    detail: format!("circuit breaker open for {dead}"),
                };
                self.record_fallback(model, perm, next, &cause);
                causes.push(cause);
                continue;
            }
            // Compile-time faults (driver rejecting the network).
            if let Some(fault) = devices.iter().find_map(|&d| self.injector.on_compile(d)) {
                self.update_breaker();
                if tvmnp_telemetry::sink_active() {
                    tvmnp_telemetry::emit_event(
                        "fault.injected",
                        vec![
                            ("stage".to_string(), "compile".to_string()),
                            ("device".to_string(), fault.device.name().to_string()),
                            // `detail` (unindexed), not `cause`: the
                            // description is free text and must not mint
                            // a counter key per distinct fault.
                            ("detail".to_string(), fault.description.clone()),
                        ],
                    );
                }
                let cause = FaultCause {
                    permutation: perm,
                    stage: "compile",
                    detail: fault.description,
                };
                self.record_fallback(model, perm, next, &cause);
                causes.push(cause);
                continue;
            }
            // Build; coverage gaps (NP-only unsupported ops) degrade
            // gracefully, real build bugs do not.
            let mut compiled: CompiledModel = match self.build_model(perm.mode()) {
                Ok(c) => c,
                Err(err) => match graceful_cause(&err) {
                    Some((stage, detail)) => {
                        let cause = FaultCause {
                            permutation: perm,
                            stage,
                            detail,
                        };
                        self.record_fallback(model, perm, next, &cause);
                        causes.push(cause);
                        continue;
                    }
                    None => {
                        return Err(ResilienceError::Build {
                            permutation: perm,
                            error: err,
                        })
                    }
                },
            };
            let faults_before = self.injector.faults_injected();
            match compiled.run_resilient(
                inputs,
                &self.injector,
                &self.policy.retry,
                self.policy.deadline_us,
            ) {
                Ok((outputs, time_us)) => {
                    self.update_breaker();
                    let recovered =
                        !causes.is_empty() || self.injector.faults_injected() > faults_before;
                    if recovered {
                        tvmnp_telemetry::counter_add("resilience.recovered", &[], 1);
                    }
                    tvmnp_telemetry::gauge_set(
                        "resilience.final_us",
                        &[("model", model), ("permutation", perm.label())],
                        time_us,
                    );
                    return Ok(RunOutcome {
                        outputs,
                        time_us,
                        permutation: perm,
                        fallbacks: causes,
                    });
                }
                Err(err) => {
                    self.update_breaker();
                    match graceful_cause(&err) {
                        Some((stage, detail)) => {
                            let cause = FaultCause {
                                permutation: perm,
                                stage,
                                detail,
                            };
                            self.record_fallback(model, perm, next, &cause);
                            causes.push(cause);
                        }
                        None => {
                            return Err(ResilienceError::Build {
                                permutation: perm,
                                error: err,
                            })
                        }
                    }
                }
            }
        }
        tvmnp_telemetry::counter_add("resilience.failed", &[], 1);
        if tvmnp_telemetry::sink_active() {
            // Flight-recorder dump trigger: the whole chain is gone.
            tvmnp_telemetry::emit_event(
                "resilience.exhausted",
                vec![
                    ("model".to_string(), model.to_string()),
                    (
                        "cause".to_string(),
                        causes
                            .last()
                            .map(|c| c.stage.to_string())
                            .unwrap_or_else(|| "unknown".to_string()),
                    ),
                ],
            );
        }
        Err(ResilienceError::Exhausted {
            model: model.to_string(),
            causes,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;

    fn model() -> (Module, HashMap<String, Tensor>) {
        let mut rng = TensorRng::new(53);
        let x = var("x", TensorType::f32([1, 8, 14, 14]));
        let w = rng.uniform_f32([16, 8, 3, 3], -0.4, 0.4);
        let c = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        let y = builder::softmax(builder::batch_flatten(c));
        let m = Module::from_main(Function::new(vec![x], y));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), rng.uniform_f32([1, 8, 14, 14], -1.0, 1.0));
        (m, inputs)
    }

    #[test]
    fn no_faults_no_degradation() {
        let (m, inputs) = model();
        let mut s = ResilientSession::new(
            m,
            CostModel::default(),
            FaultPlan::seeded(0),
            ResiliencePolicy::default(),
        );
        let out = s.run("m", Permutation::NpApu, &inputs).unwrap();
        assert_eq!(out.permutation, Permutation::NpApu);
        assert!(!out.degraded());
        assert_eq!(s.stats().faults_injected, 0);
    }

    #[test]
    fn apu_loss_falls_back_with_identical_numerics() {
        let (m, inputs) = model();
        // Fault-free reference on the CPU permutation the chain lands on.
        let mut reference =
            relay_build(&m, Permutation::ByocCpu.mode(), CostModel::default()).unwrap();
        let (ref_outs, _) = reference.run(&inputs).unwrap();

        let mut s = ResilientSession::new(
            m,
            CostModel::default(),
            FaultPlan::seeded(7).device_lost(DeviceKind::Apu),
            ResiliencePolicy {
                // One APU loss opens its breaker, so the chain skips every
                // permutation that still needs the APU.
                breaker_threshold: 1,
                ..ResiliencePolicy::default()
            },
        );
        let out = s.run("m", Permutation::NpApu, &inputs).unwrap();
        assert!(out.degraded(), "APU loss must force a fallback");
        assert_eq!(out.permutation, Permutation::ByocCpu);
        assert!(
            out.outputs[0].bit_eq(&ref_outs[0]),
            "degraded run must be bit-identical to fault-free CPU run"
        );
        assert!(out.fallbacks.iter().any(|c| c.detail.contains("apu")));
    }

    #[test]
    fn exhausted_chain_carries_full_cause_chain() {
        let (m, inputs) = model();
        let mut s = ResilientSession::new(
            m,
            CostModel::default(),
            FaultPlan::seeded(3)
                .device_lost(DeviceKind::Apu)
                .device_lost(DeviceKind::Cpu),
            ResiliencePolicy::default(),
        );
        let err = s.run("m", Permutation::NpApu, &inputs).unwrap_err();
        let ResilienceError::Exhausted { model, causes } = err else {
            panic!("expected Exhausted, got {err}");
        };
        assert_eq!(model, "m");
        // Every chain step is accounted for.
        assert_eq!(causes.len(), Permutation::FALLBACK_CHAIN.len());
        for (cause, perm) in causes.iter().zip(Permutation::FALLBACK_CHAIN) {
            assert_eq!(cause.permutation, perm);
            assert!(!cause.detail.is_empty());
        }
        assert!(causes.iter().any(|c| c.detail.contains("apu")));
        assert!(causes.iter().any(|c| c.detail.contains("cpu")));
    }

    #[test]
    fn compile_reject_degrades_and_trips_breaker() {
        let (m, inputs) = model();
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            ..ResiliencePolicy::default()
        };
        let mut s = ResilientSession::new(
            m,
            CostModel::default(),
            FaultPlan::seeded(11).compile_reject(DeviceKind::Apu),
            policy,
        );
        let out = s.run("m", Permutation::NpApu, &inputs).unwrap();
        assert_eq!(out.permutation, Permutation::ByocCpu);
        let stats = s.stats();
        assert!(stats.breaker_trips >= 1, "{stats:?}");
        assert!(stats.open_devices.contains(&DeviceKind::Apu));
        // A second run now skips APU permutations via the breaker, without
        // consulting the driver again.
        let faults = s.injector().faults_injected();
        let out2 = s.run("m", Permutation::NpApu, &inputs).unwrap();
        assert_eq!(out2.permutation, Permutation::ByocCpu);
        assert!(out2.fallbacks.iter().all(|c| c.stage == "breaker"));
        assert_eq!(s.injector().faults_injected(), faults);
    }

    #[test]
    fn same_seed_same_outcome() {
        let (m, inputs) = model();
        let run = || {
            let mut s = ResilientSession::new(
                m.clone(),
                CostModel::default(),
                FaultPlan::seeded(7).transient_dispatch(DeviceKind::Apu, 3),
                ResiliencePolicy::default(),
            );
            let out = s.run("m", Permutation::NpApu, &inputs).unwrap();
            (
                out.permutation,
                out.time_us,
                out.fallbacks.len(),
                s.stats().faults_injected,
            )
        };
        assert_eq!(run(), run(), "seeded runs must be reproducible");
    }
}
