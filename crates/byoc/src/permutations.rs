//! The seven target permutations of the paper's experiments (§5, §6).

use crate::build::{relay_build, BuildError, TargetMode};
use serde::{Deserialize, Serialize};

use std::fmt;
use tvmnp_hwsim::CostModel;
use tvmnp_neuropilot::TargetPolicy;
use tvmnp_relay::expr::Module;

/// The seven permutations, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Permutation {
    /// TVM-only.
    TvmOnly,
    /// TVM BYOC with mobile CPU.
    ByocCpu,
    /// TVM BYOC with mobile APU.
    ByocApu,
    /// TVM BYOC with mobile CPU and APU.
    ByocCpuApu,
    /// NeuroPilot-only with mobile CPU.
    NpCpu,
    /// NeuroPilot-only with mobile APU.
    NpApu,
    /// NeuroPilot-only with mobile CPU and APU.
    NpCpuApu,
}

impl Permutation {
    /// All seven, in figure order.
    pub const ALL: [Permutation; 7] = [
        Permutation::TvmOnly,
        Permutation::ByocCpu,
        Permutation::ByocApu,
        Permutation::ByocCpuApu,
        Permutation::NpCpu,
        Permutation::NpApu,
        Permutation::NpCpuApu,
    ];

    /// Axis label as in Figs. 4 and 6.
    pub fn label(self) -> &'static str {
        match self {
            Permutation::TvmOnly => "TVM-only",
            Permutation::ByocCpu => "BYOC CPU",
            Permutation::ByocApu => "BYOC APU",
            Permutation::ByocCpuApu => "BYOC CPU+APU",
            Permutation::NpCpu => "NP-only CPU",
            Permutation::NpApu => "NP-only APU",
            Permutation::NpCpuApu => "NP-only CPU+APU",
        }
    }

    /// The paper-ordered degradation chain a resilient session walks when
    /// devices fail: NeuroPilot-APU → NeuroPilot-CPU+APU → BYOC-CPU →
    /// TVM-only. Each step needs strictly less accelerator trust than the
    /// one before; TVM-only is the last resort (pure host codegen).
    pub const FALLBACK_CHAIN: [Permutation; 4] = [
        Permutation::NpApu,
        Permutation::NpCpuApu,
        Permutation::ByocCpu,
        Permutation::TvmOnly,
    ];

    /// The degradation chain starting at `start`: the suffix of
    /// [`Permutation::FALLBACK_CHAIN`] from `start` when it is on the
    /// chain, otherwise `start` followed by the whole chain (any
    /// permutation can degrade into it).
    pub fn fallback_chain(start: Permutation) -> Vec<Permutation> {
        match Permutation::FALLBACK_CHAIN.iter().position(|&p| p == start) {
            Some(i) => Permutation::FALLBACK_CHAIN[i..].to_vec(),
            None => {
                let mut chain = vec![start];
                chain.extend(Permutation::FALLBACK_CHAIN);
                chain
            }
        }
    }

    /// The build mode realizing this permutation.
    pub fn mode(self) -> TargetMode {
        match self {
            Permutation::TvmOnly => TargetMode::TvmOnly,
            Permutation::ByocCpu => TargetMode::Byoc(TargetPolicy::CpuOnly),
            Permutation::ByocApu => TargetMode::Byoc(TargetPolicy::ApuPrefer),
            Permutation::ByocCpuApu => TargetMode::Byoc(TargetPolicy::CpuApu),
            Permutation::NpCpu => TargetMode::NeuroPilotOnly(TargetPolicy::CpuOnly),
            Permutation::NpApu => TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
            Permutation::NpCpuApu => TargetMode::NeuroPilotOnly(TargetPolicy::CpuApu),
        }
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured bar of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Which permutation.
    pub permutation: Permutation,
    /// Simulated inference time in milliseconds; `None` where the paper
    /// has a missing bar (NeuroPilot cannot compile the model).
    pub time_ms: Option<f64>,
    /// Number of BYOC subgraphs (0 outside BYOC modes).
    pub subgraphs: usize,
}

/// Measure one permutation analytically. `None` time = missing bar.
///
/// Inference time is input-independent (static shapes, static plans), so
/// measurement compiles the model and reads the cost model — the numeric
/// path is exercised separately by the correctness tests.
pub fn measure_one(
    module: &Module,
    permutation: Permutation,
    cost: &CostModel,
) -> Result<Measurement, BuildError> {
    match relay_build(module, permutation.mode(), cost.clone()) {
        Ok(compiled) => {
            let subgraphs = compiled.num_subgraphs();
            let us = compiled.estimate_us();
            Ok(Measurement {
                permutation,
                time_ms: Some(us / 1000.0),
                subgraphs,
            })
        }
        Err(BuildError::Unsupported(_)) => Ok(Measurement {
            permutation,
            time_ms: None,
            subgraphs: 0,
        }),
        Err(e) => Err(e),
    }
}

/// Measure all seven permutations (one figure group).
pub fn measure_all(module: &Module, cost: &CostModel) -> Result<Vec<Measurement>, BuildError> {
    Permutation::ALL
        .iter()
        .map(|&p| measure_one(module, p, cost))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;
    use tvmnp_tensor::Tensor;

    #[allow(clippy::type_complexity)]
    fn model(with_bn: bool) -> (Module, HashMap<String, Tensor>) {
        let mut rng = TensorRng::new(37);
        let x = var("x", TensorType::f32([1, 16, 28, 28]));
        let w = rng.uniform_f32([32, 16, 3, 3], -0.4, 0.4);
        let mut e = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        if with_bn {
            e = builder::batch_norm(
                e,
                rng.uniform_f32([32], 0.9, 1.1),
                rng.uniform_f32([32], -0.1, 0.1),
                rng.uniform_f32([32], -0.1, 0.1),
                rng.uniform_f32([32], 0.9, 1.1),
                1e-5,
            );
        }
        let w2 = rng.uniform_f32([32, 32, 3, 3], -0.4, 0.4);
        let e = builder::conv2d(e, w2, Conv2dAttrs::same(1));
        let y = builder::softmax(builder::batch_flatten(e));
        let m = Module::from_main(Function::new(vec![x], y));
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), rng.uniform_f32([1, 16, 28, 28], -1.0, 1.0));
        (m, inputs)
    }

    #[test]
    fn supported_model_has_all_seven_bars() {
        let (m, _inputs) = model(false);
        let ms = measure_all(&m, &CostModel::default()).unwrap();
        assert_eq!(ms.len(), 7);
        assert!(ms.iter().all(|r| r.time_ms.is_some()));
    }

    #[test]
    fn unsupported_model_misses_np_bars_only() {
        let (m, _inputs) = model(true);
        let ms = measure_all(&m, &CostModel::default()).unwrap();
        for r in &ms {
            match r.permutation {
                Permutation::NpCpu | Permutation::NpApu | Permutation::NpCpuApu => {
                    assert!(r.time_ms.is_none(), "{} should be missing", r.permutation)
                }
                _ => assert!(r.time_ms.is_some(), "{} should be present", r.permutation),
            }
        }
    }

    #[test]
    fn tvm_only_is_slowest_bar() {
        let (m, _inputs) = model(false);
        let ms = measure_all(&m, &CostModel::default()).unwrap();
        let tvm = ms[0].time_ms.unwrap();
        for r in &ms[1..] {
            if let Some(t) = r.time_ms {
                assert!(
                    tvm > t,
                    "TVM-only ({tvm}) must exceed {} ({t})",
                    r.permutation
                );
            }
        }
    }

    #[test]
    fn labels_in_paper_order() {
        assert_eq!(Permutation::ALL[0].label(), "TVM-only");
        assert_eq!(Permutation::ALL[6].label(), "NP-only CPU+APU");
    }

    #[test]
    fn fallback_chain_degrades_to_tvm_only() {
        let full = Permutation::fallback_chain(Permutation::NpApu);
        assert_eq!(full, Permutation::FALLBACK_CHAIN.to_vec());
        let mid = Permutation::fallback_chain(Permutation::ByocCpu);
        assert_eq!(mid, vec![Permutation::ByocCpu, Permutation::TvmOnly]);
        // Off-chain starts prepend themselves, then walk the whole chain.
        let off = Permutation::fallback_chain(Permutation::ByocApu);
        assert_eq!(off[0], Permutation::ByocApu);
        assert_eq!(off.last(), Some(&Permutation::TvmOnly));
        assert_eq!(off.len(), 5);
    }
}
