//! Content-addressed compiled-artifact cache.
//!
//! TVM treats compilation artifacts as reusable, deployable units
//! (Listing 6's `export_library`); this cache applies that idea across the
//! paper's seven target permutations: each (module fingerprint, target
//! permutation, quant config) triple is compiled exactly once, and every
//! later request — including a resilience-layer fallback re-dispatch —
//! instantiates an executor from the stored artifact without running the
//! partitioner, the Neuron codegen, or the planner again.
//!
//! Bookkeeping is observable: `cache.hit` / `cache.miss` / `cache.evict`
//! telemetry counters, and an LRU byte budget bounds resident size. With a
//! cache directory configured (`--cache-dir`), entries also persist as
//! JSON artifacts that survive the process and LRU eviction.

use crate::build::{relay_build_with_artifact, BuildError, CompiledModel, TargetMode};
use crate::codegen::NeuronModule;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use tvmnp_hwsim::CostModel;
use tvmnp_neuropilot::{CompiledNetwork, ExecutionPlan, NeuronGraph};
use tvmnp_relay::module_fingerprint;
use tvmnp_relay::passes::PartitionReport;
use tvmnp_relay::Module;
use tvmnp_runtime::{Artifact, GraphExecutor, LoaderRegistry};

/// Serializable cache entry: everything needed to re-instantiate a
/// [`CompiledModel`] without any codegen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CachedArtifact {
    /// TVM-side modes (TvmOnly / Byoc): the exported artifact, whose
    /// external blobs embed their execution plans.
    Tvm {
        /// The deployable artifact.
        artifact: Artifact,
        /// Input names in parameter order.
        input_names: Vec<String>,
        /// Partition report fields (the report type itself is not serde).
        num_subgraphs: usize,
        /// Offloaded primitive calls.
        offloaded_calls: usize,
        /// Host-side primitive calls.
        host_calls: usize,
    },
    /// NeuroPilot-only modes: converted graph plus its execution plan.
    Neuron {
        /// The converted Neuron graph.
        graph: NeuronGraph,
        /// The planner's output for this graph/policy.
        plan: ExecutionPlan,
        /// Input names in parameter order.
        input_names: Vec<String>,
    },
}

impl CachedArtifact {
    /// Instantiate a runnable model from this entry. Pure load: no
    /// partition, codegen, or planner spans are emitted.
    fn instantiate(&self, cost: &CostModel) -> Result<CompiledModel, BuildError> {
        match self {
            CachedArtifact::Tvm {
                artifact,
                input_names,
                num_subgraphs,
                offloaded_calls,
                host_calls,
            } => {
                let mut loaders = LoaderRegistry::new();
                loaders.register("neuropilot", NeuronModule::loader(cost.clone()));
                let registry = loaders.load_all(artifact).map_err(BuildError::Runtime)?;
                let executor = GraphExecutor::new(artifact.graph.clone(), registry, cost.clone())
                    .map_err(|e| BuildError::Runtime(e.to_string()))?;
                Ok(CompiledModel::Tvm {
                    executor,
                    input_names: input_names.clone(),
                    report: PartitionReport {
                        num_subgraphs: *num_subgraphs,
                        offloaded_calls: *offloaded_calls,
                        host_calls: *host_calls,
                    },
                })
            }
            CachedArtifact::Neuron {
                graph,
                plan,
                input_names,
            } => Ok(CompiledModel::Neuron {
                network: CompiledNetwork::from_plan(graph.clone(), plan.clone(), cost.clone()),
                input_names: input_names.clone(),
            }),
        }
    }

    /// Serialized size, used for the LRU byte budget.
    fn size_bytes(&self) -> usize {
        serde_json::to_string(self).map(|s| s.len()).unwrap_or(0)
    }
}

/// Capture a freshly-built model (plus its exported artifact) as an entry.
fn entry_from_build(model: &CompiledModel, artifact: Option<Artifact>) -> Option<CachedArtifact> {
    match (model, artifact) {
        (
            CompiledModel::Tvm {
                input_names,
                report,
                ..
            },
            Some(artifact),
        ) => Some(CachedArtifact::Tvm {
            artifact,
            input_names: input_names.clone(),
            num_subgraphs: report.num_subgraphs,
            offloaded_calls: report.offloaded_calls,
            host_calls: report.host_calls,
        }),
        (
            CompiledModel::Neuron {
                network,
                input_names,
            },
            _,
        ) => Some(CachedArtifact::Neuron {
            graph: network.graph().clone(),
            plan: network.plan().clone(),
            input_names: input_names.clone(),
        }),
        _ => None,
    }
}

/// On-disk envelope: the entry plus the key it was stored under. The key
/// embeds the module fingerprint, so a load can verify the file actually
/// belongs to the requested (module, mode, quant) triple — a renamed,
/// corrupted, or hand-edited cache file is a miss, never a silently
/// served wrong artifact.
#[derive(Serialize, Deserialize)]
struct DiskEntry {
    key: String,
    entry: CachedArtifact,
}

struct CacheState {
    /// key → (entry, size); recency tracked in `order` (back = newest).
    entries: HashMap<String, (CachedArtifact, usize)>,
    order: Vec<String>,
    total_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The process-wide artifact cache. Cheap to share via `Arc`; all methods
/// take `&self`.
pub struct ArtifactCache {
    state: Mutex<CacheState>,
    budget_bytes: usize,
    disk_dir: Option<PathBuf>,
}

/// Aggregate cache statistics for reports and bench JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from memory or disk.
    pub hits: u64,
    /// Requests that compiled.
    pub misses: u64,
    /// Entries evicted by the LRU byte budget.
    pub evictions: u64,
    /// Bytes currently resident in memory.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ArtifactCache {
    /// In-memory cache with an LRU byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        ArtifactCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                order: Vec::new(),
                total_bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget_bytes,
            disk_dir: None,
        }
    }

    /// Also persist entries as JSON files under `dir` (created on first
    /// write). Disk entries survive eviction and process restarts.
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// Cache key for (module, mode, quant config).
    pub fn key(module: &Module, mode: TargetMode, quant: &str) -> String {
        format!("{}-{}-{}", module_fingerprint(module), mode.label(), quant)
    }

    /// Canonical quant-config label for the cache key: the input
    /// quantization of a model, or `"fp32"` for float models.
    pub fn quant_label(input_quant: Option<tvmnp_tensor::QuantParams>) -> String {
        match input_quant {
            Some(q) => format!("u8-s{}-z{}", q.scale, q.zero_point),
            None => "fp32".to_string(),
        }
    }

    /// Build-or-load: returns a runnable model, compiling only on a miss.
    /// `quant` labels the quantization config of the module (use `"fp32"`
    /// for float models); it is part of the key because two quantizations
    /// of one architecture are distinct compilation products.
    pub fn get_or_build(
        &self,
        module: &Module,
        mode: TargetMode,
        cost: &CostModel,
        quant: &str,
    ) -> Result<CompiledModel, BuildError> {
        let key = Self::key(module, mode, quant);
        if let Some(entry) = self.lookup(&key) {
            return entry.instantiate(cost);
        }
        tvmnp_telemetry::counter_add("cache.miss", &[("mode", &mode.label())], 1);
        {
            let mut st = self.state.lock();
            st.misses += 1;
        }
        let (model, artifact) = relay_build_with_artifact(module, mode, cost.clone())?;
        if let Some(entry) = entry_from_build(&model, artifact) {
            self.insert(key, entry);
        }
        Ok(model)
    }

    /// Whether the key is resident (memory or disk) without touching
    /// recency or counters — for tests and reports.
    pub fn contains(&self, module: &Module, mode: TargetMode, quant: &str) -> bool {
        let key = Self::key(module, mode, quant);
        if self.state.lock().entries.contains_key(&key) {
            return true;
        }
        self.disk_path(&key).map(|p| p.exists()).unwrap_or(false)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let st = self.state.lock();
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            resident_bytes: st.total_bytes,
        }
    }

    fn lookup(&self, key: &str) -> Option<CachedArtifact> {
        {
            let mut st = self.state.lock();
            if let Some((entry, _)) = st.entries.get(key) {
                let entry = entry.clone();
                st.order.retain(|k| k != key);
                st.order.push(key.to_string());
                st.hits += 1;
                drop(st);
                tvmnp_telemetry::counter_add("cache.hit", &[("source", "memory")], 1);
                return Some(entry);
            }
        }
        // Miss in memory: an evicted or prior-process entry may be on disk.
        let path = self.disk_path(key)?;
        let json = std::fs::read_to_string(&path).ok()?;
        let disk: DiskEntry = serde_json::from_str(&json).ok()?;
        if disk.key != key {
            // Fingerprint/key mismatch: the file does not describe this
            // build request. Treat as a miss rather than serving a wrong
            // artifact.
            tvmnp_telemetry::counter_add("cache.disk_key_mismatch", &[], 1);
            return None;
        }
        let entry = disk.entry;
        {
            let mut st = self.state.lock();
            st.hits += 1;
        }
        tvmnp_telemetry::counter_add("cache.hit", &[("source", "disk")], 1);
        self.admit(key.to_string(), entry.clone(), false);
        Some(entry)
    }

    fn insert(&self, key: String, entry: CachedArtifact) {
        self.admit(key, entry, true);
    }

    /// Put an entry in memory (evicting LRU past the budget) and, when
    /// `write_disk` and a cache dir are configured, persist it.
    fn admit(&self, key: String, entry: CachedArtifact, write_disk: bool) {
        if write_disk {
            if let Some(path) = self.disk_path(&key) {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let disk = DiskEntry {
                    key: key.clone(),
                    entry: entry.clone(),
                };
                if let Ok(json) = serde_json::to_string(&disk) {
                    let _ = std::fs::write(&path, json);
                }
            }
        }
        let size = entry.size_bytes();
        let mut st = self.state.lock();
        if let Some((_, old)) = st.entries.remove(&key) {
            st.total_bytes -= old;
            st.order.retain(|k| k != &key);
        }
        st.entries.insert(key.clone(), (entry, size));
        st.order.push(key);
        st.total_bytes += size;
        let mut evicted: Vec<(String, usize)> = Vec::new();
        while st.total_bytes > self.budget_bytes && st.order.len() > 1 {
            let victim = st.order.remove(0);
            if let Some((_, bytes)) = st.entries.remove(&victim) {
                st.total_bytes -= bytes;
                st.evictions += 1;
                tvmnp_telemetry::counter_add("cache.evict", &[], 1);
                evicted.push((victim, bytes));
            }
        }
        drop(st);
        // Event-sink forwarding happens outside the lock: the flight
        // recorder takes its own mutex and may do I/O on dump triggers.
        if tvmnp_telemetry::sink_active() {
            for (victim, bytes) in evicted {
                tvmnp_telemetry::emit_event(
                    "cache.evict",
                    vec![
                        ("key".to_string(), victim),
                        ("bytes".to_string(), bytes.to_string()),
                        ("reason".to_string(), "lru-budget".to_string()),
                    ],
                );
            }
        }
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::relay_build;
    use std::collections::HashMap as Map;
    use tvmnp_neuropilot::TargetPolicy;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;
    use tvmnp_tensor::Tensor;

    fn conv_model(seed: u64) -> Module {
        let mut rng = TensorRng::new(seed);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        Module::from_main(Function::new(vec![x], y))
    }

    fn an_input() -> Map<String, Tensor> {
        let mut rng = TensorRng::new(99);
        let mut m = Map::new();
        m.insert("x".to_string(), rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0));
        m.insert(
            "input".to_string(),
            rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0),
        );
        m
    }

    #[test]
    fn second_build_hits_with_bit_identical_outputs() {
        // (The zero-codegen-span assertion lives in tests/serving_flow.rs,
        // which owns the process-global telemetry collector.)
        let cache = ArtifactCache::new(64 << 20);
        let m = conv_model(7);
        let cost = CostModel::default();
        for mode in [
            TargetMode::TvmOnly,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
        ] {
            let mut first = cache.get_or_build(&m, mode, &cost, "fp32").unwrap();
            let mut second = cache.get_or_build(&m, mode, &cost, "fp32").unwrap();

            // The loaded model is numerically identical to the built one.
            let inputs = an_input();
            let (a, ta) = first.run(&inputs).unwrap();
            let (b, tb) = second.run(&inputs).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!(x.bit_eq(y), "cached build must be bit-identical");
            }
            assert_eq!(ta, tb);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_quant_label_is_a_different_entry() {
        let cache = ArtifactCache::new(64 << 20);
        let m = conv_model(7);
        let cost = CostModel::default();
        cache
            .get_or_build(&m, TargetMode::TvmOnly, &cost, "fp32")
            .unwrap();
        cache
            .get_or_build(&m, TargetMode::TvmOnly, &cost, "u8")
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn lru_budget_evicts_oldest() {
        let m1 = conv_model(1);
        let m2 = conv_model(2);
        let cost = CostModel::default();
        // Size one entry, then budget for ~1.5 entries: the second insert
        // must evict the first.
        let probe = ArtifactCache::new(usize::MAX);
        probe
            .get_or_build(&m1, TargetMode::TvmOnly, &cost, "fp32")
            .unwrap();
        let one = probe.stats().resident_bytes;
        assert!(one > 0);

        let cache = ArtifactCache::new(one + one / 2);
        cache
            .get_or_build(&m1, TargetMode::TvmOnly, &cost, "fp32")
            .unwrap();
        cache
            .get_or_build(&m2, TargetMode::TvmOnly, &cost, "fp32")
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(!cache.contains(&m1, TargetMode::TvmOnly, "fp32"));
        assert!(cache.contains(&m2, TargetMode::TvmOnly, "fp32"));
        // The evicted model compiles again — miss, not a crash.
        cache
            .get_or_build(&m1, TargetMode::TvmOnly, &cost, "fp32")
            .unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn disk_cache_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("tvmnp-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = conv_model(7);
        let cost = CostModel::default();
        {
            let cache = ArtifactCache::new(64 << 20).with_disk_dir(&dir);
            cache
                .get_or_build(&m, TargetMode::Byoc(TargetPolicy::CpuApu), &cost, "fp32")
                .unwrap();
            assert_eq!(cache.stats().misses, 1);
        }
        // Fresh instance, same dir: served from disk, no compile.
        let cache = ArtifactCache::new(64 << 20).with_disk_dir(&dir);
        cache
            .get_or_build(&m, TargetMode::Byoc(TargetPolicy::CpuApu), &cost, "fp32")
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_entry_with_mismatched_key_is_a_miss_not_a_wrong_artifact() {
        let dir = std::env::temp_dir().join(format!("tvmnp-cache-mkey-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m1 = conv_model(1);
        let m2 = conv_model(2);
        let cost = CostModel::default();
        {
            let cache = ArtifactCache::new(64 << 20).with_disk_dir(&dir);
            cache
                .get_or_build(&m1, TargetMode::TvmOnly, &cost, "fp32")
                .unwrap();
        }
        // Masquerade m1's artifact under m2's key, as a renamed / restored /
        // hand-copied cache file would.
        let k1 = ArtifactCache::key(&m1, TargetMode::TvmOnly, "fp32");
        let k2 = ArtifactCache::key(&m2, TargetMode::TvmOnly, "fp32");
        std::fs::rename(
            dir.join(format!("{k1}.json")),
            dir.join(format!("{k2}.json")),
        )
        .unwrap();

        // A fresh instance must detect the embedded-key mismatch and
        // recompile m2 instead of serving m1's artifact.
        let cache = ArtifactCache::new(64 << 20).with_disk_dir(&dir);
        let mut built = cache
            .get_or_build(&m2, TargetMode::TvmOnly, &cost, "fp32")
            .unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);

        // And the recompile really is m2: bit-identical to a direct build.
        let inputs = an_input();
        let (got, _) = built.run(&inputs).unwrap();
        let mut direct = relay_build(&m2, TargetMode::TvmOnly, cost).unwrap();
        let (want, _) = direct.run(&inputs).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!(a.bit_eq(b));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_disk_format_without_key_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("tvmnp-cache-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = conv_model(3);
        let key = ArtifactCache::key(&m, TargetMode::TvmOnly, "fp32");
        // Pre-wrapper files stored the bare entry; they no longer parse as
        // `DiskEntry` and must fall through to a rebuild, not an error.
        std::fs::write(dir.join(format!("{key}.json")), "{\"not\":\"a DiskEntry\"}").unwrap();
        let cache = ArtifactCache::new(64 << 20).with_disk_dir(&dir);
        cache
            .get_or_build(&m, TargetMode::TvmOnly, &CostModel::default(), "fp32")
            .unwrap();
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
