//! The Android NNAPI BYOC flow — the paper team's *previous* work
//! (reference \[11\], "Enabling android nnapi flow for tvm runtime"), which
//! §3/Fig. 3 positions as the predecessor of the NeuroPilot-direct flow
//! this paper builds.
//!
//! NNAPI reaches the same accelerators but through the Android HAL:
//!
//! * a **narrower op surface** than Neuron IR (the C API lags the vendor
//!   compiler — e.g. no leaky-ReLU, no element-wise maximum, no pad), so
//!   the BYOC partitioner offloads fewer ops and produces more subgraphs;
//! * an extra **HAL round trip** per compiled-model execution
//!   (`ANeuralNetworksExecution_compute` crosses the binder boundary).
//!
//! Both effects are modelled here, and the `nnapi_vs_nir` harness shows
//! the consequence the paper's introduction claims: the NeuroPilot-direct
//! flow dominates the NNAPI flow it replaced.

use crate::build::{BuildError, CompiledModel};
use crate::codegen::NeuronModule;
use std::collections::HashSet;
use std::sync::OnceLock;
use tvmnp_hwsim::CostModel;
use tvmnp_neuropilot::TargetPolicy;
use tvmnp_relay::expr::Module;
use tvmnp_relay::passes::{
    fold_constants, partition_graph, simplify, CompilerSupport, PartitionReport,
};
use tvmnp_relay::{OpKind, Type};
use tvmnp_runtime::module::{ExternalModule, ModuleError};
use tvmnp_runtime::{ExecutorGraph, GraphExecutor, ModuleRegistry};
use tvmnp_tensor::Tensor;

/// Fixed HAL/binder round-trip charged per NNAPI execution, microseconds
/// (scaled with the rest of the overhead model; see DESIGN.md).
pub const NNAPI_HAL_OVERHEAD_US: f64 = 40.0;

/// Relay ops the NNAPI C API can express (a strict subset of the Neuron
/// handler dictionary).
pub const NNAPI_RELAY_OPS: &[&str] = &[
    "nn.conv2d",
    "nn.dense",
    "nn.bias_add",
    "nn.relu",
    "clip",
    "sigmoid",
    "tanh",
    "nn.max_pool2d",
    "nn.avg_pool2d",
    "nn.global_avg_pool2d",
    "nn.softmax",
    "add",
    "multiply",
    "reshape",
    "concatenate",
    "nn.batch_flatten",
    "qnn.quantize",
    "qnn.dequantize",
    "qnn.requantize",
    "qnn.conv2d",
    "qnn.dense",
    "qnn.add",
    "qnn.concatenate",
];

fn nnapi_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| NNAPI_RELAY_OPS.iter().copied().collect())
}

/// Whether the NNAPI flow can take this Relay op.
pub fn nnapi_supported(op_name: &str) -> bool {
    nnapi_set().contains(op_name)
}

/// The `CompilerSupport` oracle of the NNAPI flow.
pub struct NnapiSupport;

impl CompilerSupport for NnapiSupport {
    fn name(&self) -> &str {
        "nnapi"
    }

    fn supported(&self, op: &OpKind, _arg_types: &[&Type]) -> bool {
        nnapi_supported(op.name())
    }
}

/// An NNAPI external module: the same compiled network underneath (NNAPI
/// drives the same silicon), plus the HAL round trip per execution.
pub struct NnapiModule {
    inner: NeuronModule,
}

impl NnapiModule {
    /// Run the NNAPI codegen on a partitioned Relay function.
    pub fn codegen(
        symbol: impl Into<String>,
        func: &tvmnp_relay::Function,
        policy: TargetPolicy,
        cost: CostModel,
    ) -> Result<Self, tvmnp_neuropilot::NeuronError> {
        Ok(NnapiModule {
            inner: NeuronModule::codegen(symbol, func, policy, cost)?,
        })
    }
}

impl ExternalModule for NnapiModule {
    fn symbol(&self) -> &str {
        self.inner.symbol()
    }

    fn compiler(&self) -> &str {
        "nnapi"
    }

    fn dispatch_device(&self) -> tvmnp_hwsim::DeviceKind {
        self.inner.dispatch_device()
    }

    fn run(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, f64), ModuleError> {
        let (outs, t) = self.inner.run(inputs)?;
        Ok((outs, t + NNAPI_HAL_OVERHEAD_US))
    }

    fn estimate_time_us(&self) -> f64 {
        self.inner.estimate_time_us() + NNAPI_HAL_OVERHEAD_US
    }

    fn estimate_energy_uj(&self) -> f64 {
        self.inner.estimate_energy_uj()
    }

    fn kernel_profile(&self) -> Vec<tvmnp_runtime::module::KernelProfile> {
        // The HAL round trip is real charged time, so the profile carries
        // it as an explicit data-movement item — entries keep summing to
        // estimate_time_us.
        let mut entries = self.inner.kernel_profile();
        entries.push(tvmnp_runtime::module::KernelProfile {
            label: "nnapi-hal".to_string(),
            kind: tvmnp_hwsim::WorkKind::DataMovement,
            device: self.dispatch_device(),
            class: tvmnp_hwsim::KernelClass::VendorTuned,
            us: NNAPI_HAL_OVERHEAD_US,
            analytic_us: NNAPI_HAL_OVERHEAD_US,
            energy_uj: 0.0,
        });
        entries
    }

    fn serialize(&self) -> serde_json::Value {
        self.inner.serialize()
    }
}

/// Build a module through the NNAPI flow: partition with the NNAPI op
/// surface and execute external subgraphs through the HAL.
pub fn relay_build_nnapi(
    module: &Module,
    policy: TargetPolicy,
    cost: CostModel,
) -> Result<(CompiledModel, PartitionReport), BuildError> {
    let prepared = fold_constants(&simplify(module));
    let input_names: Vec<String> = prepared
        .main()
        .params
        .iter()
        .filter_map(|p| match &p.kind {
            tvmnp_relay::ExprKind::Var(v) => Some(v.name.clone()),
            _ => None,
        })
        .collect();
    let (partitioned, report) = partition_graph(&prepared, &NnapiSupport)
        .map_err(|e| BuildError::Partition(e.to_string()))?;
    let graph =
        ExecutorGraph::build(&partitioned).map_err(|e| BuildError::Runtime(e.to_string()))?;
    let mut registry = ModuleRegistry::new();
    for name in partitioned.external_functions() {
        let func = &partitioned.functions[name];
        let module =
            NnapiModule::codegen(name, func, policy, cost.clone()).map_err(BuildError::Neuron)?;
        registry.register(Box::new(module));
    }
    let executor = GraphExecutor::new(graph, registry, cost)
        .map_err(|e| BuildError::Runtime(e.to_string()))?;
    Ok((
        CompiledModel::Tvm {
            executor,
            input_names,
            report: report.clone(),
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{relay_build, TargetMode};
    use tvmnp_models_testutil::*;

    // Local mini-model helpers (the models crate depends on byoc's
    // downstream siblings, so tests build their own graphs).
    mod tvmnp_models_testutil {
        pub use std::collections::HashMap;
        pub use tvmnp_relay::builder::*;
        pub use tvmnp_relay::expr::{var, Function, Module};
        pub use tvmnp_relay::{Conv2dAttrs, TensorType};
        pub use tvmnp_tensor::rng::TensorRng;
        pub use tvmnp_tensor::Tensor;

        /// conv → leaky_relu (NNAPI-unsupported) → conv → relu → softmax.
        pub fn leaky_model() -> (Module, HashMap<String, Tensor>) {
            let mut rng = TensorRng::new(71);
            let x = var("x", TensorType::f32([1, 8, 16, 16]));
            let w1 = rng.uniform_f32([8, 8, 3, 3], -0.4, 0.4);
            let e = conv2d(x.clone(), w1, Conv2dAttrs::same(1));
            let e = leaky_relu(e, 0.1);
            let w2 = rng.uniform_f32([8, 8, 3, 3], -0.4, 0.4);
            let e = relu(conv2d(e, w2, Conv2dAttrs::same(1)));
            let e = softmax(batch_flatten(e));
            let m = Module::from_main(Function::new(vec![x], e));
            let mut ins = HashMap::new();
            ins.insert("x".to_string(), rng.uniform_f32([1, 8, 16, 16], -1.0, 1.0));
            (m, ins)
        }
    }

    #[test]
    fn nnapi_surface_is_a_strict_subset_of_neuron() {
        for op in NNAPI_RELAY_OPS {
            assert!(
                tvmnp_neuropilot::support::neuron_supported(op),
                "{op} in NNAPI but not Neuron?"
            );
        }
        // The gaps that motivated the NeuroPilot-direct flow.
        for op in ["nn.leaky_relu", "maximum", "nn.pad", "transpose"] {
            assert!(tvmnp_neuropilot::support::neuron_supported(op));
            assert!(!nnapi_supported(op), "{op} should be an NNAPI gap");
        }
    }

    #[test]
    fn nnapi_flow_runs_and_matches_reference() {
        let (m, ins) = leaky_model();
        let reference = tvmnp_relay::interp::run_module(&m, &ins).unwrap();
        let (mut compiled, report) =
            relay_build_nnapi(&m, TargetPolicy::CpuApu, CostModel::default()).unwrap();
        assert!(
            report.num_subgraphs >= 2,
            "leaky_relu must split the NNAPI offload"
        );
        let (outs, t) = compiled.run(&ins).unwrap();
        assert!(outs[0].bit_eq(&reference));
        assert!(t > 0.0);
    }

    #[test]
    fn neuropilot_direct_dominates_nnapi() {
        let (m, _) = leaky_model();
        let cost = CostModel::default();
        // NeuroPilot-direct offloads the leaky_relu too.
        let (_, nir_report) = crate::build::partition_for_nir(&m).unwrap();
        let (nnapi_compiled, nnapi_report) =
            relay_build_nnapi(&m, TargetPolicy::CpuApu, cost.clone()).unwrap();
        assert!(nir_report.offload_fraction() > nnapi_report.offload_fraction());
        assert!(nir_report.num_subgraphs < nnapi_report.num_subgraphs);

        let nir_compiled = relay_build(&m, TargetMode::Byoc(TargetPolicy::CpuApu), cost).unwrap();
        let t_nir = nir_compiled.estimate_us();
        let t_nnapi = nnapi_compiled.estimate_us();
        assert!(
            t_nir < t_nnapi,
            "NeuroPilot-direct ({t_nir:.1} us) must beat NNAPI ({t_nnapi:.1} us)"
        );
    }

    #[test]
    fn hal_overhead_charged_per_subgraph_execution() {
        let (m, _) = leaky_model();
        let cost = CostModel::default();
        let (nnapi_compiled, report) =
            relay_build_nnapi(&m, TargetPolicy::CpuOnly, cost.clone()).unwrap();
        // Build the same partition through plain NeuronModules to isolate
        // the HAL term.
        let prepared = fold_constants(&simplify(&m));
        let (partitioned, _) = partition_graph(&prepared, &NnapiSupport).unwrap();
        let graph = ExecutorGraph::build(&partitioned).unwrap();
        let mut registry = ModuleRegistry::new();
        for name in partitioned.external_functions() {
            registry.register(Box::new(
                NeuronModule::codegen(
                    name,
                    &partitioned.functions[name],
                    TargetPolicy::CpuOnly,
                    cost.clone(),
                )
                .unwrap(),
            ));
        }
        let plain = GraphExecutor::new(graph, registry, cost).unwrap();
        let delta = nnapi_compiled.estimate_us() - plain.estimate_time_us();
        let expected = report.num_subgraphs as f64 * NNAPI_HAL_OVERHEAD_US;
        assert!(
            (delta - expected).abs() < 1e-6,
            "HAL delta {delta} != {expected} ({} subgraphs)",
            report.num_subgraphs
        );
    }
}
