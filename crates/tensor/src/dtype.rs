//! Element data types supported by the stack.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a [`crate::Tensor`].
///
/// The paper's stack handles float32 models (Keras, PyTorch, Darknet) and
/// pre-quantized int8/uint8 models (TFLite QNN); `I32` is the accumulator
/// type of quantized convolution/dense and the type of bias tensors in QNN
/// graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// IEEE-754 single precision.
    F32,
    /// Signed 8-bit affine-quantized value.
    I8,
    /// Unsigned 8-bit affine-quantized value (TFLite's classic quant scheme).
    U8,
    /// 32-bit signed integer (accumulators, biases, indices).
    I32,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::I8 | DType::U8 => 1,
        }
    }

    /// Whether this is one of the 8-bit quantized storage types.
    pub const fn is_quantized(self) -> bool {
        matches!(self, DType::I8 | DType::U8)
    }

    /// Whether this type is a floating point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32)
    }

    /// Canonical lowercase name, matching TVM's dtype strings.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::I8 => "int8",
            DType::U8 => "uint8",
            DType::I32 => "int32",
        }
    }

    /// Parse a TVM-style dtype string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "float32" | "f32" => Some(DType::F32),
            "int8" | "i8" => Some(DType::I8),
            "uint8" | "u8" => Some(DType::U8),
            "int32" | "i32" => Some(DType::I32),
            _ => None,
        }
    }

    /// Representable range for the integer types, as `(min, max)`.
    ///
    /// Returns `None` for floats.
    pub fn int_range(self) -> Option<(i32, i32)> {
        match self {
            DType::I8 => Some((i8::MIN as i32, i8::MAX as i32)),
            DType::U8 => Some((u8::MIN as i32, u8::MAX as i32)),
            DType::I32 => Some((i32::MIN, i32::MAX)),
            DType::F32 => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
    }

    #[test]
    fn parse_roundtrip() {
        for d in [DType::F32, DType::I8, DType::U8, DType::I32] {
            assert_eq!(DType::parse(d.name()), Some(d));
        }
        assert_eq!(DType::parse("float64"), None);
    }

    #[test]
    fn quantized_flags() {
        assert!(DType::I8.is_quantized());
        assert!(DType::U8.is_quantized());
        assert!(!DType::F32.is_quantized());
        assert!(!DType::I32.is_quantized());
        assert!(DType::F32.is_float());
    }

    #[test]
    fn int_ranges() {
        assert_eq!(DType::I8.int_range(), Some((-128, 127)));
        assert_eq!(DType::U8.int_range(), Some((0, 255)));
        assert_eq!(DType::F32.int_range(), None);
    }
}
