//! The dense tensor value type shared by every layer of the stack.

use crate::dtype::DType;
use crate::quant::QuantParams;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by tensor construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Element count does not match the shape.
    LengthMismatch { expected: usize, got: usize },
    /// An operation was asked to treat the tensor as the wrong dtype.
    DTypeMismatch { expected: DType, got: DType },
    /// Two shapes that had to agree did not.
    ShapeMismatch { left: Shape, right: Shape },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape element count {expected}"
                )
            }
            TensorError::DTypeMismatch { expected, got } => {
                write!(f, "expected dtype {expected}, got {got}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Backing storage, one dense row-major buffer per dtype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Data {
    /// float32 elements.
    F32(Vec<f32>),
    /// int8 elements.
    I8(Vec<i8>),
    /// uint8 elements.
    U8(Vec<u8>),
    /// int32 elements.
    I32(Vec<i32>),
}

impl Data {
    fn len(&self) -> usize {
        match self {
            Data::F32(v) => v.len(),
            Data::I8(v) => v.len(),
            Data::U8(v) => v.len(),
            Data::I32(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            Data::F32(_) => DType::F32,
            Data::I8(_) => DType::I8,
            Data::U8(_) => DType::U8,
            Data::I32(_) => DType::I32,
        }
    }
}

/// A dense row-major tensor.
///
/// Quantized tensors carry their affine [`QuantParams`] alongside the data;
/// this is exactly the *tensor-oriented* representation Neuron IR requires
/// and that §3.3 of the paper derives from Relay's operator-oriented QNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Data,
    /// Quantization parameters; `None` for float tensors and raw i32 indices.
    quant: Option<QuantParams>,
}

impl Tensor {
    /// Construct a float32 tensor.
    pub fn from_f32(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Data::F32(data),
            quant: None,
        })
    }

    /// Construct an int8 tensor with quantization parameters.
    pub fn from_i8(
        shape: impl Into<Shape>,
        data: Vec<i8>,
        quant: QuantParams,
    ) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Data::I8(data),
            quant: Some(quant),
        })
    }

    /// Construct a uint8 tensor with quantization parameters.
    pub fn from_u8(
        shape: impl Into<Shape>,
        data: Vec<u8>,
        quant: QuantParams,
    ) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Data::U8(data),
            quant: Some(quant),
        })
    }

    /// Construct an int32 tensor (bias/accumulator/index).
    pub fn from_i32(
        shape: impl Into<Shape>,
        data: Vec<i32>,
        quant: Option<QuantParams>,
    ) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Data::I32(data),
            quant,
        })
    }

    /// A float tensor of zeros.
    pub fn zeros_f32(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: Data::F32(vec![0.0; n]),
            quant: None,
        }
    }

    /// A float scalar.
    pub fn scalar_f32(v: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: Data::F32(vec![v]),
            quant: None,
        }
    }

    /// An int32 scalar.
    pub fn scalar_i32(v: i32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: Data::I32(vec![v]),
            quant: None,
        }
    }

    /// Shape accessor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Total elements.
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Size in bytes of the payload.
    pub fn size_bytes(&self) -> usize {
        self.num_elements() * self.dtype().size_bytes()
    }

    /// Quantization parameters, if any.
    pub fn quant(&self) -> Option<QuantParams> {
        self.quant
    }

    /// Attach/replace quantization parameters (used by QNN propagation).
    pub fn with_quant(mut self, quant: QuantParams) -> Self {
        self.quant = Some(quant);
        self
    }

    /// Borrow as `&[f32]`.
    pub fn as_f32(&self) -> Result<&[f32], TensorError> {
        match &self.data {
            Data::F32(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                got: other.dtype(),
            }),
        }
    }

    /// Borrow as `&mut [f32]`.
    pub fn as_f32_mut(&mut self) -> Result<&mut [f32], TensorError> {
        match &mut self.data {
            Data::F32(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                got: other.dtype(),
            }),
        }
    }

    /// Borrow as `&[i8]`.
    pub fn as_i8(&self) -> Result<&[i8], TensorError> {
        match &self.data {
            Data::I8(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::I8,
                got: other.dtype(),
            }),
        }
    }

    /// Borrow as `&[u8]`.
    pub fn as_u8(&self) -> Result<&[u8], TensorError> {
        match &self.data {
            Data::U8(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::U8,
                got: other.dtype(),
            }),
        }
    }

    /// Borrow as `&[i32]`.
    pub fn as_i32(&self) -> Result<&[i32], TensorError> {
        match &self.data {
            Data::I32(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::I32,
                got: other.dtype(),
            }),
        }
    }

    /// Read element `i` of an integer tensor widened to i32.
    pub fn int_at(&self, i: usize) -> i32 {
        match &self.data {
            Data::I8(v) => v[i] as i32,
            Data::U8(v) => v[i] as i32,
            Data::I32(v) => v[i],
            Data::F32(_) => panic!("int_at on float tensor"),
        }
    }

    /// Iterate the integer payload widened to i32.
    pub fn iter_int(&self) -> Box<dyn Iterator<Item = i32> + '_> {
        match &self.data {
            Data::I8(v) => Box::new(v.iter().map(|&x| x as i32)),
            Data::U8(v) => Box::new(v.iter().map(|&x| x as i32)),
            Data::I32(v) => Box::new(v.iter().copied()),
            Data::F32(_) => panic!("iter_int on float tensor"),
        }
    }

    /// Build an integer tensor of `dtype` from i32 values (saturating).
    pub fn from_int_values(
        shape: impl Into<Shape>,
        values: &[i32],
        dtype: DType,
        quant: Option<QuantParams>,
    ) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != values.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                got: values.len(),
            });
        }
        let data = match dtype {
            DType::I8 => Data::I8(values.iter().map(|&v| v.clamp(-128, 127) as i8).collect()),
            DType::U8 => Data::U8(values.iter().map(|&v| v.clamp(0, 255) as u8).collect()),
            DType::I32 => Data::I32(values.to_vec()),
            DType::F32 => {
                return Err(TensorError::DTypeMismatch {
                    expected: DType::I32,
                    got: DType::F32,
                })
            }
        };
        Ok(Tensor { shape, data, quant })
    }

    /// Dequantize (or pass through) to a float32 tensor.
    pub fn to_f32(&self) -> Tensor {
        match &self.data {
            Data::F32(_) => self.clone(),
            _ => {
                let qp = self.quant.unwrap_or(QuantParams::identity());
                let vals: Vec<f32> = self.iter_int().map(|q| qp.dequantize(q)).collect();
                Tensor {
                    shape: self.shape.clone(),
                    data: Data::F32(vals),
                    quant: None,
                }
            }
        }
    }

    /// Quantize a float tensor into `dtype` with the given params.
    pub fn quantize(&self, qp: QuantParams, dtype: DType) -> Result<Tensor, TensorError> {
        let vals = self.as_f32()?;
        let ints: Vec<i32> = vals.iter().map(|&v| qp.quantize(v, dtype)).collect();
        Tensor::from_int_values(self.shape.clone(), &ints, dtype, Some(qp))
    }

    /// Replace the shape without touching data (reshape).
    pub fn reshaped(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if !self.shape.reshape_compatible(&shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: shape,
            });
        }
        let mut t = self.clone();
        t.shape = shape;
        Ok(t)
    }

    /// Max absolute difference against another float tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        let a = self.to_f32();
        let b = other.to_f32();
        assert_eq!(a.shape, b.shape, "max_abs_diff shape mismatch");
        a.as_f32()
            .unwrap()
            .iter()
            .zip(b.as_f32().unwrap())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }

    /// Approximate float equality within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Bit-exact equality of shape, dtype and payload.
    pub fn bit_eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape && self.data == other.data
    }

    /// Index of the maximum element (float view), for classification heads.
    pub fn argmax(&self) -> usize {
        let f = self.to_f32();
        let v = f.as_f32().unwrap();
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let t = Tensor::from_f32([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.dtype(), DType::F32);
        assert_eq!(t.num_elements(), 4);
        assert_eq!(t.size_bytes(), 16);
        assert_eq!(t.as_f32().unwrap()[3], 4.0);
        assert!(t.as_i8().is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            Tensor::from_f32([2, 2], vec![1.0]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn quantize_roundtrip_within_half_scale() {
        let t = Tensor::from_f32([4], vec![-1.0, 0.0, 0.5, 1.0]).unwrap();
        let qp = QuantParams::from_range(-1.0, 1.0, DType::I8);
        let q = t.quantize(qp, DType::I8).unwrap();
        assert_eq!(q.dtype(), DType::I8);
        let back = q.to_f32();
        assert!(t.max_abs_diff(&back) <= qp.scale * 0.5 + 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_f32([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshaped([3, 2]).unwrap();
        assert_eq!(r.as_f32().unwrap(), t.as_f32().unwrap());
        assert!(t.reshaped([4, 2]).is_err());
    }

    #[test]
    fn argmax_picks_peak() {
        let t = Tensor::from_f32([5], vec![0.1, 0.9, 0.3, 0.2, 0.05]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn int_tensor_saturates() {
        let t = Tensor::from_int_values([3], &[300, -300, 7], DType::I8, None).unwrap();
        assert_eq!(t.as_i8().unwrap(), &[127, -128, 7]);
    }

    #[test]
    fn bit_eq_vs_approx_eq() {
        let a = Tensor::from_f32([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([2], vec![1.0, 2.0 + 1e-6]).unwrap();
        assert!(!a.bit_eq(&b));
        assert!(a.approx_eq(&b, 1e-5));
    }
}
