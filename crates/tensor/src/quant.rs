//! Affine quantization: parameters, conversion, and fixed-point requantize.
//!
//! Relay QNN attaches these parameters to *operators* (`qnn.conv2d` carries
//! input/kernel scales); Neuron IR attaches them to *tensors*. Both sides of
//! the paper's §3.3 conversion therefore share this module.

use crate::dtype::DType;
use serde::{Deserialize, Serialize};

/// Affine quantization parameters: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Positive real scale.
    pub scale: f32,
    /// Zero point in the quantized domain.
    pub zero_point: i32,
}

impl QuantParams {
    /// New parameter pair.
    pub fn new(scale: f32, zero_point: i32) -> Self {
        debug_assert!(scale > 0.0, "quantization scale must be positive");
        QuantParams { scale, zero_point }
    }

    /// The identity mapping for already-real values (`scale=1, zp=0`).
    pub fn identity() -> Self {
        QuantParams {
            scale: 1.0,
            zero_point: 0,
        }
    }

    /// Quantize one real value into the given integer dtype with saturation.
    pub fn quantize(&self, real: f32, dtype: DType) -> i32 {
        let (lo, hi) = dtype
            .int_range()
            .expect("quantize target must be an integer type");
        let q = (real / self.scale).round() as i64 + self.zero_point as i64;
        q.clamp(lo as i64, hi as i64) as i32
    }

    /// Dequantize one stored value back to real.
    pub fn dequantize(&self, q: i32) -> f32 {
        self.scale * (q - self.zero_point) as f32
    }

    /// Choose parameters covering `[min, max]` for the given dtype, the way
    /// TFLite's post-training quantizer does (range widened to include 0).
    pub fn from_range(mut min: f32, mut max: f32, dtype: DType) -> Self {
        if min > max {
            std::mem::swap(&mut min, &mut max);
        }
        min = min.min(0.0);
        max = max.max(0.0);
        let (qlo, qhi) = dtype
            .int_range()
            .expect("from_range target must be an integer type");
        let span = (max - min).max(f32::EPSILON);
        let scale = span / (qhi - qlo) as f32;
        let zero_point = (qlo as f32 - min / scale)
            .round()
            .clamp(qlo as f32, qhi as f32) as i32;
        QuantParams { scale, zero_point }
    }

    /// Symmetric per-tensor parameters for weights (`zero_point = 0`).
    pub fn symmetric_from_absmax(absmax: f32, dtype: DType) -> Self {
        let (_, qhi) = dtype
            .int_range()
            .expect("symmetric target must be an integer type");
        let scale = (absmax.max(f32::EPSILON)) / qhi as f32;
        QuantParams {
            scale,
            zero_point: 0,
        }
    }
}

/// A requantization multiplier in fixed point, as used by integer-only
/// inference runtimes (gemmlowp-style): `real_multiplier = m0 * 2^shift`
/// with `m0` a Q31 value in `[0.5, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPointMultiplier {
    /// Q31 significand in `[2^30, 2^31)` (or 0 when the multiplier is 0).
    pub multiplier: i32,
    /// Base-2 exponent applied after the Q31 multiply.
    pub shift: i32,
}

impl FixedPointMultiplier {
    /// Decompose a positive real multiplier into Q31 significand + shift.
    pub fn from_real(real: f64) -> Self {
        assert!(real >= 0.0, "requantize multiplier must be non-negative");
        if real == 0.0 {
            return FixedPointMultiplier {
                multiplier: 0,
                shift: 0,
            };
        }
        let mut shift = 0i32;
        let mut m = real;
        while m < 0.5 {
            m *= 2.0;
            shift -= 1;
        }
        while m >= 1.0 {
            m /= 2.0;
            shift += 1;
        }
        let mut q = (m * (1i64 << 31) as f64).round() as i64;
        if q == (1i64 << 31) {
            q /= 2;
            shift += 1;
        }
        FixedPointMultiplier {
            multiplier: q as i32,
            shift,
        }
    }

    /// Saturating rounding doubling high multiply followed by
    /// rounding-divide-by-power-of-two: `round(x * multiplier * 2^shift)`.
    pub fn apply(&self, x: i32) -> i32 {
        let v = saturating_rounding_doubling_high_mul(x, self.multiplier);
        rounding_divide_by_pot(v, -self.shift)
    }

    /// Recover the approximate real multiplier (for tests/diagnostics).
    pub fn to_real(&self) -> f64 {
        self.multiplier as f64 / (1i64 << 31) as f64 * 2f64.powi(self.shift)
    }
}

/// gemmlowp `SaturatingRoundingDoublingHighMul`.
fn saturating_rounding_doubling_high_mul(a: i32, b: i32) -> i32 {
    if a == i32::MIN && b == i32::MIN {
        return i32::MAX;
    }
    let ab = a as i64 * b as i64;
    let nudge = if ab >= 0 {
        1i64 << 30
    } else {
        1 - (1i64 << 30)
    };
    ((ab + nudge) >> 31) as i32
}

/// gemmlowp `RoundingDivideByPOT` (round-half-away-from-zero).
fn rounding_divide_by_pot(x: i32, exponent: i32) -> i32 {
    if exponent <= 0 {
        // A negative exponent means a left shift (multiplier >= 1).
        return x.checked_shl((-exponent) as u32).unwrap_or(if x >= 0 {
            i32::MAX
        } else {
            i32::MIN
        });
    }
    let mask = (1i64 << exponent) - 1;
    let remainder = (x as i64) & mask;
    let threshold = (mask >> 1) + i64::from(x < 0);
    let mut result = x >> exponent;
    if remainder > threshold {
        result = result.wrapping_add(1);
    }
    result
}

/// Requantize a raw i32 accumulator from (`in_params`) to (`out_params`,
/// `out_dtype`), the core of `qnn.requantize`.
pub fn requantize_value(
    acc: i32,
    real_multiplier: FixedPointMultiplier,
    out_zero_point: i32,
    out_dtype: DType,
) -> i32 {
    let (lo, hi) = out_dtype
        .int_range()
        .expect("requantize target must be integer");
    let v = real_multiplier.apply(acc) as i64 + out_zero_point as i64;
    v.clamp(lo as i64, hi as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_identity_scale() {
        let qp = QuantParams::new(1.0, 0);
        assert_eq!(qp.quantize(5.0, DType::I8), 5);
        assert_eq!(qp.dequantize(5), 5.0);
    }

    #[test]
    fn quantize_saturates() {
        let qp = QuantParams::new(1.0, 0);
        assert_eq!(qp.quantize(1000.0, DType::I8), 127);
        assert_eq!(qp.quantize(-1000.0, DType::I8), -128);
        assert_eq!(qp.quantize(1000.0, DType::U8), 255);
    }

    #[test]
    fn from_range_covers_zero() {
        let qp = QuantParams::from_range(0.5, 6.0, DType::U8);
        // The range must widen to include zero so zero is exactly representable.
        let zq = qp.quantize(0.0, DType::U8);
        assert!((qp.dequantize(zq)).abs() < qp.scale * 0.51);
        let top = qp.quantize(6.0, DType::U8);
        assert!((qp.dequantize(top) - 6.0).abs() < qp.scale);
    }

    #[test]
    fn symmetric_weights() {
        let qp = QuantParams::symmetric_from_absmax(2.54, DType::I8);
        assert_eq!(qp.zero_point, 0);
        assert!((qp.dequantize(127) - 2.54).abs() < 1e-4);
    }

    #[test]
    fn fixed_point_roundtrip() {
        for real in [0.00037_f64, 0.25, 0.4999, 0.75, 1.0, 1.5, 37.2] {
            let fpm = FixedPointMultiplier::from_real(real);
            let back = fpm.to_real();
            assert!(
                (back - real).abs() / real < 1e-6,
                "real {real} decomposed to {back}"
            );
        }
    }

    #[test]
    fn fixed_point_apply_matches_float() {
        let fpm = FixedPointMultiplier::from_real(0.007_812_5); // 1/128, exact
        assert_eq!(fpm.apply(1280), 10);
        assert_eq!(fpm.apply(-1280), -10);
        // Rounding: 0.0078125 * 192 = 1.5 rounds away from zero to 2.
        assert_eq!(fpm.apply(192), 2);
    }

    #[test]
    fn requantize_clamps_to_dtype() {
        let fpm = FixedPointMultiplier::from_real(1.0);
        assert_eq!(requantize_value(300, fpm, 0, DType::I8), 127);
        assert_eq!(requantize_value(-300, fpm, 0, DType::I8), -128);
        assert_eq!(requantize_value(100, fpm, 50, DType::U8), 150);
    }

    #[test]
    fn zero_multiplier() {
        let fpm = FixedPointMultiplier::from_real(0.0);
        assert_eq!(fpm.apply(12345), 0);
    }
}
