//! # tvmnp-tensor
//!
//! N-dimensional tensor substrate for the TVM+NeuroPilot reproduction.
//!
//! This crate plays the role of TVM's TOPI/NDArray layer and of the kernel
//! libraries NeuroPilot ships for the mobile CPU/GPU/APU: it owns the data
//! representation (dense row-major tensors over `f32`/`i8`/`u8`/`i32`) and
//! the numeric kernels (convolution, dense, pooling, activations, softmax,
//! tensor transforms) in both floating-point and affine-quantized integer
//! arithmetic.
//!
//! Everything above this crate — the Relay-like IR, the Neuron IR, the
//! graph executors — manipulates [`Tensor`] values and calls into
//! [`kernels`]. Numeric results are therefore identical no matter which
//! compiler path or simulated device produced them; only the *simulated
//! time* differs (see the `tvmnp-hwsim` crate).
//!
//! Layout conventions:
//! * activations: `NCHW`
//! * convolution weights: `OIHW` (depthwise: groups = C, weights `[C*m, 1, kh, kw]`)
//! * dense weights: `[units, in_features]`

pub mod dtype;
pub mod kernels;
pub mod quant;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use quant::QuantParams;
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};
