//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense row-major tensor.
///
/// A scalar is represented by the empty shape `[]` (one element).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Build a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flatten a multi-index to a linear offset.
    ///
    /// Panics (debug) on out-of-range indices; release builds rely on the
    /// caller and the following multiplication staying in range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        for (d, (&i, &s)) in idx.iter().zip(self.0.iter()).enumerate() {
            debug_assert!(i < s, "index {i} out of range for dim {d} (size {s})");
            let _ = d;
            off = off * s + i;
        }
        off
    }

    /// Inverse of [`Shape::offset`]: linear offset to multi-index.
    pub fn unravel(&self, mut off: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for i in (0..self.rank()).rev() {
            let s = self.0[i];
            idx[i] = off % s;
            off /= s;
        }
        idx
    }

    /// NumPy-style broadcast of two shapes, if compatible.
    ///
    /// Shapes are right-aligned; a dimension broadcasts when equal or when
    /// either side is 1.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            *slot = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
        }
        Some(Shape(out))
    }

    /// Whether this shape can be reshaped into `other` (same element count).
    pub fn reshape_compatible(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::scalar().num_elements(), 1);
    }

    #[test]
    fn offset_unravel_roundtrip() {
        let s = Shape::from([2, 3, 4]);
        for off in 0..s.num_elements() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::from([1, 3, 1]);
        let b = Shape::from([2, 1, 4]);
        assert_eq!(a.broadcast(&b), Some(Shape::from([2, 3, 4])));
        // Right alignment with differing ranks.
        let c = Shape::from([4]);
        assert_eq!(b.broadcast(&c), Some(Shape::from([2, 1, 4])));
        // Incompatible.
        let d = Shape::from([3]);
        assert_eq!(c.broadcast(&d), None);
        // Scalars broadcast with anything.
        assert_eq!(Shape::scalar().broadcast(&a), Some(a.clone()));
    }

    #[test]
    fn display() {
        assert_eq!(
            Shape::from([1, 3, 224, 224]).to_string(),
            "(1, 3, 224, 224)"
        );
    }
}
