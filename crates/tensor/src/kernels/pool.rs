//! 2-D pooling kernels over `NCHW` activations, float and quantized.

use super::{kerr, KernelError};
use crate::tensor::Tensor;

/// Attributes of a 2-D pooling op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dParams {
    /// Pooling window (h, w).
    pub kernel: (usize, usize),
    /// Stride (h, w).
    pub strides: (usize, usize),
    /// Padding as (top, left, bottom, right).
    pub padding: (usize, usize, usize, usize),
    /// Whether average pooling divides by the full window size even when the
    /// window hangs over padding (TFLite: false).
    pub count_include_pad: bool,
}

impl Pool2dParams {
    /// Square window, stride = window, no padding (the common CNN reduction).
    pub fn square(k: usize) -> Self {
        Pool2dParams {
            kernel: (k, k),
            strides: (k, k),
            padding: (0, 0, 0, 0),
            count_include_pad: false,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize), KernelError> {
        let (pt, pl, pb, pr) = self.padding;
        let ih = h + pt + pb;
        let iw = w + pl + pr;
        if ih < self.kernel.0 || iw < self.kernel.1 {
            return Err(kerr(format!(
                "pool window {:?} larger than padded input {ih}x{iw}",
                self.kernel
            )));
        }
        Ok((
            (ih - self.kernel.0) / self.strides.0 + 1,
            (iw - self.kernel.1) / self.strides.1 + 1,
        ))
    }
}

fn pool_shape(
    input: &Tensor,
    params: &Pool2dParams,
) -> Result<(usize, usize, usize, usize, usize, usize), KernelError> {
    let d = input.shape().dims();
    if d.len() != 4 {
        return Err(kerr(format!("pool2d expects rank-4 input, got {d:?}")));
    }
    let (oh, ow) = params.out_hw(d[2], d[3])?;
    Ok((d[0], d[1], d[2], d[3], oh, ow))
}

/// Max pooling. Works on float and quantized tensors (max commutes with the
/// affine map, so the output keeps the input's quantization parameters).
pub fn max_pool2d(input: &Tensor, params: &Pool2dParams) -> Result<Tensor, KernelError> {
    let (n, c, h, w, oh, ow) = pool_shape(input, params)?;
    let (pt, pl, _, _) = params.padding;
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.strides;

    if input.dtype().is_float() {
        let x = input.as_f32().unwrap();
        let mut out = vec![0.0f32; n * c * oh * ow];
        pool_loop(
            n,
            c,
            h,
            w,
            oh,
            ow,
            kh,
            kw,
            sh,
            sw,
            pt,
            pl,
            |plane_base, taps, oi| {
                out[oi] = taps
                    .iter()
                    .map(|&t| x[plane_base + t])
                    .fold(f32::NEG_INFINITY, f32::max);
            },
        );
        Tensor::from_f32([n, c, oh, ow], out).map_err(|e| kerr(e.to_string()))
    } else {
        let x: Vec<i32> = input.iter_int().collect();
        let mut out = vec![0i32; n * c * oh * ow];
        pool_loop(
            n,
            c,
            h,
            w,
            oh,
            ow,
            kh,
            kw,
            sh,
            sw,
            pt,
            pl,
            |plane_base, taps, oi| {
                out[oi] = taps.iter().map(|&t| x[plane_base + t]).max().unwrap_or(0);
            },
        );
        Tensor::from_int_values([n, c, oh, ow], &out, input.dtype(), input.quant())
            .map_err(|e| kerr(e.to_string()))
    }
}

/// Average pooling. For quantized input, averages in i32 with round-half-up,
/// keeping the input quantization parameters (TFLite semantics).
pub fn avg_pool2d(input: &Tensor, params: &Pool2dParams) -> Result<Tensor, KernelError> {
    let (n, c, h, w, oh, ow) = pool_shape(input, params)?;
    let (pt, pl, _, _) = params.padding;
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.strides;
    let full = (kh * kw) as f32;

    if input.dtype().is_float() {
        let x = input.as_f32().unwrap();
        let mut out = vec![0.0f32; n * c * oh * ow];
        pool_loop(
            n,
            c,
            h,
            w,
            oh,
            ow,
            kh,
            kw,
            sh,
            sw,
            pt,
            pl,
            |plane_base, taps, oi| {
                let sum: f32 = taps.iter().map(|&t| x[plane_base + t]).sum();
                let denom = if params.count_include_pad {
                    full
                } else {
                    taps.len() as f32
                };
                out[oi] = sum / denom;
            },
        );
        Tensor::from_f32([n, c, oh, ow], out).map_err(|e| kerr(e.to_string()))
    } else {
        let x: Vec<i32> = input.iter_int().collect();
        let mut out = vec![0i32; n * c * oh * ow];
        pool_loop(
            n,
            c,
            h,
            w,
            oh,
            ow,
            kh,
            kw,
            sh,
            sw,
            pt,
            pl,
            |plane_base, taps, oi| {
                let sum: i64 = taps.iter().map(|&t| x[plane_base + t] as i64).sum();
                let denom = if params.count_include_pad {
                    (kh * kw) as i64
                } else {
                    taps.len() as i64
                };
                // round-half-away-from-zero
                let v = if sum >= 0 {
                    (sum + denom / 2) / denom
                } else {
                    (sum - denom / 2) / denom
                };
                out[oi] = v as i32;
            },
        );
        Tensor::from_int_values([n, c, oh, ow], &out, input.dtype(), input.quant())
            .map_err(|e| kerr(e.to_string()))
    }
}

/// Global average pooling to `[n, c, 1, 1]`.
pub fn global_avg_pool2d(input: &Tensor) -> Result<Tensor, KernelError> {
    let d = input.shape().dims();
    if d.len() != 4 {
        return Err(kerr(format!(
            "global_avg_pool2d expects rank-4 input, got {d:?}"
        )));
    }
    let params = Pool2dParams {
        kernel: (d[2], d[3]),
        strides: (1, 1),
        padding: (0, 0, 0, 0),
        count_include_pad: false,
    };
    avg_pool2d(input, &params)
}

/// Shared window iteration: calls `f(plane_base, in_window_offsets, out_index)`.
#[allow(clippy::too_many_arguments)]
fn pool_loop(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    pt: usize,
    pl: usize,
    mut f: impl FnMut(usize, &[usize], usize),
) {
    let mut taps = Vec::with_capacity(kh * kw);
    for ni in 0..n {
        for ci in 0..c {
            let plane_base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    taps.clear();
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - pt as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pl as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            taps.push(iy as usize * w + ix as usize);
                        }
                    }
                    let oi = ((ni * c + ci) * oh + oy) * ow + ox;
                    f(plane_base, &taps, oi);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::quant::QuantParams;

    #[test]
    fn max_pool_2x2() {
        let x = Tensor::from_f32([1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let y = max_pool2d(&x, &Pool2dParams::square(2)).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let x = Tensor::from_f32([1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let y = avg_pool2d(&x, &Pool2dParams::square(2)).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[4.0]);
    }

    #[test]
    fn avg_pool_excludes_pad_by_default() {
        let mut p = Pool2dParams::square(2);
        p.padding = (1, 1, 0, 0);
        p.strides = (2, 2);
        let x = Tensor::from_f32([1, 1, 2, 2], vec![4.0, 4.0, 4.0, 4.0]).unwrap();
        let y = avg_pool2d(&x, &p).unwrap();
        // Top-left window covers only element (0,0): average is 4, not 1.
        assert_eq!(y.as_f32().unwrap()[0], 4.0);
    }

    #[test]
    fn global_avg() {
        let x = Tensor::from_f32(
            [1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        )
        .unwrap();
        let y = global_avg_pool2d(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(y.as_f32().unwrap(), &[2.5, 10.0]);
    }

    #[test]
    fn quantized_max_pool_keeps_params() {
        let qp = QuantParams::new(0.5, 3);
        let x = Tensor::from_int_values([1, 1, 2, 2], &[1, 9, 4, 2], DType::U8, Some(qp)).unwrap();
        let y = max_pool2d(&x, &Pool2dParams::square(2)).unwrap();
        assert_eq!(y.int_at(0), 9);
        assert_eq!(y.quant(), Some(qp));
    }

    #[test]
    fn quantized_avg_rounds() {
        let qp = QuantParams::new(1.0, 0);
        let x = Tensor::from_int_values([1, 1, 2, 2], &[1, 2, 2, 2], DType::U8, Some(qp)).unwrap();
        let y = avg_pool2d(&x, &Pool2dParams::square(2)).unwrap();
        // (1+2+2+2)/4 = 1.75 → rounds to 2.
        assert_eq!(y.int_at(0), 2);
    }

    #[test]
    fn window_too_large_rejected() {
        let x = Tensor::zeros_f32([1, 1, 2, 2]);
        assert!(max_pool2d(&x, &Pool2dParams::square(3)).is_err());
    }
}
