//! Affine-quantized 2-D convolution with 32-bit accumulation and
//! gemmlowp-style requantization — the arithmetic behind `qnn.conv2d` +
//! `qnn.requantize` in Relay and behind the APU's integer datapath.

use super::conv::Conv2dParams;
use super::{kerr, KernelError};
use crate::dtype::DType;
use crate::quant::{requantize_value, FixedPointMultiplier, QuantParams};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Quantization attributes of a quantized convolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QConvQuant {
    /// Input activation quantization.
    pub input: QuantParams,
    /// Weight quantization (per-tensor, usually symmetric).
    pub weight: QuantParams,
    /// Output activation quantization.
    pub output: QuantParams,
    /// Output storage type (i8 or u8).
    pub out_dtype: DType,
}

impl QConvQuant {
    /// The real requantization multiplier `s_in * s_w / s_out`.
    pub fn real_multiplier(&self) -> f64 {
        self.input.scale as f64 * self.weight.scale as f64 / self.output.scale as f64
    }
}

/// Quantized `NCHW` × `OIHW` convolution.
///
/// `input` must be i8/u8 activations, `weight` i8/u8 weights, `bias` (when
/// present) an i32 tensor already scaled by `s_in * s_w`.
pub fn qconv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: &Conv2dParams,
    quant: &QConvQuant,
) -> Result<Tensor, KernelError> {
    let ishape = input.shape().dims();
    let wshape = weight.shape().dims();
    if ishape.len() != 4 || wshape.len() != 4 {
        return Err(kerr("qconv2d expects rank-4 input and weight".to_string()));
    }
    if !input.dtype().is_quantized() || !weight.dtype().is_quantized() {
        return Err(kerr(format!(
            "qconv2d expects quantized operands, got {} / {}",
            input.dtype(),
            weight.dtype()
        )));
    }
    let (n, c, h, w) = (ishape[0], ishape[1], ishape[2], ishape[3]);
    let (oc, wic, kh, kw) = (wshape[0], wshape[1], wshape[2], wshape[3]);
    let groups = params.groups;
    if groups == 0 || c % groups != 0 || oc % groups != 0 || wic != c / groups {
        return Err(kerr(format!(
            "qconv2d group/channel mismatch: C={c}, O={oc}, groups={groups}, w_ic={wic}"
        )));
    }
    let (oh, ow) = params.out_hw(h, w, kh, kw)?;

    let x: Vec<i32> = input.iter_int().collect();
    let wt: Vec<i32> = weight.iter_int().collect();
    let b: Option<&[i32]> = match bias {
        Some(t) => Some(t.as_i32().map_err(|e| kerr(e.to_string()))?),
        None => None,
    };
    if let Some(b) = b {
        if b.len() != oc {
            return Err(kerr(format!(
                "qconv2d bias length {} != out channels {oc}",
                b.len()
            )));
        }
    }

    let zx = quant.input.zero_point;
    let zw = quant.weight.zero_point;
    let fpm = FixedPointMultiplier::from_real(quant.real_multiplier());
    let zo = quant.output.zero_point;
    let out_dtype = quant.out_dtype;

    let (pt, pl, _, _) = params.padding;
    let (sh, sw) = params.strides;
    let (dh, dw) = params.dilation;
    let cg = c / groups;
    let og = oc / groups;

    let mut out = vec![0i32; n * oc * oh * ow];
    out.par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(plane, out_plane)| {
            let ni = plane / oc;
            let o = plane % oc;
            let g = o / og;
            let bias_v = b.map(|b| b[o]).unwrap_or(0);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: i64 = bias_v as i64;
                    for ic in 0..cg {
                        let in_c = g * cg + ic;
                        let x_base = ((ni * c + in_c) * h) * w;
                        let w_base = ((o * cg + ic) * kh) * kw;
                        for ky in 0..kh {
                            let iy = (oy * sh + ky * dh) as isize - pt as isize;
                            for kx in 0..kw {
                                let ix = (ox * sw + kx * dw) as isize - pl as isize;
                                // Out-of-bounds taps read the input zero point,
                                // i.e. real value 0 (TFLite padding semantics).
                                let xv = if iy < 0 || iy as usize >= h || ix < 0 || ix as usize >= w
                                {
                                    0i64
                                } else {
                                    (x[x_base + iy as usize * w + ix as usize] - zx) as i64
                                };
                                let wv = (wt[w_base + ky * kw + kx] - zw) as i64;
                                acc += xv * wv;
                            }
                        }
                    }
                    let acc32 = acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                    out_plane[oy * ow + ox] = requantize_value(acc32, fpm, zo, out_dtype);
                }
            }
        });

    Tensor::from_int_values([n, oc, oh, ow], &out, out_dtype, Some(quant.output))
        .map_err(|e| kerr(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::conv::conv2d_f32;
    use crate::rng::TensorRng;

    /// Reference check: quantized conv tracks float conv within ~1 output LSB.
    #[test]
    fn matches_float_reference_within_one_lsb() {
        let mut rng = TensorRng::new(11);
        let xf = rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0);
        let wf = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let qp_x = QuantParams::from_range(-1.0, 1.0, DType::U8);
        let qp_w = QuantParams::symmetric_from_absmax(0.5, DType::I8);
        let xq = xf.quantize(qp_x, DType::U8).unwrap();
        let wq = wf.quantize(qp_w, DType::I8).unwrap();
        // Dequantized operands give the exact reference the int path targets.
        let yf = conv2d_f32(&xq.to_f32(), &wq.to_f32(), None, &Conv2dParams::same(1)).unwrap();
        let absmax = yf
            .as_f32()
            .unwrap()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let qp_y = QuantParams::from_range(-absmax, absmax, DType::U8);
        let quant = QConvQuant {
            input: qp_x,
            weight: qp_w,
            output: qp_y,
            out_dtype: DType::U8,
        };
        let yq = qconv2d(&xq, &wq, None, &Conv2dParams::same(1), &quant).unwrap();
        let diff = yq.to_f32().max_abs_diff(&yf);
        assert!(
            diff <= qp_y.scale * 1.01,
            "diff {diff} > 1 LSB {}",
            qp_y.scale
        );
    }

    #[test]
    fn zero_input_maps_to_output_zero_point() {
        let qp_x = QuantParams::new(0.05, 128);
        let qp_w = QuantParams::new(0.02, 0);
        let qp_y = QuantParams::new(0.1, 100);
        let x = Tensor::from_int_values([1, 1, 2, 2], &[128; 4], DType::U8, Some(qp_x)).unwrap();
        let w = Tensor::from_int_values([1, 1, 1, 1], &[37], DType::I8, Some(qp_w)).unwrap();
        let quant = QConvQuant {
            input: qp_x,
            weight: qp_w,
            output: qp_y,
            out_dtype: DType::U8,
        };
        let y = qconv2d(&x, &w, None, &Conv2dParams::default(), &quant).unwrap();
        assert!(y.iter_int().all(|v| v == 100));
    }

    #[test]
    fn bias_contributes_in_accumulator_scale() {
        let qp_x = QuantParams::new(0.1, 0);
        let qp_w = QuantParams::new(0.1, 0);
        let qp_y = QuantParams::new(0.01, 0);
        // bias of 100 in accumulator units = 100 * 0.01 real = 1.0 real.
        let x = Tensor::from_int_values([1, 1, 1, 1], &[0], DType::I8, Some(qp_x)).unwrap();
        let w = Tensor::from_int_values([1, 1, 1, 1], &[0], DType::I8, Some(qp_w)).unwrap();
        let b = Tensor::from_i32([1], vec![100], None).unwrap();
        let quant = QConvQuant {
            input: qp_x,
            weight: qp_w,
            output: qp_y,
            out_dtype: DType::I8,
        };
        let y = qconv2d(&x, &w, Some(&b), &Conv2dParams::default(), &quant).unwrap();
        // acc 100 * (0.1*0.1/0.01 = 1.0) = 100 quanta = 1.0 real.
        assert_eq!(y.int_at(0), 100);
    }

    #[test]
    fn padding_reads_zero_point() {
        // With a non-zero input zero point, padded taps must contribute
        // exactly zero real value.
        let qp_x = QuantParams::new(1.0, 10);
        let qp_w = QuantParams::new(1.0, 0);
        let qp_y = QuantParams::new(1.0, 0);
        let x = Tensor::from_int_values([1, 1, 1, 1], &[10], DType::U8, Some(qp_x)).unwrap();
        let w = Tensor::from_int_values([1, 1, 3, 3], &[1; 9], DType::I8, Some(qp_w)).unwrap();
        let quant = QConvQuant {
            input: qp_x,
            weight: qp_w,
            output: qp_y,
            out_dtype: DType::I8,
        };
        let y = qconv2d(&x, &w, None, &Conv2dParams::same(1), &quant).unwrap();
        assert!(y.iter_int().all(|v| v == 0));
    }

    #[test]
    fn rejects_float_input() {
        let x = Tensor::zeros_f32([1, 1, 2, 2]);
        let w = Tensor::from_int_values([1, 1, 1, 1], &[1], DType::I8, None).unwrap();
        let quant = QConvQuant {
            input: QuantParams::identity(),
            weight: QuantParams::identity(),
            output: QuantParams::identity(),
            out_dtype: DType::I8,
        };
        assert!(qconv2d(&x, &w, None, &Conv2dParams::default(), &quant).is_err());
    }
}
