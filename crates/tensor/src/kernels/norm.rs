//! Normalization-family kernels (inference mode).

use super::{kerr, KernelError};
use crate::tensor::Tensor;

/// Inference-mode batch norm parameters (per channel, axis 1 of NCHW).
#[derive(Debug, Clone)]
pub struct BatchNormParams {
    /// Learned scale γ, shape `[c]`.
    pub gamma: Tensor,
    /// Learned shift β, shape `[c]`.
    pub beta: Tensor,
    /// Running mean, shape `[c]`.
    pub mean: Tensor,
    /// Running variance, shape `[c]`.
    pub var: Tensor,
    /// Stabilizer added to the variance.
    pub epsilon: f32,
}

/// `y = γ (x - μ) / sqrt(σ² + ε) + β`, per channel on `NCHW` input.
pub fn batch_norm_f32(input: &Tensor, p: &BatchNormParams) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(kerr("batch_norm expects rank-4 NCHW input".to_string()));
    }
    let c = dims[1];
    let gamma = p.gamma.as_f32().map_err(|e| kerr(e.to_string()))?;
    let beta = p.beta.as_f32().map_err(|e| kerr(e.to_string()))?;
    let mean = p.mean.as_f32().map_err(|e| kerr(e.to_string()))?;
    let var = p.var.as_f32().map_err(|e| kerr(e.to_string()))?;
    if gamma.len() != c || beta.len() != c || mean.len() != c || var.len() != c {
        return Err(kerr(format!("batch_norm parameter length != channels {c}")));
    }
    let x = input.as_f32().map_err(|e| kerr(e.to_string()))?;
    let hw = dims[2] * dims[3];
    let mut out = vec![0.0f32; x.len()];
    for ni in 0..dims[0] {
        for ci in 0..c {
            let scale = gamma[ci] / (var[ci] + p.epsilon).sqrt();
            let shift = beta[ci] - mean[ci] * scale;
            let base = (ni * c + ci) * hw;
            for i in 0..hw {
                out[base + i] = x[base + i] * scale + shift;
            }
        }
    }
    Tensor::from_f32(input.shape().clone(), out).map_err(|e| kerr(e.to_string()))
}

/// Per-channel bias add on `NCHW` (axis 1) or `[n, units]` (axis 1) input.
pub fn bias_add(input: &Tensor, bias: &Tensor) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if dims.len() < 2 {
        return Err(kerr("bias_add expects rank >= 2".to_string()));
    }
    let c = dims[1];
    let b = bias.as_f32().map_err(|e| kerr(e.to_string()))?;
    if b.len() != c {
        return Err(kerr(format!("bias length {} != channel dim {c}", b.len())));
    }
    let x = input.as_f32().map_err(|e| kerr(e.to_string()))?;
    let inner: usize = dims[2..].iter().product();
    let mut out = vec![0.0f32; x.len()];
    for ni in 0..dims[0] {
        for (ci, bias) in b.iter().enumerate() {
            let base = (ni * c + ci) * inner;
            for i in 0..inner {
                out[base + i] = x[base + i] + bias;
            }
        }
    }
    Tensor::from_f32(input.shape().clone(), out).map_err(|e| kerr(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(n: usize) -> Tensor {
        Tensor::from_f32([n], vec![1.0; n]).unwrap()
    }

    fn zeros(n: usize) -> Tensor {
        Tensor::from_f32([n], vec![0.0; n]).unwrap()
    }

    #[test]
    fn identity_batch_norm() {
        let x = Tensor::from_f32([1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = BatchNormParams {
            gamma: ones(2),
            beta: zeros(2),
            mean: zeros(2),
            var: ones(2),
            epsilon: 0.0,
        };
        let y = batch_norm_f32(&x, &p).unwrap();
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn normalizes_mean_and_var() {
        let x = Tensor::from_f32([1, 1, 1, 2], vec![8.0, 12.0]).unwrap();
        let p = BatchNormParams {
            gamma: ones(1),
            beta: zeros(1),
            mean: Tensor::from_f32([1], vec![10.0]).unwrap(),
            var: Tensor::from_f32([1], vec![4.0]).unwrap(),
            epsilon: 0.0,
        };
        let y = batch_norm_f32(&x, &p).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[-1.0, 1.0]);
    }

    #[test]
    fn gamma_beta_applied() {
        let x = Tensor::from_f32([1, 1, 1, 1], vec![1.0]).unwrap();
        let p = BatchNormParams {
            gamma: Tensor::from_f32([1], vec![2.0]).unwrap(),
            beta: Tensor::from_f32([1], vec![3.0]).unwrap(),
            mean: zeros(1),
            var: ones(1),
            epsilon: 0.0,
        };
        let y = batch_norm_f32(&x, &p).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[5.0]);
    }

    #[test]
    fn bias_add_4d() {
        let x = Tensor::from_f32([1, 2, 1, 2], vec![0.0; 4]).unwrap();
        let b = Tensor::from_f32([2], vec![1.0, -1.0]).unwrap();
        let y = bias_add(&x, &b).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[1.0, 1.0, -1.0, -1.0]);
    }

    #[test]
    fn bias_add_2d() {
        let x = Tensor::from_f32([2, 2], vec![0.0; 4]).unwrap();
        let b = Tensor::from_f32([2], vec![5.0, 6.0]).unwrap();
        let y = bias_add(&x, &b).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[5.0, 6.0, 5.0, 6.0]);
    }

    #[test]
    fn rejects_wrong_bias_len() {
        let x = Tensor::zeros_f32([1, 3, 2, 2]);
        let b = Tensor::from_f32([2], vec![0.0, 0.0]).unwrap();
        assert!(bias_add(&x, &b).is_err());
    }
}
