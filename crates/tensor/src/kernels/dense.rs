//! Fully-connected (dense / `nn.dense` / `qnn.dense`) kernels.

use super::{kerr, KernelError};
use crate::dtype::DType;
use crate::quant::{requantize_value, FixedPointMultiplier, QuantParams};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Float dense: `input [n, k] × weight [units, k] (+ bias [units]) → [n, units]`.
pub fn dense_f32(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<Tensor, KernelError> {
    let ishape = input.shape().dims();
    let wshape = weight.shape().dims();
    if ishape.len() != 2 || wshape.len() != 2 {
        return Err(kerr(format!(
            "dense expects rank-2 operands, got {ishape:?} / {wshape:?}"
        )));
    }
    let (n, k) = (ishape[0], ishape[1]);
    let (units, wk) = (wshape[0], wshape[1]);
    if k != wk {
        return Err(kerr(format!(
            "dense reduction mismatch: input k={k}, weight k={wk}"
        )));
    }
    let x = input.as_f32().map_err(|e| kerr(e.to_string()))?;
    let wt = weight.as_f32().map_err(|e| kerr(e.to_string()))?;
    let b = match bias {
        Some(t) => {
            let b = t.as_f32().map_err(|e| kerr(e.to_string()))?;
            if b.len() != units {
                return Err(kerr(format!(
                    "dense bias length {} != units {units}",
                    b.len()
                )));
            }
            Some(b)
        }
        None => None,
    };
    let mut out = vec![0.0f32; n * units];
    out.par_chunks_mut(units)
        .enumerate()
        .for_each(|(row, out_row)| {
            let x_row = &x[row * k..(row + 1) * k];
            for (u, o) in out_row.iter_mut().enumerate() {
                let w_row = &wt[u * k..(u + 1) * k];
                let mut acc = b.map(|b| b[u]).unwrap_or(0.0);
                for i in 0..k {
                    acc += x_row[i] * w_row[i];
                }
                *o = acc;
            }
        });
    Tensor::from_f32([n, units], out).map_err(|e| kerr(e.to_string()))
}

/// Quantized dense with i32 accumulation and requantization.
pub fn qdense(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    input_q: QuantParams,
    weight_q: QuantParams,
    output_q: QuantParams,
    out_dtype: DType,
) -> Result<Tensor, KernelError> {
    let ishape = input.shape().dims();
    let wshape = weight.shape().dims();
    if ishape.len() != 2 || wshape.len() != 2 {
        return Err(kerr("qdense expects rank-2 operands".to_string()));
    }
    if !input.dtype().is_quantized() || !weight.dtype().is_quantized() {
        return Err(kerr("qdense expects quantized operands".to_string()));
    }
    let (n, k) = (ishape[0], ishape[1]);
    let (units, wk) = (wshape[0], wshape[1]);
    if k != wk {
        return Err(kerr(format!("qdense reduction mismatch: {k} vs {wk}")));
    }
    let x: Vec<i32> = input.iter_int().collect();
    let wt: Vec<i32> = weight.iter_int().collect();
    let b: Option<&[i32]> = match bias {
        Some(t) => Some(t.as_i32().map_err(|e| kerr(e.to_string()))?),
        None => None,
    };
    let zx = input_q.zero_point;
    let zw = weight_q.zero_point;
    let fpm = FixedPointMultiplier::from_real(
        input_q.scale as f64 * weight_q.scale as f64 / output_q.scale as f64,
    );
    let zo = output_q.zero_point;
    let mut out = vec![0i32; n * units];
    out.par_chunks_mut(units)
        .enumerate()
        .for_each(|(row, out_row)| {
            let x_row = &x[row * k..(row + 1) * k];
            for (u, o) in out_row.iter_mut().enumerate() {
                let w_row = &wt[u * k..(u + 1) * k];
                let mut acc: i64 = b.map(|b| b[u]).unwrap_or(0) as i64;
                for i in 0..k {
                    acc += (x_row[i] - zx) as i64 * (w_row[i] - zw) as i64;
                }
                let acc32 = acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                *o = requantize_value(acc32, fpm, zo, out_dtype);
            }
        });
    Tensor::from_int_values([n, units], &out, out_dtype, Some(output_q))
        .map_err(|e| kerr(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn dense_known_values() {
        let x = Tensor::from_f32([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let w = Tensor::from_f32([2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]).unwrap();
        let y = dense_f32(&x, &w, None).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[1.0, 5.0]);
    }

    #[test]
    fn dense_bias() {
        let x = Tensor::from_f32([2, 2], vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        let w = Tensor::from_f32([1, 2], vec![1.0, 1.0]).unwrap();
        let b = Tensor::from_f32([1], vec![0.5]).unwrap();
        let y = dense_f32(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[2.5, 4.5]);
    }

    #[test]
    fn dense_rejects_mismatch() {
        let x = Tensor::from_f32([1, 3], vec![0.0; 3]).unwrap();
        let w = Tensor::from_f32([2, 4], vec![0.0; 8]).unwrap();
        assert!(dense_f32(&x, &w, None).is_err());
    }

    #[test]
    fn qdense_tracks_float() {
        let mut rng = TensorRng::new(5);
        let xf = rng.uniform_f32([2, 16], -1.0, 1.0);
        let wf = rng.uniform_f32([4, 16], -0.5, 0.5);
        let qx = QuantParams::from_range(-1.0, 1.0, DType::U8);
        let qw = QuantParams::symmetric_from_absmax(0.5, DType::I8);
        let xq = xf.quantize(qx, DType::U8).unwrap();
        let wq = wf.quantize(qw, DType::I8).unwrap();
        let yref = dense_f32(&xq.to_f32(), &wq.to_f32(), None).unwrap();
        let absmax = yref
            .as_f32()
            .unwrap()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let qy = QuantParams::from_range(-absmax, absmax, DType::I8);
        let yq = qdense(&xq, &wq, None, qx, qw, qy, DType::I8).unwrap();
        assert!(yq.to_f32().max_abs_diff(&yref) <= qy.scale * 1.01);
    }

    #[test]
    fn qdense_zero_maps_to_zero_point() {
        let q = QuantParams::new(0.1, 7);
        let x = Tensor::from_int_values([1, 4], &[7; 4], DType::I8, Some(q)).unwrap();
        let w =
            Tensor::from_int_values([3, 4], &[5; 12], DType::I8, Some(QuantParams::new(0.1, 0)))
                .unwrap();
        let qy = QuantParams::new(0.2, -3);
        let y = qdense(&x, &w, None, q, QuantParams::new(0.1, 0), qy, DType::I8).unwrap();
        assert!(y.iter_int().all(|v| v == -3));
    }
}
