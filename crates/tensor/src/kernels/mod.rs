//! Numeric kernels in float32 and affine-quantized int8/uint8 arithmetic.
//!
//! These are the compute bodies every backend of the reproduction shares:
//! the "TVM codegen" path, the "NeuroPilot CPU" path and the "APU" path all
//! execute the same host kernels, so partitioning can never change results —
//! matching the paper's correctness methodology of comparing the BYOC output
//! against the origin framework's output. What differs per backend is the
//! *simulated cost* charged by `tvmnp-hwsim`.

pub mod conv;
pub mod dense;
pub mod elementwise;
pub mod norm;
pub mod pool;
pub mod qconv;
pub mod softmax;
pub mod transform;

pub use conv::{conv2d_f32, Conv2dParams};
pub use dense::{dense_f32, qdense};
pub use elementwise::*;
pub use norm::{batch_norm_f32, bias_add, BatchNormParams};
pub use pool::{avg_pool2d, global_avg_pool2d, max_pool2d, Pool2dParams};
pub use qconv::{qconv2d, QConvQuant};
pub use softmax::{log_softmax_f32, softmax_f32};
pub use transform::*;

/// Error type shared by kernels for invalid shapes/attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel error: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

/// Shortcut for building a [`KernelError`].
pub fn kerr(msg: impl Into<String>) -> KernelError {
    KernelError(msg.into())
}
